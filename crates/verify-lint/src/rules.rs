//! The eight lint rules. Each is a pure function from prepared sources to
//! diagnostics so the fixture tests can drive them directly.

use crate::{calls_in, index_functions, Diagnostic, SourceFile};
use std::collections::{HashMap, HashSet};
use std::path::Path;

// ---------------------------------------------------------------------------
// IL001 — every crate root carries #![forbid(unsafe_code)]
// ---------------------------------------------------------------------------

/// Paths (workspace-relative suffixes) that are crate roots: each member's
/// `src/lib.rs` plus the umbrella's. Derived from the workspace manifest.
pub fn crate_roots(root_manifest: &str) -> Vec<String> {
    let mut roots = vec!["src/lib.rs".to_string()];
    let mut in_members = false;
    for line in root_manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                roots.push(format!("{piece}/src/lib.rs"));
            }
            if line.contains(']') {
                break;
            }
        }
    }
    roots
}

/// IL001: flags crate roots missing `#![forbid(unsafe_code)]`.
pub fn il001_forbid_unsafe(files: &[SourceFile], root_manifest: &str) -> Vec<Diagnostic> {
    let roots = crate_roots(root_manifest);
    let mut out = Vec::new();
    for file in files {
        let path = file.path.to_string_lossy().replace('\\', "/");
        let is_root = roots.contains(&path);
        if is_root && !file.clean.contains("#![forbid(unsafe_code)]") {
            out.push(Diagnostic {
                rule: "IL001",
                path: file.path.clone(),
                line: 1,
                message: "crate root does not carry #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// IL002 — no panicking calls in the hot paths
// ---------------------------------------------------------------------------

/// The server/persist/snapshot hot paths: a panic here takes down a worker
/// serving live traffic or corrupts a durability transition mid-flight.
/// The shape validator is on the list because it runs under the serving
/// write lock — a panic there poisons the writer and takes every future
/// update down with it.
pub fn is_hot_path(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.ends_with("crates/query/src/server.rs")
        || p.ends_with("crates/query/src/serving.rs")
        || p.ends_with("crates/store/src/snapshot.rs")
        || p.ends_with("crates/core/src/api.rs")
        || p.ends_with("crates/rules/src/shapes/validate.rs")
        || p.contains("crates/persist/src/")
}

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// IL002: flags `unwrap`/`expect`/`panic!`-family calls in hot-path files
/// (test items, comments and strings already blanked).
pub fn il002_no_panics(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files.iter().filter(|f| is_hot_path(&f.path)) {
        for pattern in PANIC_PATTERNS {
            let mut from = 0usize;
            while let Some(offset) = file.clean_no_tests[from..].find(pattern) {
                let at = from + offset;
                from = at + pattern.len();
                // `.unwrap_or*()` and friends must not match `.unwrap()`;
                // find() on the full pattern already guarantees that. But
                // `debug_assert!`-style macros ending in the same tokens
                // cannot occur for these patterns.
                out.push(Diagnostic {
                    rule: "IL002",
                    path: file.path.clone(),
                    line: file.line_of(at),
                    message: format!(
                        "`{}` in a server/persist/snapshot hot path — return a typed error \
                         (or allowlist with justification)",
                        pattern.trim_matches(|c| c == '.' || c == '(')
                    ),
                });
            }
        }
    }
    out.sort_by_key(|d| (d.path.clone(), d.line));
    out
}

// ---------------------------------------------------------------------------
// IL003 — PropertyTable pair mutations stay in-crate and reach
//         invalidate_os_cache
// ---------------------------------------------------------------------------

/// Method names that mutate a `Vec<u64>` in place.
const VEC_MUTATORS: &[&str] = &[
    "push",
    "extend_from_slice",
    "extend",
    "resize",
    "truncate",
    "copy_within",
    "clear",
    "drain",
    "sort",
    "sort_unstable",
    "insert",
    "remove",
    "retain",
    "pop",
    "swap",
];

/// `true` when `body` mutates `self.so` at or around the occurrence list:
/// `&mut self.so`, `self.so = …` (not `==`), or `self.so.<mutator>(`.
fn mutates_self_so(body: &str) -> bool {
    if body.contains("&mut self.so") {
        return true;
    }
    let mut from = 0usize;
    while let Some(offset) = body[from..].find("self.so") {
        let at = from + offset;
        from = at + "self.so".len();
        let rest = body[from..].trim_start();
        if let Some(assigned) = rest.strip_prefix('=') {
            if !assigned.starts_with('=') {
                return true; // `self.so = …`, not `self.so == …`
            }
        }
        if let Some(method_call) = rest.strip_prefix('.') {
            let name: String = method_call
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if VEC_MUTATORS.contains(&name.as_str()) {
                return true;
            }
        }
    }
    false
}

/// IL003: (a) `pairs_mut` is the raw mutation escape hatch — calling it
/// outside `crates/store` bypasses the table's invalidation discipline;
/// (b) every `property_table.rs` function that mutates `self.so` must
/// transitively reach `invalidate_os_cache`, through a call graph built
/// over the *whole workspace* — so invalidation helpers hoisted into
/// sibling files keep the proof intact, and mutators whose only
/// invalidation path was moved out from under them are still caught.
pub fn il003_os_cache_invalidation(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if !p.contains("crates/store/") {
            let mut from = 0usize;
            while let Some(offset) = file.clean_no_tests[from..].find(".pairs_mut(") {
                let at = from + offset;
                from = at + ".pairs_mut(".len();
                out.push(Diagnostic {
                    rule: "IL003",
                    path: file.path.clone(),
                    line: file.line_of(at),
                    message: "raw PropertyTable::pairs_mut access outside crates/store — use a \
                              store-crate mutation API (e.g. TripleStore::remap_ids) so the \
                              ⟨o,s⟩-cache invalidation stays provable"
                        .to_string(),
                });
            }
        }
    }
    out.extend(check_mutators_reach_invalidate(files));
    out
}

/// The cross-file call-graph walk of IL003(b), also used directly by the
/// fixture tests against mock property-table/helper files. Same-named
/// functions across files union their callees (no resolution — strictly
/// more edges, so the walk can only get *less* strict than a perfect one,
/// never flag a path that does invalidate).
pub fn check_mutators_reach_invalidate(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut calls: HashMap<String, HashSet<String>> = HashMap::new();
    for file in files {
        for f in index_functions(&file.clean_no_tests) {
            calls
                .entry(f.name.clone())
                .or_default()
                .extend(calls_in(&file.clean_no_tests[f.body.clone()]));
        }
    }
    // Transitive closure: which function names eventually call the sink.
    let mut reaches: HashSet<&str> = HashSet::new();
    loop {
        let mut grew = false;
        for (name, callees) in &calls {
            if reaches.contains(name.as_str()) {
                continue;
            }
            if callees.contains("invalidate_os_cache")
                || callees.iter().any(|c| reaches.contains(c.as_str()))
            {
                reaches.insert(name.as_str());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let mut out = Vec::new();
    for file in files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if !(p.ends_with("property_table.rs") && p.contains("crates/store/")) {
            continue;
        }
        for f in index_functions(&file.clean_no_tests) {
            if f.name == "invalidate_os_cache" {
                continue;
            }
            let body = &file.clean_no_tests[f.body.clone()];
            if mutates_self_so(body) && !reaches.contains(f.name.as_str()) {
                out.push(Diagnostic {
                    rule: "IL003",
                    path: file.path.clone(),
                    line: file.line_of(f.sig.start),
                    message: format!(
                        "`{}` mutates the ⟨s,o⟩ pair array but no call path reaches \
                         invalidate_os_cache — a stale ⟨o,s⟩ cache could be served",
                        f.name
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// IL004 — lock-acquisition ordering across the publish/persist protocols
// ---------------------------------------------------------------------------

/// A recognized lock class: acquisitions of `pattern` in files whose path
/// ends with `file_suffix` acquire rank `rank`. Lower rank = acquired
/// earlier; taking a lock of rank ≤ an already-held rank is an inversion.
pub struct LockClass {
    /// Path suffix the pattern is scoped to.
    pub file_suffix: &'static str,
    /// Token pattern of the acquisition site.
    pub pattern: &'static str,
    /// Position in the global order (1 = outermost).
    pub rank: u8,
    /// Human-readable lock name.
    pub name: &'static str,
}

/// The repo's documented lock order: persist state → serving writer →
/// serving base → dictionary → snapshot-store writer → snapshot slot cell →
/// status mirror (leaf). Readers of the snapshot handoff only ever
/// `try_lock` the slot cell (never blocking), but the acquisition still
/// ranks so a cell-holding path can never turn around and take an outer
/// lock. See docs/static-analysis.md.
pub const LOCK_CLASSES: &[LockClass] = &[
    LockClass {
        file_suffix: "crates/persist/src/durable.rs",
        pattern: "self.state.lock(",
        rank: 1,
        name: "persist state",
    },
    LockClass {
        file_suffix: "crates/core/src/api.rs",
        pattern: "self.writer.lock(",
        rank: 2,
        name: "serving writer",
    },
    LockClass {
        file_suffix: "crates/core/src/api.rs",
        pattern: "self.base.lock(",
        rank: 3,
        name: "serving base",
    },
    LockClass {
        file_suffix: "crates/core/src/api.rs",
        pattern: "self.dictionary.read(",
        rank: 4,
        name: "dictionary",
    },
    LockClass {
        file_suffix: "crates/core/src/api.rs",
        pattern: "self.dictionary.write(",
        rank: 4,
        name: "dictionary",
    },
    LockClass {
        file_suffix: "crates/store/src/snapshot.rs",
        pattern: "self.writer.lock(",
        rank: 5,
        name: "snapshot writer",
    },
    LockClass {
        file_suffix: "crates/store/src/snapshot.rs",
        pattern: ".cell.lock(",
        rank: 6,
        name: "snapshot slot cell",
    },
    LockClass {
        file_suffix: "crates/store/src/snapshot.rs",
        pattern: ".cell.try_lock(",
        rank: 6,
        name: "snapshot slot cell",
    },
    LockClass {
        file_suffix: "crates/persist/src/durable.rs",
        pattern: "self.status_mirror.lock(",
        rank: 7,
        name: "status mirror",
    },
];

struct Acquire {
    pos: usize,
    rank: u8,
    name: &'static str,
    /// Liveness end (byte offset in the body): `drop(var)`, scope end, or
    /// function end for bound guards; `pos` itself for temporaries.
    live_until: usize,
}

/// Finds the `let` binding a statement assigns its lock guard to, if any.
fn bound_var(body: &str, acquire_at: usize) -> Option<String> {
    let stmt_start = body[..acquire_at]
        .rfind([';', '{', '}'])
        .map(|i| i + 1)
        .unwrap_or(0);
    let stmt = &body[stmt_start..acquire_at];
    let let_at = stmt.find("let ")?;
    let rest = stmt[let_at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let var: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if var.is_empty() || !stmt.contains('=') {
        None
    } else {
        Some(var)
    }
}

/// Brace depth at every byte of `body` (body starts at its opening `{`).
fn depths(body: &str) -> Vec<usize> {
    let mut out = Vec::with_capacity(body.len());
    let mut depth = 0usize;
    for b in body.bytes() {
        if b == b'}' {
            depth = depth.saturating_sub(1);
        }
        out.push(depth);
        if b == b'{' {
            depth += 1;
        }
    }
    out
}

/// IL004: within each function of the protocol files, no lock of rank ≤ a
/// held lock's rank may be acquired (directly, or transitively through a
/// call to another protocol-file function).
pub fn il004_lock_order(files: &[SourceFile]) -> Vec<Diagnostic> {
    let protocol_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            let p = f.path.to_string_lossy().replace('\\', "/");
            LOCK_CLASSES.iter().any(|c| p.ends_with(c.file_suffix))
        })
        .collect();

    // Per-function direct acquisition ranks, for the transitive call walk.
    let mut direct: HashMap<String, HashSet<u8>> = HashMap::new();
    let mut call_map: HashMap<String, HashSet<String>> = HashMap::new();
    for file in &protocol_files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        for f in index_functions(&file.clean_no_tests) {
            let body = &file.clean_no_tests[f.body.clone()];
            let entry = direct.entry(f.name.clone()).or_default();
            for class in LOCK_CLASSES {
                if p.ends_with(class.file_suffix) && body.contains(class.pattern) {
                    entry.insert(class.rank);
                }
            }
            call_map
                .entry(f.name.clone())
                .or_default()
                .extend(calls_in(body));
        }
    }
    // Fixpoint: transitive acquisition sets.
    let mut transitive = direct.clone();
    loop {
        let mut grew = false;
        let names: Vec<String> = transitive.keys().cloned().collect();
        for name in names {
            let mut add: HashSet<u8> = HashSet::new();
            if let Some(callees) = call_map.get(&name) {
                for callee in callees {
                    if let Some(ranks) = transitive.get(callee) {
                        add.extend(ranks.iter().copied());
                    }
                }
            }
            let entry = transitive.entry(name).or_default();
            let before = entry.len();
            entry.extend(add);
            if entry.len() > before {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    let mut out = Vec::new();
    for file in &protocol_files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        for f in index_functions(&file.clean_no_tests) {
            let body = &file.clean_no_tests[f.body.clone()];
            let depth_at = depths(body);
            // Direct acquisitions with liveness intervals.
            let mut acquires: Vec<Acquire> = Vec::new();
            for class in LOCK_CLASSES {
                if !p.ends_with(class.file_suffix) {
                    continue;
                }
                let mut from = 0usize;
                while let Some(offset) = body[from..].find(class.pattern) {
                    let at = from + offset;
                    from = at + class.pattern.len();
                    let live_until = match bound_var(body, at) {
                        Some(var) => {
                            let drop_pat = format!("drop({var})");
                            let dropped = body[at..]
                                .find(&drop_pat)
                                .map(|o| at + o)
                                .unwrap_or(usize::MAX);
                            // Guard dies at the end of its enclosing scope.
                            let my_depth = depth_at[at];
                            let scope_end = (at..body.len())
                                .find(|i| depth_at[*i] < my_depth)
                                .unwrap_or(body.len());
                            dropped.min(scope_end).min(body.len())
                        }
                        None => at, // temporary: acquire+release in place
                    };
                    acquires.push(Acquire {
                        pos: at,
                        rank: class.rank,
                        name: class.name,
                        live_until,
                    });
                }
            }
            let held_at = |pos: usize| -> Vec<(&Acquire, ())> {
                acquires
                    .iter()
                    .filter(|a| a.pos < pos && pos <= a.live_until)
                    .map(|a| (a, ()))
                    .collect()
            };
            // Direct inversions.
            for a in &acquires {
                for (held, ()) in held_at(a.pos) {
                    if a.rank <= held.rank {
                        out.push(Diagnostic {
                            rule: "IL004",
                            path: file.path.clone(),
                            line: file.line_of(f.body.start + a.pos),
                            message: format!(
                                "acquires `{}` (rank {}) while holding `{}` (rank {}) — \
                                 violates the repo lock order (see docs/static-analysis.md)",
                                a.name, a.rank, held.name, held.rank
                            ),
                        });
                    }
                }
            }
            // Transitive inversions through calls.
            let bytes = body.as_bytes();
            let mut i = 0usize;
            while i < bytes.len() {
                if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let ident = &body[start..i];
                    if i < bytes.len() && bytes[i] == b'(' && ident != f.name.as_str() {
                        if let Some(ranks) = transitive.get(ident) {
                            for (held, ()) in held_at(start) {
                                if let Some(&min_rank) = ranks.iter().min() {
                                    if min_rank <= held.rank {
                                        out.push(Diagnostic {
                                            rule: "IL004",
                                            path: file.path.clone(),
                                            line: file.line_of(f.body.start + start),
                                            message: format!(
                                                "calls `{ident}` (which may acquire rank \
                                                 {min_rank}) while holding `{}` (rank {}) — \
                                                 violates the repo lock order",
                                                held.name, held.rank
                                            ),
                                        });
                                    }
                                }
                            }
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    out.sort_by_key(|d| (d.path.clone(), d.line));
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// IL005 — no std::process::exit outside src/bin
// ---------------------------------------------------------------------------

/// IL005: `process::exit` skips destructors (WAL flushes, lock releases);
/// only binary entry points under `src/bin/` may call it.
pub fn il005_no_process_exit(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if p.contains("src/bin/") {
            continue;
        }
        let mut from = 0usize;
        while let Some(offset) = file.clean_no_tests[from..].find("process::exit") {
            let at = from + offset;
            from = at + "process::exit".len();
            out.push(Diagnostic {
                rule: "IL005",
                path: file.path.clone(),
                line: file.line_of(at),
                message: "std::process::exit outside src/bin skips destructors (WAL flushes, \
                          lock releases) — return an error or ExitCode instead"
                    .to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// IL006 — manifest hygiene
// ---------------------------------------------------------------------------

/// Collects every `[package] name = "…"` across the scanned manifests: the
/// set of intra-workspace crate names.
pub fn package_names(manifests: &[(std::path::PathBuf, String)]) -> HashSet<String> {
    let mut out = HashSet::new();
    for (_, text) in manifests {
        let mut in_package = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
            } else if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(value) = rest.strip_prefix('=') {
                        if let Some(name) = value.split('"').nth(1) {
                            out.insert(name.to_string());
                        }
                    }
                }
            }
        }
    }
    out
}

/// IL006: intra-workspace dependencies must inherit through
/// `workspace = true`, and `inferray-*` packages must inherit
/// `version`/`edition` from `[workspace.package]` (shims are exempt: they
/// impersonate external crates with pinned versions).
pub fn il006_manifest_hygiene(
    manifests: &[(std::path::PathBuf, String)],
    members: &HashSet<String>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, text) in manifests {
        let mut section = String::new();
        let mut package_name = String::new();
        // First pass: the package name decides which checks apply.
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                section = line.to_string();
            } else if section == "[package]" && line.starts_with("name") {
                if let Some(name) = line.split('"').nth(1) {
                    package_name = name.to_string();
                }
            }
        }
        let is_inferray = package_name == "inferray" || package_name.starts_with("inferray-");
        section.clear();
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                section = trimmed.to_string();
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let dep_section = matches!(
                section.as_str(),
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            if dep_section {
                let dep_name: String = trimmed
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
                    .collect();
                if members.contains(&dep_name)
                    && !trimmed.contains("workspace = true")
                    && !trimmed.contains(".workspace = true")
                {
                    out.push(Diagnostic {
                        rule: "IL006",
                        path: path.clone(),
                        line: idx + 1,
                        message: format!(
                            "intra-workspace dependency `{dep_name}` must inherit via \
                             `{dep_name}.workspace = true` (no per-crate paths/versions)"
                        ),
                    });
                }
            }
            if section == "[package]" && is_inferray {
                for key in ["version", "edition"] {
                    if trimmed.starts_with(&format!("{key} "))
                        || trimmed.starts_with(&format!("{key}="))
                    {
                        out.push(Diagnostic {
                            rule: "IL006",
                            path: path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{key}` must inherit from [workspace.package] \
                                 (`{key}.workspace = true`) to prevent drift"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// IL007 — zero-allocation serving hot path
// ---------------------------------------------------------------------------

/// The per-request serving path in `crates/query/src/server.rs`: the
/// connection loop, request parsing, query answering and response rendering.
/// `worker_loop` allocates the reusable [`WorkerBuffers`] once per worker and
/// is deliberately *not* listed; everything it calls per request is.
pub const SERVING_HOT_FUNCTIONS: &[&str] = &[
    "handle_connection",
    "serve_request",
    "read_head",
    "query_from_query_string",
    "percent_decode",
    "answer_query",
    "results_json_into",
    "term_json_into",
    "json_escape_into",
    "error_json_into",
    "status_json_into",
    "respond",
];

/// Allocation constructors banned per request. `String::with_capacity` /
/// `Vec::with_capacity` and `to_owned`/`to_string` are *not* banned: the
/// former sizes a buffer once, and the latter show up only on cold error
/// arms that a token scan cannot tell apart from hot ones.
const HOT_ALLOC_PATTERNS: &[&str] = &["format!(", "String::new(", "Vec::new("];

/// IL007: the serving hot path must render into the per-worker reusable
/// buffers — no fresh `format!`/`String::new`/`Vec::new` per request. Cold
/// work (error-message construction, update handling) belongs in a dedicated
/// function outside [`SERVING_HOT_FUNCTIONS`].
pub fn il007_no_hot_path_allocation(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if !p.ends_with("crates/query/src/server.rs") {
            continue;
        }
        for f in index_functions(&file.clean_no_tests)
            .iter()
            .filter(|f| SERVING_HOT_FUNCTIONS.contains(&f.name.as_str()))
        {
            let body = &file.clean_no_tests[f.body.clone()];
            for pattern in HOT_ALLOC_PATTERNS {
                let mut from = 0usize;
                while let Some(offset) = body[from..].find(pattern) {
                    let at = from + offset;
                    from = at + pattern.len();
                    out.push(Diagnostic {
                        rule: "IL007",
                        path: file.path.clone(),
                        line: file.line_of(f.body.start + at),
                        message: format!(
                            "`{}` in serving hot function `{}` — write into the per-worker \
                             reusable buffers (WorkerBuffers) instead, or move cold work \
                             into a function outside the hot list",
                            pattern.trim_end_matches('('),
                            f.name
                        ),
                    });
                }
            }
        }
    }
    out.sort_by_key(|d| (d.path.clone(), d.line));
    out
}

// ---------------------------------------------------------------------------
// IL008 — RuleInfo literals stay in the catalog and the analyzer
// ---------------------------------------------------------------------------

/// The only places allowed to construct catalog rows: the hand-written
/// catalog itself and the rule-program analyzer that re-derives it.
fn may_construct_rule_info(path: &str) -> bool {
    path.ends_with("crates/rules/src/catalog.rs") || path.contains("crates/rules/src/analysis/")
}

/// IL008: `RuleInfo { … }` literals may only appear in
/// `crates/rules/src/catalog.rs` and the analysis module. Everywhere else
/// must go through `RuleId::info()` or the analyzer's derived signatures —
/// a third place minting rows would break the catalog's single-source-of-
/// truth guarantee that the byte-identity test anchors.
pub fn il008_rule_info_literals(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if may_construct_rule_info(&p) {
            continue;
        }
        let text = &file.clean_no_tests;
        let bytes = text.as_bytes();
        let mut from = 0usize;
        while let Some(offset) = text[from..].find("RuleInfo") {
            let at = from + offset;
            from = at + "RuleInfo".len();
            if at > 0 {
                let prev = bytes[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            // A literal is `RuleInfo` followed (past whitespace) by `{`.
            // Type positions (`&RuleInfo`, `-> RuleInfo` in a signature with
            // the body brace) can collide; that coarseness is deliberate —
            // the allowlist is the escape hatch.
            let mut j = from;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'{' {
                out.push(Diagnostic {
                    rule: "IL008",
                    path: file.path.clone(),
                    line: file.line_of(at),
                    message: "RuleInfo literal outside crates/rules/src/catalog.rs and the \
                              analysis module — construct rows only there (or read them via \
                              RuleId::info) so the catalog stays the single source of truth"
                        .to_string(),
                });
            }
        }
    }
    out
}
