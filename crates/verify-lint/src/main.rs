//! CLI driver: `cargo run -p inferray-verify-lint` from anywhere in the
//! workspace. Exits non-zero on any unallowlisted finding or stale
//! allowlist entry. (Uses `ExitCode`, not `process::exit` — IL005 applies
//! to this binary too.)

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The crate lives at <workspace>/crates/verify-lint.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."));

    let outcome = match inferray_verify_lint::run(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("inferray-verify-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (diag, justification) in &outcome.allowed {
        println!("allowed: {diag} [{justification}]");
    }
    for diag in &outcome.diagnostics {
        println!("{diag}");
    }
    for entry in &outcome.unused_allowlist {
        println!(
            "stale allowlist entry (matched nothing): {}|{}|{} [{}]",
            entry.rule, entry.path_suffix, entry.line_contains, entry.justification
        );
    }

    println!(
        "inferray-verify-lint: {} files scanned, {} finding(s), {} allowed, {} stale allowlist",
        outcome.files_scanned,
        outcome.diagnostics.len(),
        outcome.allowed.len(),
        outcome.unused_allowlist.len()
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
