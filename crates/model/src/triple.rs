//! Triples, in decoded ([`Triple`]) and dictionary-encoded ([`IdTriple`]) form.

use crate::term::Term;
use std::fmt;

/// A decoded RDF triple `⟨subject, predicate, object⟩`.
///
/// This representation only appears at the I/O boundary (parsing,
/// serialization, examples); the reasoner itself works on [`IdTriple`]s and,
/// below that, on flat pair arrays inside the property tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject (an IRI or a blank node).
    pub subject: Term,
    /// The predicate (an IRI).
    pub predicate: Term,
    /// The object (any term).
    pub object: Term,
}

impl Triple {
    /// Builds a triple from its three components.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// Convenience constructor taking three IRI strings.
    ///
    /// ```
    /// use inferray_model::Triple;
    /// let t = Triple::iris("http://ex.org/human",
    ///                      "http://www.w3.org/2000/01/rdf-schema#subClassOf",
    ///                      "http://ex.org/mammal");
    /// assert!(t.is_valid());
    /// ```
    pub fn iris(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Self {
        Triple::new(Term::iri(subject), Term::iri(predicate), Term::iri(object))
    }

    /// `true` when each component is a term allowed in its position by the
    /// RDF abstract syntax (no literal subject, IRI predicate).
    pub fn is_valid(&self) -> bool {
        self.subject.valid_subject() && self.predicate.valid_predicate()
    }
}

impl fmt::Display for Triple {
    /// N-Triples statement form, terminated by ` .`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A dictionary-encoded triple: three 64-bit identifiers.
///
/// The predicate identifier always lies in the property half of the ID space
/// (see [`crate::ids`]); subject and object identifiers may lie in either
/// half (schema triples such as `p rdfs:domain c` have a property in subject
/// position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdTriple {
    /// Encoded subject.
    pub s: u64,
    /// Encoded predicate.
    pub p: u64,
    /// Encoded object.
    pub o: u64,
}

impl IdTriple {
    /// Builds an encoded triple.
    #[inline]
    pub fn new(s: u64, p: u64, o: u64) -> Self {
        IdTriple { s, p, o }
    }

    /// Returns the triple as a `(s, p, o)` tuple.
    #[inline]
    pub fn as_tuple(&self) -> (u64, u64, u64) {
        (self.s, self.p, self.o)
    }

    /// Returns the `⟨s, o⟩` pair, i.e. the row stored in the property table
    /// of `p`.
    #[inline]
    pub fn pair(&self) -> (u64, u64) {
        (self.s, self.o)
    }
}

impl From<(u64, u64, u64)> for IdTriple {
    fn from((s, p, o): (u64, u64, u64)) -> Self {
        IdTriple::new(s, p, o)
    }
}

impl fmt::Display for IdTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_triple_display_is_ntriples() {
        let t = Triple::iris("http://a", "http://p", "http://b");
        assert_eq!(t.to_string(), "<http://a> <http://p> <http://b> .");
    }

    #[test]
    fn literal_subject_is_invalid() {
        let t = Triple::new(
            Term::plain_literal("x"),
            Term::iri("http://p"),
            Term::iri("http://o"),
        );
        assert!(!t.is_valid());
    }

    #[test]
    fn blank_predicate_is_invalid() {
        let t = Triple::new(
            Term::iri("http://s"),
            Term::blank("p"),
            Term::iri("http://o"),
        );
        assert!(!t.is_valid());
    }

    #[test]
    fn id_triple_tuple_round_trip() {
        let t: IdTriple = (1, 2, 3).into();
        assert_eq!(t.as_tuple(), (1, 2, 3));
        assert_eq!(t.pair(), (1, 3));
        assert_eq!(t.to_string(), "(1, 2, 3)");
    }

    #[test]
    fn id_triple_ordering_is_spo_lexicographic() {
        let mut v = vec![
            IdTriple::new(2, 1, 1),
            IdTriple::new(1, 2, 1),
            IdTriple::new(1, 1, 2),
            IdTriple::new(1, 1, 1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                IdTriple::new(1, 1, 1),
                IdTriple::new(1, 1, 2),
                IdTriple::new(1, 2, 1),
                IdTriple::new(2, 1, 1),
            ]
        );
    }
}
