//! A small set-semantics triple container.
//!
//! [`Graph`] is **not** the data structure the reasoner runs on — that is the
//! vertically partitioned store in `inferray-store`. It exists for the API
//! boundary: examples build input graphs with it, the parser can collect into
//! it, and the test-suite uses it to compare the materializations produced by
//! Inferray and by the baseline reasoners (set equality, difference).

use crate::term::Term;
use crate::triple::Triple;
use std::collections::BTreeSet;
use std::fmt;

/// An in-memory RDF graph with set semantics (no duplicate triples), kept in
/// deterministic (sorted) order so that iteration, display and comparison are
/// reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    triples: BTreeSet<Triple>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when the graph holds no triple.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        self.triples.insert(triple)
    }

    /// Inserts a triple built from three IRIs.
    pub fn insert_iris(
        &mut self,
        s: impl Into<String>,
        p: impl Into<String>,
        o: impl Into<String>,
    ) -> bool {
        self.insert(Triple::iris(s, p, o))
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        self.triples.remove(triple)
    }

    /// Iterates over the triples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// All triples whose predicate equals `predicate`.
    pub fn with_predicate<'a>(
        &'a self,
        predicate: &'a Term,
    ) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples
            .iter()
            .filter(move |t| &t.predicate == predicate)
    }

    /// All triples whose subject equals `subject`.
    pub fn with_subject<'a>(&'a self, subject: &'a Term) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples.iter().filter(move |t| &t.subject == subject)
    }

    /// The set of distinct predicates, in sorted order.
    pub fn predicates(&self) -> Vec<Term> {
        let mut preds: Vec<Term> = self.triples.iter().map(|t| t.predicate.clone()).collect();
        preds.sort();
        preds.dedup();
        preds
    }

    /// Set union (consumes neither operand).
    pub fn union(&self, other: &Graph) -> Graph {
        Graph {
            triples: self.triples.union(&other.triples).cloned().collect(),
        }
    }

    /// Triples present in `self` but not in `other`.
    pub fn difference(&self, other: &Graph) -> Graph {
        Graph {
            triples: self.triples.difference(&other.triples).cloned().collect(),
        }
    }

    /// `true` when every triple of `self` is in `other`.
    pub fn is_subset(&self, other: &Graph) -> bool {
        self.triples.is_subset(&other.triples)
    }

    /// Merges `other` into `self`, returning the number of newly added triples.
    pub fn extend_from(&mut self, other: &Graph) -> usize {
        let before = self.len();
        for t in other.iter() {
            self.triples.insert(t.clone());
        }
        self.len() - before
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.triples.extend(iter);
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::collections::btree_set::IntoIter<Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Triple;
    type IntoIter = std::collections::btree_set::Iter<'a, Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl fmt::Display for Graph {
    /// Renders the graph as N-Triples, one statement per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.triples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/mammal",
        );
        g.insert_iris(
            "http://ex/mammal",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal",
        );
        g.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = sample();
        assert_eq!(g.len(), 3);
        assert!(!g.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human"));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn contains_and_remove() {
        let mut g = sample();
        let t = Triple::iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        assert!(g.contains(&t));
        assert!(g.remove(&t));
        assert!(!g.contains(&t));
        assert!(!g.remove(&t));
    }

    #[test]
    fn predicate_filter_and_listing() {
        let g = sample();
        let sub = Term::iri(vocab::RDFS_SUB_CLASS_OF);
        assert_eq!(g.with_predicate(&sub).count(), 2);
        assert_eq!(g.predicates().len(), 2);
    }

    #[test]
    fn union_difference_subset() {
        let g = sample();
        let mut h = Graph::new();
        h.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        assert!(h.is_subset(&g));
        assert_eq!(g.union(&h).len(), 3);
        assert_eq!(g.difference(&h).len(), 2);
        assert_eq!(h.difference(&g).len(), 0);
    }

    #[test]
    fn display_is_sorted_ntriples() {
        let g = sample();
        let text = g.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(lines.iter().all(|l| l.ends_with(" .")));
    }

    #[test]
    fn from_iterator_and_extend() {
        let g: Graph = sample().into_iter().collect();
        assert_eq!(g.len(), 3);
        let mut h = Graph::new();
        assert_eq!(h.extend_from(&g), 3);
        assert_eq!(h.extend_from(&g), 0);
    }
}
