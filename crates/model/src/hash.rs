//! A fast, non-cryptographic hasher for the interning hot paths.
//!
//! The dictionary and the ingest pipeline hash long textual keys (canonical
//! N-Triples term forms, typically 40–80 bytes) on every term occurrence.
//! `std`'s default SipHash is DoS-resistant but processes those keys several
//! times slower than necessary; this is the multiply-rotate scheme used by
//! the Rust compiler's own interners (FxHash), consuming eight bytes per
//! step. The tables it guards are bounded by dataset vocabulary size and
//! never keyed by untrusted-network input in a long-lived service position,
//! so hash-flooding resistance is not required.

use std::hash::{BuildHasherDefault, Hasher};

/// The `BuildHasher` to plug into `HashMap::with_hasher` / type aliases.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher (8 bytes per multiply-rotate step).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add(u64::from_le_bytes(word.try_into().expect("eight bytes")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add(u64::from(u32::from_le_bytes(
                word.try_into().expect("four bytes"),
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of(value: impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of("http://ex/a"), hash_of("http://ex/a"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
    }

    #[test]
    fn different_inputs_disperse() {
        let hashes: std::collections::HashSet<u64> = (0..10_000)
            .map(|i| hash_of(format!("<http://example.org/entity/{i}>")))
            .collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on a dense key set");
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1_000 {
            map.insert(format!("key-{i}"), i);
        }
        assert_eq!(map.len(), 1_000);
        assert_eq!(map.get("key-512"), Some(&512));
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        // 8-byte body equal, tails differ by one byte.
        assert_ne!(hash_of("12345678a"), hash_of("12345678b"));
        assert_ne!(hash_of("1234a"), hash_of("1234b"));
        assert_ne!(hash_of(""), hash_of("a"));
    }
}
