//! Dense-numbering identifier-space layout (paper section 5.1).
//!
//! Every RDF term is encoded to a fixed-length 64-bit identifier. Because the
//! number of properties and resources in a dataset is unknown until the whole
//! file has been read, the paper splits the numbering space `[0, 2⁶⁴)` at
//! `2³²`:
//!
//! * **properties** are assigned identifiers *downwards* from [`PROPERTY_BASE`]
//!   (`2³²`, `2³² − 1`, `2³² − 2`, …), and
//! * **resources** (non-properties: classes, individuals, literals) are
//!   assigned identifiers *upwards* from `PROPERTY_BASE + 1`.
//!
//! Both halves stay *dense* — no gaps — which keeps the entropy of the values
//! low, which in turn is what makes the counting-sort / adaptive-radix
//! kernels of `inferray-sort` effective. Accessing the array of property
//! tables is then "a simple index translation" ([`property_index`]).

/// The split point of the identifier space: `2³²`. The first property
/// registered receives exactly this identifier.
pub const PROPERTY_BASE: u64 = 1 << 32;

/// The identifier assigned to the first resource: `2³² + 1`.
pub const RESOURCE_BASE: u64 = PROPERTY_BASE + 1;

/// Maximum number of properties representable (identifiers `1 ..= 2³²`).
pub const MAX_PROPERTIES: u64 = PROPERTY_BASE;

/// Returns `true` when `id` lies in the property half of the space.
#[inline]
pub fn is_property_id(id: u64) -> bool {
    id <= PROPERTY_BASE && id != 0
}

/// Returns `true` when `id` lies in the resource half of the space.
#[inline]
pub fn is_resource_id(id: u64) -> bool {
    id > PROPERTY_BASE
}

/// Translates a property identifier into a dense index, usable to address
/// the array of property tables: the first property (id `2³²`) maps to `0`,
/// the second (id `2³² − 1`) to `1`, and so on.
///
/// # Panics
/// Panics in debug builds when `id` is not a property identifier.
#[inline]
pub fn property_index(id: u64) -> usize {
    debug_assert!(is_property_id(id), "not a property id: {id}");
    (PROPERTY_BASE - id) as usize
}

/// Inverse of [`property_index`].
#[inline]
pub fn property_id_from_index(index: usize) -> u64 {
    PROPERTY_BASE - index as u64
}

/// Translates a resource identifier into a dense index: the first resource
/// (id `2³² + 1`) maps to `0`.
///
/// # Panics
/// Panics in debug builds when `id` is not a resource identifier.
#[inline]
pub fn resource_index(id: u64) -> usize {
    debug_assert!(is_resource_id(id), "not a resource id: {id}");
    (id - RESOURCE_BASE) as usize
}

/// Inverse of [`resource_index`].
#[inline]
pub fn resource_id_from_index(index: usize) -> u64 {
    RESOURCE_BASE + index as u64
}

/// The identifier of the n-th property to be registered (0-based), identical
/// to [`property_id_from_index`] but named for registration-order readability.
#[inline]
pub fn nth_property_id(n: usize) -> u64 {
    property_id_from_index(n)
}

/// The identifier of the n-th resource to be registered (0-based).
#[inline]
pub fn nth_resource_id(n: usize) -> u64 {
    resource_id_from_index(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_are_adjacent() {
        assert_eq!(RESOURCE_BASE, PROPERTY_BASE + 1);
        assert_eq!(PROPERTY_BASE, 4_294_967_296);
    }

    #[test]
    fn property_ids_descend_from_base() {
        assert_eq!(nth_property_id(0), PROPERTY_BASE);
        assert_eq!(nth_property_id(1), PROPERTY_BASE - 1);
        assert_eq!(nth_property_id(100), PROPERTY_BASE - 100);
    }

    #[test]
    fn resource_ids_ascend_from_base() {
        assert_eq!(nth_resource_id(0), PROPERTY_BASE + 1);
        assert_eq!(nth_resource_id(1), PROPERTY_BASE + 2);
    }

    #[test]
    fn classification_is_a_partition() {
        for id in [1u64, 2, PROPERTY_BASE - 1, PROPERTY_BASE] {
            assert!(is_property_id(id));
            assert!(!is_resource_id(id));
        }
        for id in [PROPERTY_BASE + 1, PROPERTY_BASE + 2, u64::MAX] {
            assert!(!is_property_id(id));
            assert!(is_resource_id(id));
        }
        // Zero is reserved (never assigned).
        assert!(!is_property_id(0));
        assert!(!is_resource_id(0));
    }

    #[test]
    fn index_translation_round_trips() {
        for n in [0usize, 1, 2, 63, 1024, 1_000_000] {
            assert_eq!(property_index(property_id_from_index(n)), n);
            assert_eq!(resource_index(resource_id_from_index(n)), n);
        }
    }

    #[test]
    fn property_index_is_registration_order() {
        // The first registered property addresses slot 0 of the table array.
        assert_eq!(property_index(PROPERTY_BASE), 0);
        assert_eq!(property_index(PROPERTY_BASE - 7), 7);
    }
}
