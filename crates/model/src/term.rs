//! RDF terms: IRIs, blank nodes and literals.
//!
//! Terms follow the RDF 1.1 abstract syntax. The [`Display`](std::fmt::Display)
//! implementation renders the canonical N-Triples form, which is what the
//! serializer in `inferray-parser` emits and what the dictionary uses as the
//! interning key, so a term always round-trips through its textual form.

use std::fmt;

/// The RDF 1.1 XML Schema string datatype, implied when a literal carries no
/// explicit datatype and no language tag.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";

/// The datatype of language-tagged strings.
pub const RDF_LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";

/// Coarse classification of a [`Term`], useful for validity checks
/// (e.g. a predicate must be an IRI, a subject must not be a literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// An IRI reference (RDF URI reference).
    Iri,
    /// A blank node, identified by a document-scoped label.
    BlankNode,
    /// A literal (plain, typed or language-tagged).
    Literal,
}

/// An RDF term.
///
/// The three variants mirror the three disjoint subsets of RDF terms
/// described in the paper's introduction: URIs/IRIs, blank nodes and
/// literals.
///
/// ```
/// use inferray_model::Term;
///
/// let human = Term::iri("http://example.org/human");
/// let label = Term::plain_literal("a featherless biped");
/// assert!(human.is_iri());
/// assert_eq!(label.to_string(), "\"a featherless biped\"");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI, stored without the surrounding angle brackets.
    Iri(String),
    /// A blank node label, stored without the leading `_:`.
    BlankNode(String),
    /// A literal value.
    Literal {
        /// The lexical form (unescaped).
        lexical: String,
        /// The datatype IRI, if any. `None` means `xsd:string` (plain) unless
        /// a language tag is present.
        datatype: Option<String>,
        /// The language tag (for `rdf:langString` literals), lower-cased.
        language: Option<String>,
    },
}

impl Term {
    /// Builds an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(iri.into())
    }

    /// Builds a blank-node term from its label (without the `_:` prefix).
    pub fn blank(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Builds a plain (untyped, untagged) string literal.
    pub fn plain_literal(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// Builds a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: Some(datatype.into()),
            language: None,
        }
    }

    /// Builds a language-tagged literal. The language tag is lower-cased, as
    /// required for RDF term equality.
    pub fn lang_literal(lexical: impl Into<String>, language: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(language.into().to_ascii_lowercase()),
        }
    }

    /// Builds an integer literal typed as `xsd:integer`.
    pub fn integer(value: i64) -> Self {
        Term::typed_literal(
            value.to_string(),
            "http://www.w3.org/2001/XMLSchema#integer",
        )
    }

    /// The coarse kind of this term.
    pub fn kind(&self) -> TermKind {
        match self {
            Term::Iri(_) => TermKind::Iri,
            Term::BlankNode(_) => TermKind::BlankNode,
            Term::Literal { .. } => TermKind::Literal,
        }
    }

    /// `true` if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// `true` if this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// `true` if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// The IRI string if this term is an IRI, `None` otherwise.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// `true` if this term may appear in the subject position of a triple
    /// (IRIs and blank nodes).
    pub fn valid_subject(&self) -> bool {
        !self.is_literal()
    }

    /// `true` if this term may appear in the predicate position of a triple
    /// (IRIs only).
    pub fn valid_predicate(&self) -> bool {
        self.is_iri()
    }

    /// Appends the canonical N-Triples form — exactly what
    /// [`Display`](std::fmt::Display) renders — to `out`, without the `fmt`
    /// machinery or intermediate allocations. This is the dictionary's
    /// interning key; rendering it is on the hot path of both live encoding
    /// and snapshot recovery, where per-term `format!` overhead is
    /// measurable at 10⁵ terms.
    pub fn write_ntriples(&self, out: &mut String) {
        match self {
            Term::Iri(iri) => {
                out.reserve(iri.len() + 2);
                out.push('<');
                out.push_str(iri);
                out.push('>');
            }
            Term::BlankNode(label) => {
                out.reserve(label.len() + 2);
                out.push_str("_:");
                out.push_str(label);
            }
            Term::Literal {
                lexical,
                datatype,
                language,
            } => {
                out.reserve(lexical.len() + 2);
                out.push('"');
                for c in lexical.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        _ => out.push(c),
                    }
                }
                out.push('"');
                if let Some(lang) = language {
                    out.push('@');
                    out.push_str(lang);
                } else if let Some(dt) = datatype {
                    if dt != XSD_STRING {
                        out.push_str("^^<");
                        out.push_str(dt);
                        out.push('>');
                    }
                }
            }
        }
    }

    /// The canonical N-Triples form as an owned string (an allocation-aware
    /// alternative to `to_string()` for hot paths).
    pub fn to_ntriples(&self) -> String {
        let mut out = String::new();
        self.write_ntriples(&mut out);
        out
    }
}

/// `true` when `tag` has the language-tag shape the N-Triples grammar
/// requires: `[a-zA-Z]+ ('-' [a-zA-Z0-9]+)*` (the BCP 47 well-formedness
/// skeleton). Rejects the empty tag, non-ASCII letters, and leading,
/// trailing or doubled `-` — both parsers (`inferray-parser`'s lexer and
/// `inferray-query`'s SPARQL tokenizer) enforce this same shape so a tag
/// either round-trips everywhere or parses nowhere.
pub fn valid_language_tag(tag: &str) -> bool {
    let mut parts = tag.split('-');
    let primary = parts.next().unwrap_or("");
    if primary.is_empty() || !primary.bytes().all(|b| b.is_ascii_alphabetic()) {
        return false;
    }
    parts.all(|subtag| !subtag.is_empty() && subtag.bytes().all(|b| b.is_ascii_alphanumeric()))
}

/// Escapes a string for inclusion in an N-Triples quoted literal or IRI.
///
/// Only the escapes required by the N-Triples grammar are produced:
/// backslash, double quote, newline, carriage return and tab.
pub fn escape_ntriples(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_ntriples`]; also understands `\u` / `\U` escapes.
///
/// Returns `None` when the escape sequence is malformed.
pub fn unescape_ntriples(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            'U' => {
                let hex: String = chars.by_ref().take(8).collect();
                if hex.len() != 8 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{}>", iri),
            Term::BlankNode(label) => write!(f, "_:{}", label),
            Term::Literal {
                lexical,
                datatype,
                language,
            } => {
                write!(f, "\"{}\"", escape_ntriples(lexical))?;
                if let Some(lang) = language {
                    write!(f, "@{}", lang)
                } else if let Some(dt) = datatype {
                    if dt == XSD_STRING {
                        Ok(())
                    } else {
                        write!(f, "^^<{}>", dt)
                    }
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_display_uses_angle_brackets() {
        let t = Term::iri("http://example.org/a");
        assert_eq!(t.to_string(), "<http://example.org/a>");
    }

    #[test]
    fn write_ntriples_agrees_with_display_for_every_term_shape() {
        // `write_ntriples` is the fmt-free fast path for the interning key;
        // it must render byte-for-byte what `Display` renders.
        let terms = [
            Term::iri("http://example.org/a"),
            Term::blank("b0"),
            Term::plain_literal("hi"),
            Term::plain_literal("quotes \" and \\ and \n\r\t"),
            Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#integer"),
            Term::typed_literal("plain", XSD_STRING),
            Term::lang_literal("chat", "fr"),
            Term::Literal {
                lexical: "both".into(),
                datatype: Some(RDF_LANG_STRING.into()),
                language: Some("en".into()),
            },
        ];
        for term in &terms {
            assert_eq!(term.to_ntriples(), term.to_string(), "term {term:?}");
        }
    }

    #[test]
    fn blank_node_display_uses_underscore_colon() {
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
    }

    #[test]
    fn plain_literal_display() {
        assert_eq!(Term::plain_literal("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn typed_literal_display() {
        let t = Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer");
        assert_eq!(
            t.to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn xsd_string_datatype_is_suppressed() {
        let t = Term::typed_literal("x", XSD_STRING);
        assert_eq!(t.to_string(), "\"x\"");
    }

    #[test]
    fn lang_literal_display_and_lowercasing() {
        let t = Term::lang_literal("bonjour", "FR");
        assert_eq!(t.to_string(), "\"bonjour\"@fr");
    }

    #[test]
    fn language_tag_shape() {
        for good in ["en", "de-AT", "zh-Hans-CN", "x-klingon", "a", "en-1997"] {
            assert!(valid_language_tag(good), "{good} should be accepted");
        }
        for bad in [
            "",
            "-en",
            "en-",
            "en--us",
            "1en",
            "en_US",
            "français",
            "én",
            "e n",
            "42",
        ] {
            assert!(!valid_language_tag(bad), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escaping_round_trip() {
        let raw = "line1\nline2\t\"quoted\" back\\slash";
        let escaped = escape_ntriples(raw);
        assert!(!escaped.contains('\n'));
        assert_eq!(unescape_ntriples(&escaped).unwrap(), raw);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(unescape_ntriples("\\u00e9").unwrap(), "é");
        assert_eq!(unescape_ntriples("\\U0001F600").unwrap(), "😀");
        assert!(unescape_ntriples("\\u00z9").is_none());
        assert!(unescape_ntriples("\\q").is_none());
    }

    #[test]
    fn kinds_and_position_validity() {
        assert_eq!(Term::iri("x").kind(), TermKind::Iri);
        assert_eq!(Term::blank("x").kind(), TermKind::BlankNode);
        assert_eq!(Term::plain_literal("x").kind(), TermKind::Literal);
        assert!(Term::iri("x").valid_subject());
        assert!(Term::blank("x").valid_subject());
        assert!(!Term::plain_literal("x").valid_subject());
        assert!(Term::iri("x").valid_predicate());
        assert!(!Term::blank("x").valid_predicate());
    }

    #[test]
    fn integer_helper() {
        let t = Term::integer(-7);
        assert_eq!(
            t.to_string(),
            "\"-7\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn term_ordering_is_total_and_stable() {
        let mut v = [
            Term::plain_literal("z"),
            Term::iri("a"),
            Term::blank("b"),
            Term::iri("b"),
        ];
        v.sort();
        let sorted: Vec<_> = v.iter().map(|t| t.to_string()).collect();
        assert_eq!(sorted, vec!["<a>", "<b>", "_:b", "\"z\""]);
    }
}
