//! RDF, RDFS and OWL vocabulary IRIs used by the Inferray rule engine.
//!
//! Only the terms actually referenced by the 38 rules of Table 5 of the paper
//! (plus a handful of common companions) are listed; the dictionary
//! pre-registers every property in [`SCHEMA_PROPERTIES`] so that schema
//! predicates obtain dense property identifiers before any data is loaded,
//! mirroring the "numbering of properties must start at zero for the array of
//! property tables" requirement of section 5.1.

/// Namespace prefix of the RDF vocabulary.
pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// Namespace prefix of the RDFS vocabulary.
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// Namespace prefix of the OWL vocabulary.
pub const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";
/// Namespace prefix of XML Schema datatypes.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";

// --- RDF ----------------------------------------------------------------

/// `rdf:type` — "is an instance of".
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdf:Property` — the class of RDF properties.
pub const RDF_PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
/// `rdf:first` (lists; parsed but not reasoned over).
pub const RDF_FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
/// `rdf:rest` (lists; parsed but not reasoned over).
pub const RDF_REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
/// `rdf:nil` (lists; parsed but not reasoned over).
pub const RDF_NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";

// --- RDFS ---------------------------------------------------------------

/// `rdfs:subClassOf` — transitive class hierarchy property.
pub const RDFS_SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf` — transitive property hierarchy property.
pub const RDFS_SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain`.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range`.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
/// `rdfs:member` — super-property of all container membership properties.
pub const RDFS_MEMBER: &str = "http://www.w3.org/2000/01/rdf-schema#member";
/// `rdfs:Resource` — the class of everything.
pub const RDFS_RESOURCE: &str = "http://www.w3.org/2000/01/rdf-schema#Resource";
/// `rdfs:Class`.
pub const RDFS_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
/// `rdfs:Literal`.
pub const RDFS_LITERAL: &str = "http://www.w3.org/2000/01/rdf-schema#Literal";
/// `rdfs:Datatype`.
pub const RDFS_DATATYPE: &str = "http://www.w3.org/2000/01/rdf-schema#Datatype";
/// `rdfs:ContainerMembershipProperty`.
pub const RDFS_CONTAINER_MEMBERSHIP_PROPERTY: &str =
    "http://www.w3.org/2000/01/rdf-schema#ContainerMembershipProperty";
/// `rdfs:label` (annotation; carried through untouched).
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// `rdfs:comment` (annotation; carried through untouched).
pub const RDFS_COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";

// --- OWL ----------------------------------------------------------------

/// `owl:sameAs` — individual equality (symmetric + transitive).
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
/// `owl:equivalentClass`.
pub const OWL_EQUIVALENT_CLASS: &str = "http://www.w3.org/2002/07/owl#equivalentClass";
/// `owl:equivalentProperty`.
pub const OWL_EQUIVALENT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#equivalentProperty";
/// `owl:inverseOf`.
pub const OWL_INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
/// `owl:TransitiveProperty`.
pub const OWL_TRANSITIVE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#TransitiveProperty";
/// `owl:SymmetricProperty`.
pub const OWL_SYMMETRIC_PROPERTY: &str = "http://www.w3.org/2002/07/owl#SymmetricProperty";
/// `owl:FunctionalProperty`.
pub const OWL_FUNCTIONAL_PROPERTY: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
/// `owl:InverseFunctionalProperty`.
pub const OWL_INVERSE_FUNCTIONAL_PROPERTY: &str =
    "http://www.w3.org/2002/07/owl#InverseFunctionalProperty";
/// `owl:Class`.
pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
/// `owl:Thing`.
pub const OWL_THING: &str = "http://www.w3.org/2002/07/owl#Thing";
/// `owl:Nothing`.
pub const OWL_NOTHING: &str = "http://www.w3.org/2002/07/owl#Nothing";
/// `owl:DatatypeProperty`.
pub const OWL_DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
/// `owl:ObjectProperty`.
pub const OWL_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";

/// The schema *properties* (terms that appear in the predicate position of
/// rule antecedents or heads). The dictionary pre-registers them, in this
/// order, so they always receive the first dense property identifiers.
pub const SCHEMA_PROPERTIES: &[&str] = &[
    RDF_TYPE,
    RDFS_SUB_CLASS_OF,
    RDFS_SUB_PROPERTY_OF,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_MEMBER,
    OWL_SAME_AS,
    OWL_EQUIVALENT_CLASS,
    OWL_EQUIVALENT_PROPERTY,
    OWL_INVERSE_OF,
    RDFS_LABEL,
    RDFS_COMMENT,
    RDF_FIRST,
    RDF_REST,
];

/// The schema *resources* (classes and special individuals referenced by the
/// rules). Pre-registered so rules can refer to their identifiers without a
/// dictionary lookup at inference time.
pub const SCHEMA_RESOURCES: &[&str] = &[
    RDFS_RESOURCE,
    RDFS_CLASS,
    RDFS_LITERAL,
    RDFS_DATATYPE,
    RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
    RDF_PROPERTY,
    RDF_NIL,
    OWL_TRANSITIVE_PROPERTY,
    OWL_SYMMETRIC_PROPERTY,
    OWL_FUNCTIONAL_PROPERTY,
    OWL_INVERSE_FUNCTIONAL_PROPERTY,
    OWL_CLASS,
    OWL_THING,
    OWL_NOTHING,
    OWL_DATATYPE_PROPERTY,
    OWL_OBJECT_PROPERTY,
];

/// Expands a compact `prefix:local` form for the three namespaces used in the
/// documentation and the tests. Unknown prefixes are returned unchanged.
///
/// ```
/// use inferray_model::vocab::expand_curie;
/// assert_eq!(
///     expand_curie("rdfs:subClassOf"),
///     "http://www.w3.org/2000/01/rdf-schema#subClassOf"
/// );
/// ```
pub fn expand_curie(curie: &str) -> String {
    if let Some(local) = curie.strip_prefix("rdf:") {
        format!("{RDF_NS}{local}")
    } else if let Some(local) = curie.strip_prefix("rdfs:") {
        format!("{RDFS_NS}{local}")
    } else if let Some(local) = curie.strip_prefix("owl:") {
        format!("{OWL_NS}{local}")
    } else if let Some(local) = curie.strip_prefix("xsd:") {
        format!("{XSD_NS}{local}")
    } else {
        curie.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn schema_lists_have_no_duplicates() {
        let props: HashSet<_> = SCHEMA_PROPERTIES.iter().collect();
        assert_eq!(props.len(), SCHEMA_PROPERTIES.len());
        let res: HashSet<_> = SCHEMA_RESOURCES.iter().collect();
        assert_eq!(res.len(), SCHEMA_RESOURCES.len());
    }

    #[test]
    fn properties_and_resources_are_disjoint() {
        let props: HashSet<_> = SCHEMA_PROPERTIES.iter().collect();
        for r in SCHEMA_RESOURCES {
            assert!(
                !props.contains(r),
                "{r} listed as both property and resource"
            );
        }
    }

    #[test]
    fn all_vocabulary_iris_use_known_namespaces() {
        for iri in SCHEMA_PROPERTIES.iter().chain(SCHEMA_RESOURCES.iter()) {
            assert!(
                iri.starts_with(RDF_NS) || iri.starts_with(RDFS_NS) || iri.starts_with(OWL_NS),
                "unexpected namespace for {iri}"
            );
        }
    }

    #[test]
    fn curie_expansion() {
        assert_eq!(expand_curie("rdf:type"), RDF_TYPE);
        assert_eq!(expand_curie("rdfs:domain"), RDFS_DOMAIN);
        assert_eq!(expand_curie("owl:sameAs"), OWL_SAME_AS);
        assert_eq!(expand_curie("xsd:integer"), format!("{XSD_NS}integer"));
        assert_eq!(expand_curie("http://example.org/x"), "http://example.org/x");
    }
}
