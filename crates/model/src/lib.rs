//! # inferray-model
//!
//! RDF data model shared by every crate of the Inferray workspace.
//!
//! This crate defines:
//!
//! * [`Term`] — the three kinds of RDF terms (IRIs, blank nodes, literals),
//!   with N-Triples-compatible formatting.
//! * [`Triple`] — a decoded `⟨subject, predicate, object⟩` statement.
//! * [`IdTriple`] — a dictionary-encoded triple of three 64-bit identifiers,
//!   the representation every performance-critical component works on.
//! * [`vocab`] — the RDF / RDFS / OWL vocabulary IRIs used by the rule
//!   engine (Table 5 of the paper).
//! * [`ids`] — the dense-numbering identifier-space layout of section 5.1 of
//!   the paper: properties are numbered *downwards* from 2³², resources
//!   (non-properties) *upwards* from 2³² + 1.
//! * [`Graph`] — a small, set-semantics triple container used by examples
//!   and by the test-suite to compare materializations produced by different
//!   reasoners.
//!
//! The crate is dependency-free and allocation-conscious: the encoded
//! representation ([`IdTriple`], and flat `Vec<u64>` pair arrays downstream)
//! is what the reasoner actually touches in its hot loops; the decoded
//! [`Term`] representation only appears at the I/O boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod hash;
pub mod ids;
pub mod term;
pub mod triple;
pub mod vocab;

pub use graph::Graph;
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use term::{Term, TermKind};
pub use triple::{IdTriple, Triple};
