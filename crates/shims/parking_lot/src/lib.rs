//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace must build without network access, so instead of the real
//! crate this shim provides the (tiny) subset of its API the workspace uses
//! — [`RwLock`] and [`Mutex`] with panic-free, non-poisoning guards —
//! implemented on top of `std::sync`. Poisoning is translated into the
//! parking_lot behaviour of simply continuing with the inner data.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A reader-writer lock with the `parking_lot` API shape (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<sync::RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with the `parking_lot` API shape (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
