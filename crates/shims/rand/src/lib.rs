//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds without network access; the dataset generators and
//! the randomized tests only need seeded, uniform integers and booleans, so
//! this shim implements exactly that: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, [`Rng::gen`] and
//! [`Rng::gen_bool`], with [`rngs::StdRng`] backed by xoshiro256++ seeded
//! via splitmix64. Streams differ from the real crate, which is fine: every
//! consumer in this workspace uses randomness to *generate inputs* and
//! checks properties against oracles, never against golden random values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Half-open ranges a value can be drawn from (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // u64 domain, which the narrower integer types never hit.
                let mut x = rng.next_u64();
                if span != 0 {
                    let threshold = span.wrapping_neg() % span;
                    loop {
                        let (hi, lo) = mul_wide(x, span);
                        if lo >= threshold {
                            x = hi;
                            break;
                        }
                        x = rng.next_u64();
                    }
                }
                self.start + x as $t
            }
        }
    )*};
}

impl_uint_sampling!(u8, u16, u32, u64, usize);

macro_rules! impl_int_sampling {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = (0u64..span).sample_single(rng);
                ((self.start as $u).wrapping_add(offset as $u)) as $t
            }
        }
    )*};
}

impl_int_sampling!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// The user-facing sampling interface (rand 0.8 shape).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(1..80usize);
            assert!((1..80).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn full_range_sample_covers_high_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let any_high = (0..100).any(|_| rng.gen_range(0..(1u64 << 40)) > (1u64 << 39));
        assert!(any_high);
    }
}
