//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — backed by a deliberately simple harness: a short warm-up, a
//! fixed number of timed samples, and a plain-text report of the median
//! per-iteration time. No statistics engine, no HTML reports; the goal is
//! that `cargo bench` runs offline and prints comparable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (printed with the result).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id` / `parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted where criterion takes `id: impl Into<BenchmarkId>`-ish.
pub trait IntoBenchmarkId {
    /// The rendered benchmark label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
    /// Iterations executed per sample in the last `iter` call.
    last_iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and calibration: run once, then pick an iteration count
        // aiming at ~20ms per sample (capped to keep total time bounded).
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
        self.last_iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut bencher = Bencher {
            samples: self.sample_size.min(20),
            last_median: Duration::ZERO,
            last_iters: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.last_median;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let eps = n as f64 / per_iter.as_secs_f64();
                format!("  thrpt: {:.2} Melem/s", eps / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let bps = n as f64 / per_iter.as_secs_f64();
                format!("  thrpt: {:.2} MiB/s", bps / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{label:<60} time: {:>12?}{rate}", per_iter);
        self.criterion.results.push((label, per_iter));
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Measures one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into_label();
        self.benchmark_group(label.clone())
            .bench_function("default", f);
        self
    }
}

/// Declares the benchmark entry points of one bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0.contains("noop"));
    }
}
