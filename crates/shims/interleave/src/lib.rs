//! Minimal loom-style deterministic-interleaving model checker.
//!
//! The workspace builds without network access, so instead of `loom` this
//! shim implements the small slice of its idea the repo's model-check tests
//! need: run a closure many times, once per distinct thread interleaving,
//! with every schedule decision driven by a depth-first search over the
//! yield points the tracked primitives introduce.
//!
//! # Execution model
//!
//! [`model`] runs the closure under a cooperative scheduler: every logical
//! thread is a real OS thread, but exactly **one** is runnable at a time.
//! Each operation on a tracked primitive ([`sync::Mutex`],
//! [`sync::RwLock`], the [`sync::atomic`] types, [`thread::spawn`],
//! [`JoinHandle::join`], [`thread::yield_now`], [`nondet`]) is a *yield
//! point*: the running thread picks the next thread to run. When more than
//! one thread could go, the choice is a DFS decision; the search replays
//! the closure until every reachable sequence of choices has been explored,
//! so the enumeration is **exhaustive** (sequentially-consistent
//! interleavings of the tracked operations), not sampled.
//!
//! A panic on any logical thread is a **violation**: the search stops and
//! [`model`] re-panics with the failing schedule trace. [`model_expect_violation`]
//! inverts that, for tests that seed a bug and must see it caught.
//! [`nondet`] folds environment choices (e.g. fault injection) into the
//! same search, so "every schedule × every fault" is covered.
//!
//! Requirements on the model closure: deterministic apart from the
//! scheduler's choices (no wall clock, no OS randomness), and small —
//! state spaces grow factorially with threads × yield points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Hard cap on schedules explored before the search declares the model too
/// large (a model-authoring error, not a property violation).
const MAX_SCHEDULES: usize = 1_000_000;

/// What a parked logical thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockedOn {
    /// A tracked mutex/rwlock in a state that excludes the thread.
    Resource(usize),
    /// Another logical thread's completion.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Schedulable (running or waiting to be picked).
    Ready,
    /// Parked until the thing it waits on changes state.
    Blocked(BlockedOn),
    /// Body returned (or unwound).
    Finished,
}

/// Tracked lock state.
#[derive(Debug, Clone, Copy)]
enum ResState {
    Mutex {
        held_by: Option<usize>,
    },
    RwLock {
        writer: Option<usize>,
        readers: usize,
    },
}

/// One DFS decision: which of `num` deterministic options was taken.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    num: usize,
}

#[derive(Debug, Default)]
struct KernelState {
    /// The single thread currently allowed to run.
    active: usize,
    threads: Vec<Status>,
    resources: Vec<ResState>,
    /// The DFS decision prefix being replayed, then extended.
    decisions: Vec<Decision>,
    cursor: usize,
    /// Human-readable schedule trace for violation reports.
    trace: Vec<String>,
    /// Set on the first violation; every kernel call then unwinds.
    abort: bool,
    failure: Option<String>,
    live: usize,
}

/// Shared scheduler: one per schedule execution.
struct Kernel {
    state: StdMutex<KernelState>,
    cv: Condvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind logical threads after a violation was
/// recorded elsewhere; never reported as a failure itself.
struct AbortToken;

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Kernel>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn ctx() -> (Arc<Kernel>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("interleave primitive used outside interleave::model")
    })
}

impl Kernel {
    fn new(decisions: Vec<Decision>) -> Kernel {
        Kernel {
            state: StdMutex::new(KernelState {
                active: 0,
                threads: vec![Status::Ready],
                resources: Vec::new(),
                decisions,
                cursor: 0,
                trace: Vec::new(),
                abort: false,
                failure: None,
                live: 1,
            }),
            cv: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, KernelState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next ready thread (DFS decision when several are ready) and
    /// makes it active. Caller holds the state lock.
    fn pick_next(&self, st: &mut KernelState, label: &str) {
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(tid, _)| tid)
            .collect();
        if ready.is_empty() {
            if st.live > 0 {
                st.failure = Some(format!(
                    "deadlock: {} unfinished thread(s), none runnable (at {label})",
                    st.live
                ));
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let chosen = self.decide(st, ready.len(), label);
        st.active = ready[chosen];
        st.trace.push(format!("run t{}", ready[chosen]));
        self.cv.notify_all();
    }

    /// Consumes (or extends) the DFS decision list. Caller holds the lock.
    fn decide(&self, st: &mut KernelState, num: usize, label: &str) -> usize {
        if num <= 1 {
            return 0;
        }
        let chosen = if st.cursor < st.decisions.len() {
            let d = st.decisions[st.cursor];
            assert_eq!(
                d.num, num,
                "non-deterministic model: decision {} had {} options on replay, {} before \
                 (at {label}); model closures must be deterministic apart from the scheduler",
                st.cursor, num, d.num
            );
            d.chosen
        } else {
            st.decisions.push(Decision { chosen: 0, num });
            0
        };
        st.cursor += 1;
        chosen
    }

    /// Yield point: schedule somebody (possibly the caller), then wait until
    /// the caller is active again.
    fn yield_point(&self, tid: usize, label: &str) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        self.pick_next(&mut st, label);
        self.wait_until_active(st, tid);
    }

    /// Waits until `tid` is the active thread. Consumes and re-acquires the
    /// state lock; unwinds on abort.
    fn wait_until_active(&self, mut st: StdMutexGuard<'_, KernelState>, tid: usize) {
        while st.active != tid && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
    }

    /// Parks `tid` on `on`, schedules somebody else, and returns once `tid`
    /// is woken *and* scheduled again.
    fn block(&self, tid: usize, on: BlockedOn, label: &str) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.threads[tid] = Status::Blocked(on);
        self.pick_next(&mut st, label);
        self.wait_until_active(st, tid);
    }

    /// Moves every thread parked on `on` back to ready. Caller holds lock.
    fn wake_waiters(st: &mut KernelState, on: BlockedOn) {
        for status in st.threads.iter_mut() {
            if *status == Status::Blocked(on) {
                *status = Status::Ready;
            }
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(Status::Ready);
        st.live += 1;
        st.threads.len() - 1
    }

    fn alloc_resource(&self, res: ResState) -> usize {
        let mut st = self.lock_state();
        st.resources.push(res);
        st.resources.len() - 1
    }

    /// Records a finished logical thread, converting a non-abort panic into
    /// the schedule's failure.
    fn finish(&self, tid: usize, outcome: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock_state();
        if let Err(payload) = outcome {
            if payload.downcast_ref::<AbortToken>().is_none() && st.failure.is_none() {
                st.failure = Some(format!(
                    "thread t{tid} panicked: {}",
                    panic_message(payload.as_ref())
                ));
                st.abort = true;
            }
        }
        st.threads[tid] = Status::Finished;
        st.live -= 1;
        Self::wake_waiters(&mut st, BlockedOn::Join(tid));
        if st.live == 0 || st.abort {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, "thread exit");
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// The violation message, when the exploration was stopped by one.
    pub violation: Option<String>,
}

/// Serializes explorations so schedule counts stay deterministic and the
/// temporarily-silenced panic hook cannot leak across concurrent tests.
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

fn explore(f: &(dyn Fn() + Sync)) -> Report {
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Logical-thread panics are the search's *signal*, not noise: silence
    // the default hook while exploring so seeded-bug runs don't spam stderr.
    let saved_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut decisions: Vec<Decision> = Vec::new();
    let mut schedules = 0usize;
    let result = loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "interleave: model exceeds {MAX_SCHEDULES} schedules; shrink the model"
        );
        let kernel = Arc::new(Kernel::new(std::mem::take(&mut decisions)));
        run_one_schedule(&kernel, f);
        let mut st = kernel.lock_state();
        decisions = std::mem::take(&mut st.decisions);
        if let Some(failure) = st.failure.take() {
            let trace = st.trace.join(" → ");
            break Report {
                schedules,
                violation: Some(format!("{failure}\nschedule: [{trace}]")),
            };
        }
        drop(st);
        // DFS backtrack: advance the deepest decision that still has an
        // unexplored branch, dropping everything after it.
        loop {
            match decisions.pop() {
                None => break,
                Some(d) if d.chosen + 1 < d.num => {
                    decisions.push(Decision {
                        chosen: d.chosen + 1,
                        num: d.num,
                    });
                    break;
                }
                Some(_) => {}
            }
        }
        if decisions.is_empty() {
            break Report {
                schedules,
                violation: None,
            };
        }
    };
    panic::set_hook(saved_hook);
    result
}

/// Runs one schedule of the model: the closure body is logical thread 0.
fn run_one_schedule(kernel: &Arc<Kernel>, f: &(dyn Fn() + Sync)) {
    std::thread::scope(|scope| {
        let root_kernel = Arc::clone(kernel);
        scope.spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&root_kernel), 0)));
            let outcome = panic::catch_unwind(AssertUnwindSafe(f));
            CTX.with(|c| *c.borrow_mut() = None);
            root_kernel.finish(0, outcome);
        });
        // Wait for every logical thread to finish, then reap the detached
        // OS threads the model spawned.
        let mut st = kernel.lock_state();
        while st.live > 0 {
            st = kernel.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        drop(st);
    });
    let handles: Vec<_> =
        std::mem::take(&mut *kernel.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
    for handle in handles {
        let _ = handle.join();
    }
}

/// Exhaustively explores every interleaving of `f`'s tracked operations.
///
/// Panics (with the failing schedule) if any interleaving panics; returns
/// the number of schedules explored otherwise.
pub fn model(f: impl Fn() + Sync) -> Report {
    let report = explore(&f);
    if let Some(violation) = report.violation {
        panic!(
            "interleave: violation found on schedule {} of the exploration:\n{violation}",
            report.schedules
        );
    }
    report
}

/// Like [`model`], but *requires* the exploration to find a violation —
/// for tests that seed a bug to prove the checker catches it. Returns the
/// violation message.
pub fn model_expect_violation(f: impl Fn() + Sync) -> String {
    let report = explore(&f);
    report.violation.unwrap_or_else(|| {
        panic!(
            "interleave: expected a violation, but {} schedule(s) all passed",
            report.schedules
        )
    })
}

/// A scheduler-controlled environment choice in `0..num` (e.g. inject a
/// fault or not). The DFS explores every value in every schedule context.
pub fn nondet(num: usize) -> usize {
    assert!(num >= 1, "nondet needs at least one option");
    let (kernel, _tid) = ctx();
    let mut st = kernel.lock_state();
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    let chosen = kernel.decide(&mut st, num, "nondet");
    st.trace.push(format!("nondet={chosen}"));
    chosen
}

/// Tracked replacements for [`std::thread`] inside a model.
pub mod thread {
    use super::*;

    /// Handle to a logical thread; [`JoinHandle::join`] is a blocking
    /// tracked operation.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    }

    impl<T: Send + 'static> JoinHandle<T> {
        /// Blocks (at a yield point) until the thread finishes; returns its
        /// value. A panicking thread is already a model violation, so join
        /// never reports one.
        pub fn join(self) -> T {
            let (kernel, tid) = ctx();
            kernel.yield_point(tid, "join");
            loop {
                {
                    let st = kernel.lock_state();
                    if st.threads[self.tid] == Status::Finished {
                        break;
                    }
                }
                kernel.block(tid, BlockedOn::Join(self.tid), "join");
            }
            let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
            slot.take().expect("joined thread produced no value")
        }
    }

    /// Spawns a logical thread participating in the schedule exploration.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (kernel, _parent) = ctx();
        let tid = kernel.register_thread();
        let result = Arc::new(StdMutex::new(None));
        let slot = Arc::clone(&result);
        let child_kernel = Arc::clone(&kernel);
        let os = std::thread::Builder::new()
            .name(format!("interleave-t{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&child_kernel), tid)));
                // A fresh thread waits its first turn before running.
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    let st = child_kernel.lock_state();
                    child_kernel.wait_until_active(st, tid);
                    let value = f();
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                }));
                CTX.with(|c| *c.borrow_mut() = None);
                child_kernel.finish(tid, outcome);
            })
            .expect("spawn interleave OS thread");
        kernel
            .os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(os);
        JoinHandle { tid, result }
    }

    /// An explicit yield point with no other effect.
    pub fn yield_now() {
        let (kernel, tid) = ctx();
        kernel.yield_point(tid, "yield_now");
    }
}

/// Tracked replacements for [`std::sync`] inside a model.
pub mod sync {
    use super::*;
    pub use std::sync::Arc;

    /// Tracked mutual-exclusion lock; every acquisition is a yield point.
    pub struct Mutex<T> {
        res: usize,
        inner: StdMutex<T>,
    }

    /// Guard for [`Mutex`]; releases the tracked lock on drop.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates a tracked mutex (must run inside a model).
        pub fn new(value: T) -> Mutex<T> {
            let (kernel, _tid) = ctx();
            Mutex {
                res: kernel.alloc_resource(ResState::Mutex { held_by: None }),
                inner: StdMutex::new(value),
            }
        }

        /// Acquires the lock, blocking (as a scheduling event) while held.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let (kernel, tid) = ctx();
            kernel.yield_point(tid, "mutex lock");
            loop {
                {
                    let mut st = kernel.lock_state();
                    if st.abort {
                        drop(st);
                        panic::panic_any(AbortToken);
                    }
                    if let ResState::Mutex { held_by } = &mut st.resources[self.res] {
                        if held_by.is_none() {
                            *held_by = Some(tid);
                            break;
                        }
                    }
                }
                kernel.block(tid, BlockedOn::Resource(self.res), "mutex contention");
            }
            MutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            let (kernel, _tid) = ctx();
            let mut st = kernel.lock_state();
            if let ResState::Mutex { held_by } = &mut st.resources[self.lock.res] {
                *held_by = None;
            }
            Kernel::wake_waiters(&mut st, BlockedOn::Resource(self.lock.res));
        }
    }

    /// Tracked reader-writer lock; acquisitions are yield points.
    pub struct RwLock<T> {
        res: usize,
        inner: StdMutex<T>,
    }

    /// Shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        lock: &'a RwLock<T>,
        // The value is cloned out under exclusivity, so reads hold no inner
        // guard; `Clone` keeps the tracked read non-exclusive over storage.
        value: T,
    }

    /// Exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T: Clone> RwLock<T> {
        /// Creates a tracked rwlock (must run inside a model).
        pub fn new(value: T) -> RwLock<T> {
            let (kernel, _tid) = ctx();
            RwLock {
                res: kernel.alloc_resource(ResState::RwLock {
                    writer: None,
                    readers: 0,
                }),
                inner: StdMutex::new(value),
            }
        }

        /// Acquires a shared read view (a clone of the protected value).
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let (kernel, tid) = ctx();
            kernel.yield_point(tid, "rwlock read");
            loop {
                {
                    let mut st = kernel.lock_state();
                    if st.abort {
                        drop(st);
                        panic::panic_any(AbortToken);
                    }
                    if let ResState::RwLock { writer, readers } = &mut st.resources[self.res] {
                        if writer.is_none() {
                            *readers += 1;
                            break;
                        }
                    }
                }
                kernel.block(tid, BlockedOn::Resource(self.res), "rwlock read contention");
            }
            let value = self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone();
            RwLockReadGuard { lock: self, value }
        }

        /// Acquires the exclusive write side.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let (kernel, tid) = ctx();
            kernel.yield_point(tid, "rwlock write");
            loop {
                {
                    let mut st = kernel.lock_state();
                    if st.abort {
                        drop(st);
                        panic::panic_any(AbortToken);
                    }
                    if let ResState::RwLock { writer, readers } = &mut st.resources[self.res] {
                        if writer.is_none() && *readers == 0 {
                            *writer = Some(tid);
                            break;
                        }
                    }
                }
                kernel.block(
                    tid,
                    BlockedOn::Resource(self.res),
                    "rwlock write contention",
                );
            }
            RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            }
        }
    }

    impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            let (kernel, _tid) = ctx();
            let mut st = kernel.lock_state();
            if let ResState::RwLock { readers, .. } = &mut st.resources[self.lock.res] {
                *readers = readers.saturating_sub(1);
            }
            Kernel::wake_waiters(&mut st, BlockedOn::Resource(self.lock.res));
        }
    }

    impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            let (kernel, _tid) = ctx();
            let mut st = kernel.lock_state();
            if let ResState::RwLock { writer, .. } = &mut st.resources[self.lock.res] {
                *writer = None;
            }
            Kernel::wake_waiters(&mut st, BlockedOn::Resource(self.lock.res));
        }
    }

    /// Tracked sequentially-consistent atomics: each access is a yield
    /// point. The `Ordering` argument is accepted for API compatibility and
    /// ignored — the model explores sequential consistency only.
    pub mod atomic {
        use super::super::*;
        pub use std::sync::atomic::Ordering;

        macro_rules! tracked_atomic {
            ($name:ident, $prim:ty) => {
                /// Tracked atomic cell; every access is a scheduling point.
                pub struct $name {
                    inner: StdMutex<$prim>,
                }

                impl $name {
                    /// Creates the cell (must run inside a model).
                    pub fn new(value: $prim) -> $name {
                        $name {
                            inner: StdMutex::new(value),
                        }
                    }

                    fn with<R>(&self, label: &str, f: impl FnOnce(&mut $prim) -> R) -> R {
                        let (kernel, tid) = ctx();
                        kernel.yield_point(tid, label);
                        let mut slot = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                        f(&mut slot)
                    }

                    /// Atomic read.
                    pub fn load(&self, _order: Ordering) -> $prim {
                        self.with("atomic load", |v| *v)
                    }

                    /// Atomic write.
                    pub fn store(&self, value: $prim, _order: Ordering) {
                        self.with("atomic store", |v| *v = value)
                    }

                    /// Atomic swap; returns the previous value.
                    pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                        self.with("atomic swap", |v| std::mem::replace(v, value))
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.with("atomic cas", |v| {
                            if *v == current {
                                *v = new;
                                Ok(current)
                            } else {
                                Err(*v)
                            }
                        })
                    }
                }
            };
        }

        tracked_atomic!(AtomicU64, u64);
        tracked_atomic!(AtomicUsize, usize);
        tracked_atomic!(AtomicBool, bool);

        impl AtomicU64 {
            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, delta: u64, _order: Ordering) -> u64 {
                self.with("atomic fetch_add", |v| {
                    let old = *v;
                    *v = v.wrapping_add(delta);
                    old
                })
            }
        }

        impl AtomicUsize {
            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, delta: usize, _order: Ordering) -> usize {
                self.with("atomic fetch_add", |v| {
                    let old = *v;
                    *v = v.wrapping_add(delta);
                    old
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};
    use super::*;

    #[test]
    fn unsynchronized_increment_loses_an_update_and_the_checker_finds_it() {
        let violation = model_expect_violation(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        // Racy read-modify-write: load then store.
                        let seen = counter.load(Ordering::SeqCst);
                        counter.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(violation.contains("lost update"), "got: {violation}");
    }

    #[test]
    fn mutex_protected_increment_passes_exhaustively() {
        let report = model(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let mut guard = counter.lock();
                        *guard += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.schedules > 1, "expected multiple interleavings");
    }

    #[test]
    fn ab_ba_lock_order_deadlocks_and_the_checker_reports_it() {
        let violation = model_expect_violation(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join();
        });
        assert!(violation.contains("deadlock"), "got: {violation}");
    }

    #[test]
    fn nondet_multiplies_the_explored_space() {
        let report = model(|| {
            let fault = nondet(2);
            assert!(fault < 2);
        });
        assert_eq!(report.schedules, 2, "one schedule per nondet branch");
    }

    #[test]
    fn fixed_two_thread_handoff_is_fully_enumerated() {
        // Two threads, one tracked op each after spawn → the interleaving
        // space is small and exactly enumerable.
        let report = model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || x2.store(1, Ordering::SeqCst));
            let _ = x.load(Ordering::SeqCst);
            t.join();
        });
        assert!(report.schedules >= 2, "got {}", report.schedules);
    }
}
