//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value *tree* (shrinking is not
/// implemented); a strategy is simply a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `variants` (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.variants.len() as u64) as usize;
        self.variants[pick].sample(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                ((self.start as $u).wrapping_add(rng.below(span) as $u)) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// String strategies from a regex-subset pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests", 0)
    }

    #[test]
    fn ranges_tuples_map_just() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = (0u8..5).sample(&mut rng);
            assert!(v < 5);
            let (a, b) = ((0u32..4), (10u64..12)).sample(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
            let m = (0u8..3).prop_map(|x| x as u64 * 10).sample(&mut rng);
            assert!(m % 10 == 0 && m <= 20);
            assert_eq!(Just(7u8).sample(&mut rng), 7);
            let s = (-5i64..-1).sample(&mut rng);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
