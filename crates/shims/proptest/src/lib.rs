//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this shim implements the
//! subset of the proptest API its tests use: the [`strategy::Strategy`]
//! trait with `prop_map`, integer-range / tuple / `Just` / regex-string
//! strategies, [`collection::vec`] and [`collection::btree_set`], the
//! [`prop_oneof!`] union, and the [`proptest!`] test macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the rendered inputs of
//!   that case instead of a minimized counter-example;
//! * **deterministic seeding** — the RNG is seeded from the test's module
//!   path and the case index, so failures reproduce across runs and CI;
//! * `prop_assert*` are plain `assert*` aliases (they panic rather than
//!   return `Err`, which is equivalent under this runner).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Property-test declaration macro (see crate docs for the differences from
/// real proptest).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg_pat:pat_param in $arg_strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ( $( $arg_pat, )+ ) = (
                    $( $crate::strategy::Strategy::sample(&($arg_strat), &mut __rng), )+
                );
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
