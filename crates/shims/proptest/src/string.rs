//! String generation from a small regex subset.
//!
//! Real proptest compiles full regexes into strategies; the patterns used in
//! this workspace only need character classes, literals, optional groups and
//! `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers, e.g. `"[a-z]{1,8}"`,
//! `"[A-Za-z][A-Za-z0-9]{0,8}"` or `"[a-z]{2}(-[a-z]{2})?"`. Anything
//! outside that subset panics with a clear message so a future test author
//! knows to extend this module.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum AtomKind {
    /// A character class: inclusive ranges plus literal alternatives.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
    /// A parenthesized sub-pattern.
    Group(Vec<Atom>),
}

#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize, // inclusive
}

/// Generates one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_sequence(&mut pattern.chars().collect::<Vec<_>>().as_slice(), pattern);
    let mut out = String::new();
    emit_sequence(&atoms, rng, &mut out);
    out
}

fn emit_sequence(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
    for atom in atoms {
        let count = if atom.min == atom.max {
            atom.min
        } else {
            rng.usize_in(atom.min, atom.max + 1)
        };
        for _ in 0..count {
            match &atom.kind {
                AtomKind::Literal(c) => out.push(*c),
                AtomKind::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = (hi as u64) - (lo as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).expect("class range"));
                            break;
                        }
                        pick -= span;
                    }
                }
                AtomKind::Group(inner) => emit_sequence(inner, rng, out),
            }
        }
    }
}

/// Parses a sequence of atoms until end-of-input or a closing parenthesis
/// (which is left unconsumed).
fn parse_sequence(rest: &mut &[char], pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    while let Some(&c) = rest.first() {
        if c == ')' {
            break;
        }
        *rest = &rest[1..];
        let kind = match c {
            '[' => AtomKind::Class(parse_class(rest, pattern)),
            '(' => {
                let inner = parse_sequence(rest, pattern);
                match rest.first() {
                    Some(')') => *rest = &rest[1..],
                    _ => unsupported(pattern, "unterminated group"),
                }
                AtomKind::Group(inner)
            }
            '\\' => {
                let escaped = rest.first().copied().unwrap_or_else(|| {
                    unsupported(pattern, "dangling escape");
                });
                *rest = &rest[1..];
                AtomKind::Literal(match escaped {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                })
            }
            '|' | '.' | '^' | '$' | '*' | '+' | '?' | '{' => {
                unsupported(pattern, "construct outside the supported subset")
            }
            literal => AtomKind::Literal(literal),
        };
        let (min, max) = parse_quantifier(rest, pattern);
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

fn parse_class(rest: &mut &[char], pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = next_or(rest, pattern, "unterminated character class");
        if c == ']' {
            if ranges.is_empty() {
                unsupported(pattern, "empty character class");
            }
            return ranges;
        }
        if rest.first() == Some(&'-') && rest.get(1).is_some_and(|&n| n != ']') {
            *rest = &rest[1..];
            let hi = next_or(rest, pattern, "unterminated class range");
            if hi < c {
                unsupported(pattern, "inverted class range");
            }
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
}

fn parse_quantifier(rest: &mut &[char], pattern: &str) -> (usize, usize) {
    match rest.first() {
        Some('?') => {
            *rest = &rest[1..];
            (0, 1)
        }
        Some('*') => {
            *rest = &rest[1..];
            (0, 8)
        }
        Some('+') => {
            *rest = &rest[1..];
            (1, 8)
        }
        Some('{') => {
            *rest = &rest[1..];
            let mut digits = String::new();
            let mut min: Option<usize> = None;
            loop {
                let c = next_or(rest, pattern, "unterminated quantifier");
                match c {
                    '0'..='9' => digits.push(c),
                    ',' => {
                        min = Some(digits.parse().unwrap_or_else(|_| {
                            unsupported(pattern, "malformed quantifier");
                        }));
                        digits.clear();
                    }
                    '}' => {
                        let n: usize = digits.parse().unwrap_or_else(|_| {
                            unsupported(pattern, "malformed quantifier");
                        });
                        return match min {
                            Some(lo) => (lo, n),
                            None => (n, n),
                        };
                    }
                    _ => unsupported(pattern, "malformed quantifier"),
                }
            }
        }
        _ => (1, 1),
    }
}

fn next_or(rest: &mut &[char], pattern: &str, message: &str) -> char {
    match rest.first() {
        Some(&c) => {
            *rest = &rest[1..];
            c
        }
        None => unsupported(pattern, message),
    }
}

fn unsupported(pattern: &str, message: &str) -> ! {
    panic!("proptest shim: unsupported regex pattern {pattern:?}: {message}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string", 0)
    }

    #[test]
    fn classes_with_quantifiers() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = sample_pattern("[A-Za-z][A-Za-z0-9]{0,8}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            assert!(t.len() <= 9 && !t.is_empty());

            let u = sample_pattern("[a-zA-Z0-9 ]{0,24}", &mut rng);
            assert!(u.len() <= 24);
            assert!(u.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn optional_group_with_literal() {
        let mut rng = rng();
        let mut saw_long = false;
        let mut saw_short = false;
        for _ in 0..200 {
            let s = sample_pattern("[a-z]{2}(-[a-z]{2})?", &mut rng);
            match s.len() {
                2 => saw_short = true,
                5 => {
                    saw_long = true;
                    assert_eq!(s.as_bytes()[2], b'-');
                }
                n => panic!("unexpected length {n}: {s:?}"),
            }
        }
        assert!(saw_long && saw_short);
    }

    #[test]
    fn exact_count_and_escape() {
        let mut rng = rng();
        assert_eq!(sample_pattern("[a-a]{3}", &mut rng), "aaa");
        assert_eq!(sample_pattern("ab\\.c", &mut rng), "ab.c");
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_construct_panics() {
        sample_pattern("a|b", &mut rng());
    }
}
