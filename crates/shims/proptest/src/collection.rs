//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// Number-of-elements specification accepted by the collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>`. The size bound applies to the number
/// of *insertions*; collisions can make the set smaller (the real proptest
/// retries, which is an irrelevant refinement for the oracle-style tests in
/// this workspace).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet<S::Value>` (same size semantics as
/// [`btree_set`]).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let insertions = rng.usize_in(self.size.lo, self.size.hi);
        (0..insertions).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let insertions = rng.usize_in(self.size.lo, self.size.hi);
        (0..insertions).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::deterministic("collection", 0);
        for _ in 0..200 {
            let v = vec(0u8..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_bounded() {
        let mut rng = TestRng::deterministic("collection", 1);
        for _ in 0..200 {
            let s = btree_set(0u32..500, 0..100).sample(&mut rng);
            assert!(s.len() < 100);
        }
    }
}
