//! The items `use proptest::prelude::*` brings into scope.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// The `prop` path alias (`prop::collection::vec` etc.).
pub use crate as prop;
