//! The (minimal) test runner: configuration and the deterministic RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 128 keeps the (single-core CI)
        // suite fast while still exercising each property broadly.
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic generator: xoshiro256++ seeded from (test name, case index)
/// so every failure reproduces without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index via splitmix64.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Debiased multiply-shift (Lemire).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
