//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("arbitrary", 0);
        let a: u64 = any::<u64>().sample(&mut rng);
        let b: u64 = any::<u64>().sample(&mut rng);
        assert_ne!(a, b);
        let _signed: i64 = any::<i64>().sample(&mut rng);
    }
}
