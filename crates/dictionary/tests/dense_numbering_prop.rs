//! Property-based tests of the dense-numbering dictionary (§5.1 of the
//! paper): identifiers stay dense on both sides of the 2³² split, encoding
//! is injective, decoding is its inverse, and late property discovery
//! (promotion) never leaves stale identifiers behind.

use inferray_dictionary::{wellknown, Dictionary};
use inferray_model::ids::{is_property_id, is_resource_id, PROPERTY_BASE, RESOURCE_BASE};
use inferray_model::{Term, Triple};
use proptest::prelude::*;
use std::collections::HashSet;

fn arbitrary_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{1,6}".prop_map(|l| Term::iri(format!("http://example.org/{l}"))),
        "[a-z]{1,6}".prop_map(Term::blank),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Term::plain_literal),
        ("[a-z]{1,6}", 0u32..3).prop_map(|(lex, dt)| {
            Term::typed_literal(lex, format!("http://example.org/dt{dt}"))
        }),
    ]
}

fn arbitrary_predicate() -> impl Strategy<Value = Term> {
    // A small predicate universe so that datasets reuse predicates, which is
    // what makes vertical partitioning (and dense property numbering) pay.
    (0u32..8).prop_map(|n| Term::iri(format!("http://example.org/p{n}")))
}

fn arbitrary_triples() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        ("[a-z]{1,6}", arbitrary_predicate(), arbitrary_term())
            .prop_map(|(s, p, o)| Triple::new(Term::iri(format!("http://example.org/{s}")), p, o)),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encoding a dataset keeps both halves of the id space dense, assigns
    /// every term exactly one identifier, and decoding inverts encoding.
    #[test]
    fn dense_injective_and_invertible(triples in arbitrary_triples()) {
        let mut dictionary = Dictionary::new();
        let mut encoded = Vec::new();
        for triple in &triples {
            encoded.push(dictionary.encode_triple(triple).expect("IRI predicates encode"));
        }

        // Density: property ids occupy exactly [BASE - n + 1, BASE], resource
        // ids exactly [BASE + 1, BASE + m].
        let n_props = dictionary.num_properties() as u64;
        let n_res = dictionary.num_resources() as u64;
        let mut seen_props = HashSet::new();
        let mut seen_res = HashSet::new();
        for (id, term) in dictionary.iter() {
            if is_property_id(id) {
                prop_assert!(id > PROPERTY_BASE - n_props && id <= PROPERTY_BASE,
                    "property id {id} outside the dense window");
                seen_props.insert(id);
            } else {
                prop_assert!(is_resource_id(id));
                prop_assert!(id >= RESOURCE_BASE && id < RESOURCE_BASE + n_res,
                    "resource id {id} outside the dense window");
                seen_res.insert(id);
            }
            // decode ∘ encode = identity.
            prop_assert_eq!(dictionary.id_of(term), Some(id));
        }
        prop_assert_eq!(seen_props.len() as u64, n_props);
        prop_assert_eq!(seen_res.len() as u64, n_res);

        // Every encoded triple decodes back to its source.
        for (original, id_triple) in triples.iter().zip(&encoded) {
            prop_assert!(is_property_id(id_triple.p));
            let decoded = dictionary.decode_triple(*id_triple).expect("decodes");
            prop_assert_eq!(&decoded, original);
        }

        // Re-encoding is stable: same ids the second time around.
        for (original, id_triple) in triples.iter().zip(&encoded) {
            let again = dictionary.encode_triple(original).unwrap();
            prop_assert_eq!(again, *id_triple);
        }
    }

    /// Distinct terms never collide.
    #[test]
    fn encoding_is_injective(terms in prop::collection::hash_set(arbitrary_term(), 0..40)) {
        let mut dictionary = Dictionary::new();
        let mut ids = HashSet::new();
        for term in &terms {
            let id = dictionary.encode_as_resource(term);
            prop_assert!(ids.insert(id), "id {id} assigned twice");
        }
        prop_assert_eq!(ids.len(), terms.len());
    }
}

#[test]
fn late_property_discovery_promotes_and_reports_the_mapping() {
    let mut dictionary = Dictionary::new();
    // "knows" first shows up as a plain resource (object position)…
    let knows = Term::iri("http://example.org/knows");
    let as_resource = dictionary.encode_as_resource(&knows);
    assert!(is_resource_id(as_resource));
    assert!(!dictionary.has_pending_promotions());

    // …and later as a predicate: it must move to the property half.
    let triple = Triple::new(
        Term::iri("http://example.org/alice"),
        knows.clone(),
        Term::iri("http://example.org/bob"),
    );
    let encoded = dictionary.encode_triple(&triple).unwrap();
    assert!(is_property_id(encoded.p));
    assert_eq!(dictionary.id_of(&knows), Some(encoded.p));
    assert_eq!(dictionary.decode(encoded.p), Some(&knows));

    // The promotion is reported exactly once so the loader can patch stores.
    assert!(dictionary.has_pending_promotions());
    let promotions = dictionary.take_promotions();
    assert_eq!(promotions, vec![(as_resource, encoded.p)]);
    assert!(!dictionary.has_pending_promotions());
    assert!(dictionary.take_promotions().is_empty());
}

#[test]
fn well_known_vocabulary_is_preloaded_at_fixed_ids() {
    let dictionary = Dictionary::new();
    assert_eq!(
        dictionary.id_of(&Term::iri(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        )),
        Some(wellknown::RDF_TYPE)
    );
    assert_eq!(
        dictionary.id_of(&Term::iri(
            "http://www.w3.org/2000/01/rdf-schema#subClassOf"
        )),
        Some(wellknown::RDFS_SUB_CLASS_OF)
    );
    assert_eq!(
        dictionary.id_of(&Term::iri("http://www.w3.org/2002/07/owl#Thing")),
        Some(wellknown::OWL_THING)
    );
    // A fresh dictionary contains exactly the preloaded vocabulary.
    assert_eq!(
        dictionary.num_properties(),
        wellknown::NUM_SCHEMA_PROPERTIES
    );
    assert_eq!(dictionary.num_resources(), wellknown::NUM_SCHEMA_RESOURCES);
}

#[test]
fn literals_with_identical_lexical_forms_but_different_types_get_distinct_ids() {
    let mut dictionary = Dictionary::new();
    let plain = dictionary.encode_as_resource(&Term::plain_literal("42"));
    let typed = dictionary.encode_as_resource(&Term::integer(42));
    let tagged = dictionary.encode_as_resource(&Term::lang_literal("42", "en"));
    let iri = dictionary.encode_as_resource(&Term::iri("42"));
    let ids = [plain, typed, tagged, iri];
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len());
}
