//! A thread-safe wrapper around [`Dictionary`].
//!
//! The main inference loop decodes nothing — it only moves identifiers — but
//! the benchmark harness and the parallel N-Triples writer decode triples
//! from several threads at once. [`SharedDictionary`] provides the minimal
//! shared-ownership surface for that: concurrent readers through a
//! `parking_lot::RwLock`, exclusive writers during the load phase.

use crate::{Dictionary, EncodeError};
use inferray_model::{IdTriple, Term, Triple};
use parking_lot::RwLock;
use std::sync::Arc;

/// Cheaply clonable, thread-safe dictionary handle.
#[derive(Debug, Clone, Default)]
pub struct SharedDictionary {
    inner: Arc<RwLock<Dictionary>>,
}

impl SharedDictionary {
    /// Wraps a fresh [`Dictionary`].
    pub fn new() -> Self {
        SharedDictionary {
            inner: Arc::new(RwLock::new(Dictionary::new())),
        }
    }

    /// Wraps an existing dictionary (e.g. one populated by the loader).
    pub fn from_dictionary(dict: Dictionary) -> Self {
        SharedDictionary {
            inner: Arc::new(RwLock::new(dict)),
        }
    }

    /// Encodes a triple (exclusive lock).
    pub fn encode_triple(&self, triple: &Triple) -> Result<IdTriple, EncodeError> {
        self.inner.write().encode_triple(triple)
    }

    /// Decodes a triple (shared lock).
    pub fn decode_triple(&self, triple: IdTriple) -> Option<Triple> {
        self.inner.read().decode_triple(triple)
    }

    /// Decodes a single identifier (shared lock).
    pub fn decode(&self, id: u64) -> Option<Term> {
        self.inner.read().decode(id).cloned()
    }

    /// Looks up the identifier of a term (shared lock).
    pub fn id_of(&self, term: &Term) -> Option<u64> {
        self.inner.read().id_of(term)
    }

    /// Runs `f` with shared read access to the underlying dictionary.
    pub fn with_read<R>(&self, f: impl FnOnce(&Dictionary) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive write access to the underlying dictionary.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Dictionary) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Extracts a clone of the underlying dictionary.
    pub fn snapshot(&self) -> Dictionary {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::vocab;
    use std::thread;

    #[test]
    fn concurrent_reads_after_single_writer_load() {
        let shared = SharedDictionary::new();
        let mut encoded = Vec::new();
        for i in 0..64 {
            let t = Triple::iris(
                format!("http://ex/s{i}"),
                vocab::RDF_TYPE,
                format!("http://ex/C{}", i % 4),
            );
            encoded.push((shared.encode_triple(&t).unwrap(), t));
        }
        thread::scope(|scope| {
            for chunk in encoded.chunks(16) {
                let shared = &shared;
                scope.spawn(move || {
                    for (enc, orig) in chunk {
                        assert_eq!(shared.decode_triple(*enc).as_ref(), Some(orig));
                    }
                });
            }
        });
    }

    #[test]
    fn with_read_and_write_expose_the_dictionary() {
        let shared = SharedDictionary::new();
        let n = shared.with_read(|d| d.num_properties());
        shared.with_write(|d| {
            d.encode_as_property(&Term::iri("http://ex/p")).unwrap();
        });
        assert_eq!(shared.with_read(|d| d.num_properties()), n + 1);
        assert!(shared.id_of(&Term::iri("http://ex/p")).is_some());
    }

    #[test]
    fn snapshot_is_independent() {
        let shared = SharedDictionary::new();
        let snap = shared.snapshot();
        shared.with_write(|d| {
            d.encode_as_resource(&Term::iri("http://ex/r"));
        });
        assert!(snap.id_of_iri("http://ex/r").is_none());
        assert!(shared.id_of(&Term::iri("http://ex/r")).is_some());
    }
}
