//! # inferray-dictionary
//!
//! Dictionary encoding with the *dense numbering* scheme of section 5.1 of
//! the Inferray paper (Subercaze et al., VLDB 2016).
//!
//! Every RDF term is mapped to a fixed-length 64-bit identifier:
//!
//! * terms that occur in the *predicate* position (properties) are numbered
//!   **downwards** from 2³² — the first property gets 2³², the second 2³² − 1,
//!   and so on;
//! * every other term (classes, individuals, literals — collectively
//!   "resources") is numbered **upwards** from 2³² + 1.
//!
//! Keeping both halves dense lowers the entropy of the encoded values, which
//! is what the counting-sort and adaptive-radix kernels in `inferray-sort`
//! exploit. Encoding and dense numbering happen simultaneously while triples
//! are read, exactly as in the paper ("each triple is read from the file
//! system, dictionary encoding and dense numbering happen simultaneously").
//!
//! ## Property promotion
//!
//! RDF schema triples place properties in the *subject* (and sometimes
//! object) position — `p rdfs:domain c`, `p1 rdfs:subPropertyOf p2`. With a
//! single streaming pass a term can therefore be met as a plain resource
//! before it is discovered to be a property. The [`Dictionary`] handles this
//! by *promoting* the term: it receives a fresh dense property identifier,
//! the textual mapping is updated, and the `(old resource id → new property
//! id)` pair is recorded so that already-encoded triples can be patched in a
//! single linear pass (see [`Dictionary::take_promotions`]). This keeps the
//! one-pass loading behaviour of the paper while preserving the invariant
//! that *a property has exactly one identifier, in the property half*.
//!
//! ## Well-known identifiers
//!
//! The RDF/RDFS/OWL vocabulary is pre-registered in a fixed order, so the
//! identifiers of `rdf:type`, `rdfs:subClassOf`, … are compile-time constants
//! exposed in [`wellknown`]; the rule engine uses them directly without any
//! dictionary lookup at inference time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
pub mod shared;
pub mod stats;
pub mod wellknown;

pub use dictionary::{Dictionary, EncodeError};
pub use shared::SharedDictionary;
