//! The [`Dictionary`] type: term ↔ identifier interning with dense numbering.

use inferray_model::ids::{
    is_property_id, nth_property_id, nth_resource_id, property_index, resource_index,
    MAX_PROPERTIES,
};
use inferray_model::{vocab, FxHashMap, IdTriple, Term, Triple};
use std::cell::RefCell;
use std::fmt;

/// Renders `term`'s canonical textual form (the interning key) into a
/// thread-local scratch buffer and hands it to `f`, so lookups of known
/// terms never allocate — the hot encode path pays one allocation per *new*
/// term, not per occurrence.
fn with_term_key<R>(term: &Term, f: impl FnOnce(&str) -> R) -> R {
    thread_local! {
        static KEY_BUF: RefCell<String> = const { RefCell::new(String::new()) };
    }
    KEY_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        term.write_ntriples(&mut buf);
        f(&buf)
    })
}

/// Errors produced while encoding terms or triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The predicate of a triple was not an IRI.
    InvalidPredicate(String),
    /// The subject of a triple was a literal.
    LiteralSubject(String),
    /// The property half of the identifier space overflowed (more than 2³²
    /// distinct properties — never happens on real data).
    PropertySpaceExhausted,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::InvalidPredicate(t) => write!(f, "predicate is not an IRI: {t}"),
            EncodeError::LiteralSubject(t) => write!(f, "subject is a literal: {t}"),
            EncodeError::PropertySpaceExhausted => {
                write!(f, "more than 2^32 distinct properties")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Bidirectional term ↔ identifier dictionary with dense numbering.
///
/// See the crate-level documentation for the numbering scheme. A freshly
/// created dictionary already contains the RDF/RDFS/OWL vocabulary (in the
/// order fixed by [`inferray_model::vocab::SCHEMA_PROPERTIES`] /
/// [`SCHEMA_RESOURCES`](inferray_model::vocab::SCHEMA_RESOURCES)), so the
/// constants in [`crate::wellknown`] are always valid.
///
/// ```
/// use inferray_dictionary::{Dictionary, wellknown};
/// use inferray_model::{Term, Triple, vocab};
///
/// let mut dict = Dictionary::new();
/// let t = Triple::iris("http://ex/human", vocab::RDFS_SUB_CLASS_OF, "http://ex/mammal");
/// let enc = dict.encode_triple(&t).unwrap();
/// assert_eq!(enc.p, wellknown::RDFS_SUB_CLASS_OF);
/// assert_eq!(dict.decode(enc.s).unwrap(), &Term::iri("http://ex/human"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    /// Textual (N-Triples) form → identifier (FxHash: the keys are long and
    /// hashed on every occurrence, see [`inferray_model::hash`]).
    to_id: FxHashMap<String, u64>,
    /// Dense property index → term.
    properties: Vec<Term>,
    /// Dense resource index → term.
    resources: Vec<Term>,
    /// `(old resource id, new property id)` pairs produced by promotions that
    /// have not yet been collected by [`Dictionary::take_promotions`].
    pending_promotions: Vec<(u64, u64)>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Self::new()
    }
}

impl Dictionary {
    /// Creates a dictionary pre-loaded with the RDF/RDFS/OWL vocabulary.
    pub fn new() -> Self {
        let mut dict = Dictionary {
            to_id: FxHashMap::default(),
            properties: Vec::new(),
            resources: Vec::new(),
            pending_promotions: Vec::new(),
        };
        for iri in vocab::SCHEMA_PROPERTIES {
            dict.intern_property(&Term::iri(*iri))
                .expect("vocabulary fits the property space");
        }
        for iri in vocab::SCHEMA_RESOURCES {
            dict.intern_resource(&Term::iri(*iri));
        }
        dict
    }

    /// Rebuilds a dictionary from its dense term tables — the recovery path
    /// of the persistence layer, which serializes exactly the two
    /// registration-ordered term vectors ([`Dictionary::iter`] enumerates
    /// properties then resources in dense order).
    ///
    /// The reverse map is reconstructed with the same precedence the live
    /// dictionary maintains: when a term occurs in both tables (a *promoted*
    /// property whose stale resource slot is kept for decoding), the lookup
    /// map points at the property identifier, exactly as after
    /// [`Dictionary::encode_as_property`] promoted it. No promotions are
    /// pending on the rebuilt dictionary.
    pub fn from_dense_terms(properties: Vec<Term>, resources: Vec<Term>) -> Self {
        // This is the cold-start critical path of the persistence layer:
        // at LUBM scale the reverse map means rendering ~10⁵ interning keys,
        // which dominates snapshot recovery if done serially. The keys are
        // independent, so render them in parallel chunks; the serial
        // remainder is one pre-sized hash insert per term. Chunks are
        // inserted resources-first, properties-last — the same precedence
        // order as the serial loop, so a promoted property still wins the
        // duplicate key.
        type RenderTask<'a> = Box<dyn FnOnce() -> Vec<(String, u64)> + Send + 'a>;
        let pool = inferray_parallel::global();
        let total = properties.len() + resources.len();
        let chunk_len = (total / (pool.threads() * 4).max(1)).max(1024);
        let mut tasks: Vec<RenderTask<'_>> = Vec::new();
        for (chunk_index, chunk) in resources.chunks(chunk_len).enumerate() {
            let start = chunk_index * chunk_len;
            tasks.push(Box::new(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, term)| (term.to_ntriples(), nth_resource_id(start + i)))
                    .collect()
            }));
        }
        for (chunk_index, chunk) in properties.chunks(chunk_len).enumerate() {
            let start = chunk_index * chunk_len;
            tasks.push(Box::new(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, term)| (term.to_ntriples(), nth_property_id(start + i)))
                    .collect()
            }));
        }
        let rendered = pool.run_ordered(tasks);

        let mut to_id = FxHashMap::default();
        to_id.reserve(total);
        for chunk in rendered {
            for (key, id) in chunk {
                to_id.insert(key, id);
            }
        }
        Dictionary {
            to_id,
            properties,
            resources,
            pending_promotions: Vec::new(),
        }
    }

    /// Number of distinct properties registered so far.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    /// Number of distinct resources (non-properties) registered so far.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Total number of registered terms.
    pub fn len(&self) -> usize {
        self.num_properties() + self.num_resources()
    }

    /// `true` only for a dictionary stripped of its vocabulary (never the
    /// case for dictionaries built with [`Dictionary::new`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The identifier of `term`, if it has been registered. Allocation-free:
    /// the lookup key is rendered into a reusable scratch buffer.
    pub fn id_of(&self, term: &Term) -> Option<u64> {
        with_term_key(term, |key| self.to_id.get(key).copied())
    }

    /// The identifier registered for the canonical textual form `key`
    /// (exactly what `Term::to_string()` renders). This is the borrowed-key
    /// entry point the streaming ingest layer uses to remap its thread-local
    /// delta dictionaries without materializing `Term`s.
    pub fn id_of_text(&self, key: &str) -> Option<u64> {
        self.to_id.get(key).copied()
    }

    /// The identifier of the IRI `iri`, if registered (convenience for tests
    /// and examples).
    pub fn id_of_iri(&self, iri: &str) -> Option<u64> {
        self.id_of(&Term::iri(iri))
    }

    /// Decodes an identifier back to its term.
    pub fn decode(&self, id: u64) -> Option<&Term> {
        if is_property_id(id) {
            self.properties.get(property_index(id))
        } else {
            self.resources.get(resource_index(id))
        }
    }

    /// Encodes a term appearing in **predicate** position. Registers it as a
    /// property, promoting it if it had previously been met as a resource.
    pub fn encode_as_property(&mut self, term: &Term) -> Result<u64, EncodeError> {
        if !term.valid_predicate() {
            return Err(EncodeError::InvalidPredicate(term.to_string()));
        }
        self.intern_property(term)
    }

    /// Encodes a term appearing in **subject or object** position. If the
    /// term is already known (as either a property or a resource) its
    /// existing identifier is returned, so properties referenced by schema
    /// triples keep their property identifier.
    pub fn encode_as_resource(&mut self, term: &Term) -> u64 {
        if let Some(id) = with_term_key(term, |key| self.to_id.get(key).copied()) {
            return id;
        }
        let id = nth_resource_id(self.resources.len());
        self.resources.push(term.clone());
        self.to_id.insert(term.to_string(), id);
        id
    }

    /// Encodes a full triple, registering its terms as needed.
    ///
    /// Terms that sit in a *property position* of a schema triple — the
    /// subject of `rdfs:domain`/`rdfs:range`, both sides of
    /// `rdfs:subPropertyOf` / `owl:equivalentProperty` / `owl:inverseOf`, or
    /// the subject of an `rdf:type` declaration whose object is one of the
    /// property classes — are registered as *properties* even though they do
    /// not (yet) appear in a predicate position, so the property-hierarchy
    /// rules can address their tables directly.
    pub fn encode_triple(&mut self, triple: &Triple) -> Result<IdTriple, EncodeError> {
        if triple.subject.is_literal() {
            return Err(EncodeError::LiteralSubject(triple.subject.to_string()));
        }
        let p = self.encode_as_property(&triple.predicate)?;

        let subject_is_property = matches!(
            p,
            x if x == crate::wellknown::RDFS_SUB_PROPERTY_OF
                || x == crate::wellknown::RDFS_DOMAIN
                || x == crate::wellknown::RDFS_RANGE
                || x == crate::wellknown::OWL_EQUIVALENT_PROPERTY
                || x == crate::wellknown::OWL_INVERSE_OF
        ) || (p == crate::wellknown::RDF_TYPE
            && object_is_property_class(&triple.object));
        let object_is_property = matches!(
            p,
            x if x == crate::wellknown::RDFS_SUB_PROPERTY_OF
                || x == crate::wellknown::OWL_EQUIVALENT_PROPERTY
                || x == crate::wellknown::OWL_INVERSE_OF
        );

        let s = if subject_is_property && triple.subject.valid_predicate() {
            self.encode_as_property(&triple.subject)?
        } else {
            self.encode_as_resource(&triple.subject)
        };
        let o = if object_is_property && triple.object.valid_predicate() {
            self.encode_as_property(&triple.object)?
        } else {
            self.encode_as_resource(&triple.object)
        };
        Ok(IdTriple::new(s, p, o))
    }

    /// Decodes an encoded triple. Returns `None` when any identifier is
    /// unknown.
    pub fn decode_triple(&self, triple: IdTriple) -> Option<Triple> {
        Some(Triple::new(
            self.decode(triple.s)?.clone(),
            self.decode(triple.p)?.clone(),
            self.decode(triple.o)?.clone(),
        ))
    }

    /// Drains the `(old resource id → new property id)` remappings produced
    /// by property promotions since the last call. Loaders must apply these
    /// to any triples they encoded *before* the promotion happened.
    pub fn take_promotions(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.pending_promotions)
    }

    /// `true` when promotions are pending (useful to skip the patch pass).
    pub fn has_pending_promotions(&self) -> bool {
        !self.pending_promotions.is_empty()
    }

    /// Iterates over all registered property identifiers in dense order
    /// (registration order).
    pub fn property_ids(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.properties.len()).map(nth_property_id)
    }

    /// Iterates over `(identifier, term)` for every registered term.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Term)> + '_ {
        let props = self
            .properties
            .iter()
            .enumerate()
            .map(|(i, t)| (nth_property_id(i), t));
        let res = self
            .resources
            .iter()
            .enumerate()
            .map(|(i, t)| (nth_resource_id(i), t));
        props.chain(res)
    }

    // --- internal helpers -------------------------------------------------

    fn intern_property(&mut self, term: &Term) -> Result<u64, EncodeError> {
        if let Some(id) = with_term_key(term, |key| self.to_id.get(key).copied()) {
            if is_property_id(id) {
                return Ok(id);
            }
            // Promotion: the term was first met in a resource position.
            let new_id = self.fresh_property_id()?;
            self.properties.push(term.clone());
            self.to_id.insert(term.to_string(), new_id);
            self.pending_promotions.push((id, new_id));
            return Ok(new_id);
        }
        let id = self.fresh_property_id()?;
        self.properties.push(term.clone());
        self.to_id.insert(term.to_string(), id);
        Ok(id)
    }

    fn intern_resource(&mut self, term: &Term) -> u64 {
        self.encode_as_resource(term)
    }

    fn fresh_property_id(&self) -> Result<u64, EncodeError> {
        if self.properties.len() as u64 >= MAX_PROPERTIES {
            return Err(EncodeError::PropertySpaceExhausted);
        }
        Ok(nth_property_id(self.properties.len()))
    }
}

/// `true` when `term` is one of the RDF/OWL classes whose instances are
/// properties (so a `rdf:type` declaration marks its subject as a property).
fn object_is_property_class(term: &Term) -> bool {
    matches!(
        term.as_iri(),
        Some(
            vocab::RDF_PROPERTY
                | vocab::RDFS_CONTAINER_MEMBERSHIP_PROPERTY
                | vocab::OWL_TRANSITIVE_PROPERTY
                | vocab::OWL_SYMMETRIC_PROPERTY
                | vocab::OWL_FUNCTIONAL_PROPERTY
                | vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY
                | vocab::OWL_DATATYPE_PROPERTY
                | vocab::OWL_OBJECT_PROPERTY
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wellknown;
    use inferray_model::ids::{is_resource_id, PROPERTY_BASE};

    #[test]
    fn vocabulary_is_preregistered_in_order() {
        let dict = Dictionary::new();
        assert_eq!(dict.id_of_iri(vocab::RDF_TYPE), Some(PROPERTY_BASE));
        assert_eq!(
            dict.id_of_iri(vocab::RDFS_SUB_CLASS_OF),
            Some(PROPERTY_BASE - 1)
        );
        assert_eq!(
            dict.num_properties(),
            vocab::SCHEMA_PROPERTIES.len(),
            "only the vocabulary properties are registered initially"
        );
        assert_eq!(dict.num_resources(), vocab::SCHEMA_RESOURCES.len());
    }

    #[test]
    fn wellknown_constants_match_registration() {
        let dict = Dictionary::new();
        assert_eq!(dict.id_of_iri(vocab::RDF_TYPE), Some(wellknown::RDF_TYPE));
        assert_eq!(
            dict.id_of_iri(vocab::OWL_SAME_AS),
            Some(wellknown::OWL_SAME_AS)
        );
        assert_eq!(
            dict.id_of_iri(vocab::OWL_TRANSITIVE_PROPERTY),
            Some(wellknown::OWL_TRANSITIVE_PROPERTY)
        );
        assert_eq!(
            dict.id_of_iri(vocab::RDFS_RESOURCE),
            Some(wellknown::RDFS_RESOURCE)
        );
    }

    #[test]
    fn resources_are_densely_numbered() {
        let mut dict = Dictionary::new();
        let base = dict.num_resources();
        let a = dict.encode_as_resource(&Term::iri("http://ex/a"));
        let b = dict.encode_as_resource(&Term::iri("http://ex/b"));
        let a2 = dict.encode_as_resource(&Term::iri("http://ex/a"));
        assert_eq!(a, nth_resource_id(base));
        assert_eq!(b, nth_resource_id(base + 1));
        assert_eq!(a, a2, "re-encoding returns the same id");
        assert!(is_resource_id(a));
    }

    #[test]
    fn properties_are_densely_numbered_downwards() {
        let mut dict = Dictionary::new();
        let base = dict.num_properties();
        let p = dict
            .encode_as_property(&Term::iri("http://ex/knows"))
            .unwrap();
        let q = dict
            .encode_as_property(&Term::iri("http://ex/likes"))
            .unwrap();
        assert_eq!(p, nth_property_id(base));
        assert_eq!(q, nth_property_id(base + 1));
        assert!(q < p, "property ids decrease with registration order");
    }

    #[test]
    fn encode_triple_round_trips() {
        let mut dict = Dictionary::new();
        let t = Triple::iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        let enc = dict.encode_triple(&t).unwrap();
        assert_eq!(enc.p, wellknown::RDF_TYPE);
        assert_eq!(dict.decode_triple(enc).unwrap(), t);
    }

    #[test]
    fn literal_objects_are_encoded_as_resources() {
        let mut dict = Dictionary::new();
        let t = Triple::new(
            Term::iri("http://ex/a"),
            Term::iri("http://ex/label"),
            Term::plain_literal("hello"),
        );
        let enc = dict.encode_triple(&t).unwrap();
        assert!(is_resource_id(enc.o));
        assert_eq!(dict.decode(enc.o).unwrap(), &Term::plain_literal("hello"));
    }

    #[test]
    fn invalid_triples_are_rejected() {
        let mut dict = Dictionary::new();
        let bad_pred = Triple::new(
            Term::iri("http://ex/a"),
            Term::blank("p"),
            Term::iri("http://ex/b"),
        );
        assert!(matches!(
            dict.encode_triple(&bad_pred),
            Err(EncodeError::InvalidPredicate(_))
        ));
        let bad_subj = Triple::new(
            Term::plain_literal("x"),
            Term::iri("http://ex/p"),
            Term::iri("http://ex/b"),
        );
        assert!(matches!(
            dict.encode_triple(&bad_subj),
            Err(EncodeError::LiteralSubject(_))
        ));
    }

    #[test]
    fn promotion_remaps_resource_to_property() {
        let mut dict = Dictionary::new();
        // `hasPart` first appears as the subject of a schema triple...
        let as_resource = dict.encode_as_resource(&Term::iri("http://ex/hasPart"));
        assert!(is_resource_id(as_resource));
        // ...and later as a predicate.
        let as_property = dict
            .encode_as_property(&Term::iri("http://ex/hasPart"))
            .unwrap();
        assert!(is_property_id(as_property));
        let promotions = dict.take_promotions();
        assert_eq!(promotions, vec![(as_resource, as_property)]);
        assert!(!dict.has_pending_promotions());
        // Subsequent lookups, in any position, return the property id.
        assert_eq!(
            dict.encode_as_resource(&Term::iri("http://ex/hasPart")),
            as_property
        );
        assert_eq!(dict.id_of_iri("http://ex/hasPart"), Some(as_property));
        // Both ids still decode to the term (the stale resource slot remains
        // addressable so previously-encoded data can be decoded if needed).
        assert_eq!(
            dict.decode(as_property).unwrap(),
            &Term::iri("http://ex/hasPart")
        );
    }

    #[test]
    fn from_dense_terms_round_trips_a_dictionary_with_promotions() {
        let mut dict = Dictionary::new();
        dict.encode_as_resource(&Term::iri("http://ex/a"));
        dict.encode_as_resource(&Term::iri("http://ex/hasPart"));
        dict.encode_as_property(&Term::iri("http://ex/hasPart"))
            .unwrap();
        dict.encode_as_resource(&Term::plain_literal("42"));
        let _ = dict.take_promotions();

        let properties: Vec<Term> = dict.properties.clone();
        let resources: Vec<Term> = dict.resources.clone();
        let rebuilt = Dictionary::from_dense_terms(properties, resources);
        assert_eq!(rebuilt, dict, "dense-term rebuild is exact");
        // The promoted term resolves to its property id, not the stale
        // resource slot...
        let id = rebuilt.id_of_iri("http://ex/hasPart").unwrap();
        assert!(is_property_id(id));
        // ...while both slots still decode.
        assert_eq!(rebuilt.decode(id).unwrap(), &Term::iri("http://ex/hasPart"));
    }

    #[test]
    fn iter_enumerates_every_registered_term() {
        let mut dict = Dictionary::new();
        dict.encode_as_resource(&Term::iri("http://ex/a"));
        let n = dict.len();
        assert_eq!(dict.iter().count(), n);
        // Every enumerated id decodes back to the paired term.
        for (id, term) in dict.iter() {
            assert_eq!(dict.decode(id).unwrap(), term);
        }
    }

    #[test]
    fn distinct_literals_get_distinct_ids() {
        let mut dict = Dictionary::new();
        let a = dict.encode_as_resource(&Term::plain_literal("42"));
        let b = dict.encode_as_resource(&Term::typed_literal(
            "42",
            "http://www.w3.org/2001/XMLSchema#integer",
        ));
        let c = dict.encode_as_resource(&Term::lang_literal("42", "en"));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
