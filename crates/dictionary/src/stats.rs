//! Statistics over encoded identifier collections.
//!
//! The operating-range analysis of section 5.4 of the paper is driven by two
//! quantities: the *range* of the values to be sorted and their *entropy*
//! (Table 1 indexes its rows by both). This module computes those statistics
//! for arbitrary identifier slices so the store can pick the right sorting
//! kernel and the benchmark harness can label its output like the paper does.

/// Summary statistics of a collection of identifiers (one column of a
/// property table, or the flattened pair array).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdStats {
    /// Number of values observed.
    pub count: usize,
    /// Smallest value (0 when the collection is empty).
    pub min: u64,
    /// Largest value (0 when the collection is empty).
    pub max: u64,
    /// `max - min + 1` — the "range" axis of Table 1 (0 when empty).
    pub range: u64,
    /// Number of distinct values.
    pub distinct: usize,
    /// Empirical Shannon entropy of the value distribution, in bits.
    pub entropy_bits: f64,
}

impl IdStats {
    /// An empty statistics record.
    pub fn empty() -> Self {
        IdStats {
            count: 0,
            min: 0,
            max: 0,
            range: 0,
            distinct: 0,
            entropy_bits: 0.0,
        }
    }

    /// `log2(range)` — the entropy bound the paper quotes next to each range
    /// in Table 1 (e.g. range 500 K → 18.9 bits).
    pub fn range_bits(&self) -> f64 {
        if self.range <= 1 {
            0.0
        } else {
            (self.range as f64).log2()
        }
    }

    /// Density of the collection: `distinct / range` (1.0 = perfectly dense).
    pub fn density(&self) -> f64 {
        if self.range == 0 {
            0.0
        } else {
            self.distinct as f64 / self.range as f64
        }
    }
}

/// Computes [`IdStats`] over a slice of identifiers.
///
/// The entropy is the empirical Shannon entropy of the observed frequency
/// distribution; it is `O(n)` time and `O(distinct)` space (a sorted copy is
/// used to count frequencies without hashing).
pub fn id_stats(values: &[u64]) -> IdStats {
    if values.is_empty() {
        return IdStats::empty();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let max = *sorted.last().expect("non-empty");
    let n = sorted.len() as f64;

    let mut distinct = 0usize;
    let mut entropy = 0.0f64;
    let mut i = 0usize;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let freq = (j - i) as f64 / n;
        entropy -= freq * freq.log2();
        distinct += 1;
        i = j;
    }

    IdStats {
        count: values.len(),
        min,
        max,
        range: max - min + 1,
        distinct,
        entropy_bits: entropy,
    }
}

/// Computes statistics over the *subject* positions of a flattened pair
/// array (`[s0, o0, s1, o1, …]`), which is the histogram key the counting
/// sort uses.
pub fn subject_stats(pairs: &[u64]) -> IdStats {
    let subjects: Vec<u64> = pairs.iter().copied().step_by(2).collect();
    id_stats(&subjects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice() {
        let s = id_stats(&[]);
        assert_eq!(s, IdStats::empty());
        assert_eq!(s.range_bits(), 0.0);
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn uniform_values_have_zero_entropy() {
        let s = id_stats(&[7, 7, 7, 7]);
        assert_eq!(s.count, 4);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.range, 1);
        assert!(s.entropy_bits.abs() < 1e-12);
    }

    #[test]
    fn distinct_uniform_distribution_entropy_is_log2_n() {
        let values: Vec<u64> = (0..1024).collect();
        let s = id_stats(&values);
        assert_eq!(s.distinct, 1024);
        assert!((s.entropy_bits - 10.0).abs() < 1e-9);
        assert!((s.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_and_min_max() {
        let s = id_stats(&[10, 2, 30, 2]);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 30);
        assert_eq!(s.range, 29);
        assert_eq!(s.distinct, 3);
    }

    #[test]
    fn subject_stats_skips_objects() {
        // pairs: (1, 100), (2, 200), (1, 300)
        let s = subject_stats(&[1, 100, 2, 200, 1, 300]);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 2);
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn range_bits_matches_paper_convention() {
        // Table 1 quotes ~18.9 bits of entropy for a 500 K range.
        let s = IdStats {
            count: 500_000,
            min: 0,
            max: 499_999,
            range: 500_000,
            distinct: 500_000,
            entropy_bits: 18.9,
        };
        assert!((s.range_bits() - 18.93).abs() < 0.01);
    }
}
