//! Compile-time identifiers of the pre-registered vocabulary.
//!
//! [`Dictionary::new`](crate::Dictionary::new) registers the vocabulary of
//! [`inferray_model::vocab`] in a fixed order, so the dense identifiers of
//! the schema terms are known statically. The rule engine addresses property
//! tables and matches schema resources through these constants, never through
//! a dictionary lookup.
//!
//! The unit tests in this module (and in `dictionary.rs`) pin the constants
//! to the registration order; any reordering of
//! [`SCHEMA_PROPERTIES`](inferray_model::vocab::SCHEMA_PROPERTIES) /
//! [`SCHEMA_RESOURCES`](inferray_model::vocab::SCHEMA_RESOURCES) is caught by
//! the test-suite.

use inferray_model::ids::{PROPERTY_BASE, RESOURCE_BASE};

// --- properties (descending from PROPERTY_BASE, registration order) -------

/// `rdf:type`
pub const RDF_TYPE: u64 = PROPERTY_BASE;
/// `rdfs:subClassOf`
pub const RDFS_SUB_CLASS_OF: u64 = PROPERTY_BASE - 1;
/// `rdfs:subPropertyOf`
pub const RDFS_SUB_PROPERTY_OF: u64 = PROPERTY_BASE - 2;
/// `rdfs:domain`
pub const RDFS_DOMAIN: u64 = PROPERTY_BASE - 3;
/// `rdfs:range`
pub const RDFS_RANGE: u64 = PROPERTY_BASE - 4;
/// `rdfs:member`
pub const RDFS_MEMBER: u64 = PROPERTY_BASE - 5;
/// `owl:sameAs`
pub const OWL_SAME_AS: u64 = PROPERTY_BASE - 6;
/// `owl:equivalentClass`
pub const OWL_EQUIVALENT_CLASS: u64 = PROPERTY_BASE - 7;
/// `owl:equivalentProperty`
pub const OWL_EQUIVALENT_PROPERTY: u64 = PROPERTY_BASE - 8;
/// `owl:inverseOf`
pub const OWL_INVERSE_OF: u64 = PROPERTY_BASE - 9;
/// `rdfs:label`
pub const RDFS_LABEL: u64 = PROPERTY_BASE - 10;
/// `rdfs:comment`
pub const RDFS_COMMENT: u64 = PROPERTY_BASE - 11;
/// `rdf:first`
pub const RDF_FIRST: u64 = PROPERTY_BASE - 12;
/// `rdf:rest`
pub const RDF_REST: u64 = PROPERTY_BASE - 13;

/// Number of pre-registered vocabulary properties.
pub const NUM_SCHEMA_PROPERTIES: usize = 14;

// --- resources (ascending from RESOURCE_BASE, registration order) ---------

/// `rdfs:Resource`
pub const RDFS_RESOURCE: u64 = RESOURCE_BASE;
/// `rdfs:Class`
pub const RDFS_CLASS: u64 = RESOURCE_BASE + 1;
/// `rdfs:Literal`
pub const RDFS_LITERAL: u64 = RESOURCE_BASE + 2;
/// `rdfs:Datatype`
pub const RDFS_DATATYPE: u64 = RESOURCE_BASE + 3;
/// `rdfs:ContainerMembershipProperty`
pub const RDFS_CONTAINER_MEMBERSHIP_PROPERTY: u64 = RESOURCE_BASE + 4;
/// `rdf:Property`
pub const RDF_PROPERTY: u64 = RESOURCE_BASE + 5;
/// `rdf:nil`
pub const RDF_NIL: u64 = RESOURCE_BASE + 6;
/// `owl:TransitiveProperty`
pub const OWL_TRANSITIVE_PROPERTY: u64 = RESOURCE_BASE + 7;
/// `owl:SymmetricProperty`
pub const OWL_SYMMETRIC_PROPERTY: u64 = RESOURCE_BASE + 8;
/// `owl:FunctionalProperty`
pub const OWL_FUNCTIONAL_PROPERTY: u64 = RESOURCE_BASE + 9;
/// `owl:InverseFunctionalProperty`
pub const OWL_INVERSE_FUNCTIONAL_PROPERTY: u64 = RESOURCE_BASE + 10;
/// `owl:Class`
pub const OWL_CLASS: u64 = RESOURCE_BASE + 11;
/// `owl:Thing`
pub const OWL_THING: u64 = RESOURCE_BASE + 12;
/// `owl:Nothing`
pub const OWL_NOTHING: u64 = RESOURCE_BASE + 13;
/// `owl:DatatypeProperty`
pub const OWL_DATATYPE_PROPERTY: u64 = RESOURCE_BASE + 14;
/// `owl:ObjectProperty`
pub const OWL_OBJECT_PROPERTY: u64 = RESOURCE_BASE + 15;

/// Number of pre-registered vocabulary resources.
pub const NUM_SCHEMA_RESOURCES: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dictionary;
    use inferray_model::vocab;

    #[test]
    fn counts_match_vocabulary_lists() {
        assert_eq!(NUM_SCHEMA_PROPERTIES, vocab::SCHEMA_PROPERTIES.len());
        assert_eq!(NUM_SCHEMA_RESOURCES, vocab::SCHEMA_RESOURCES.len());
    }

    #[test]
    fn every_constant_matches_the_dictionary() {
        let dict = Dictionary::new();
        let expected: &[(&str, u64)] = &[
            (vocab::RDF_TYPE, RDF_TYPE),
            (vocab::RDFS_SUB_CLASS_OF, RDFS_SUB_CLASS_OF),
            (vocab::RDFS_SUB_PROPERTY_OF, RDFS_SUB_PROPERTY_OF),
            (vocab::RDFS_DOMAIN, RDFS_DOMAIN),
            (vocab::RDFS_RANGE, RDFS_RANGE),
            (vocab::RDFS_MEMBER, RDFS_MEMBER),
            (vocab::OWL_SAME_AS, OWL_SAME_AS),
            (vocab::OWL_EQUIVALENT_CLASS, OWL_EQUIVALENT_CLASS),
            (vocab::OWL_EQUIVALENT_PROPERTY, OWL_EQUIVALENT_PROPERTY),
            (vocab::OWL_INVERSE_OF, OWL_INVERSE_OF),
            (vocab::RDFS_LABEL, RDFS_LABEL),
            (vocab::RDFS_COMMENT, RDFS_COMMENT),
            (vocab::RDF_FIRST, RDF_FIRST),
            (vocab::RDF_REST, RDF_REST),
            (vocab::RDFS_RESOURCE, RDFS_RESOURCE),
            (vocab::RDFS_CLASS, RDFS_CLASS),
            (vocab::RDFS_LITERAL, RDFS_LITERAL),
            (vocab::RDFS_DATATYPE, RDFS_DATATYPE),
            (
                vocab::RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
                RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
            ),
            (vocab::RDF_PROPERTY, RDF_PROPERTY),
            (vocab::RDF_NIL, RDF_NIL),
            (vocab::OWL_TRANSITIVE_PROPERTY, OWL_TRANSITIVE_PROPERTY),
            (vocab::OWL_SYMMETRIC_PROPERTY, OWL_SYMMETRIC_PROPERTY),
            (vocab::OWL_FUNCTIONAL_PROPERTY, OWL_FUNCTIONAL_PROPERTY),
            (
                vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY,
                OWL_INVERSE_FUNCTIONAL_PROPERTY,
            ),
            (vocab::OWL_CLASS, OWL_CLASS),
            (vocab::OWL_THING, OWL_THING),
            (vocab::OWL_NOTHING, OWL_NOTHING),
            (vocab::OWL_DATATYPE_PROPERTY, OWL_DATATYPE_PROPERTY),
            (vocab::OWL_OBJECT_PROPERTY, OWL_OBJECT_PROPERTY),
        ];
        for (iri, id) in expected {
            assert_eq!(
                dict.id_of_iri(iri),
                Some(*id),
                "constant mismatch for {iri}"
            );
        }
    }

    #[test]
    fn property_constants_are_distinct() {
        let all = [
            RDF_TYPE,
            RDFS_SUB_CLASS_OF,
            RDFS_SUB_PROPERTY_OF,
            RDFS_DOMAIN,
            RDFS_RANGE,
            RDFS_MEMBER,
            OWL_SAME_AS,
            OWL_EQUIVALENT_CLASS,
            OWL_EQUIVALENT_PROPERTY,
            OWL_INVERSE_OF,
            RDFS_LABEL,
            RDFS_COMMENT,
            RDF_FIRST,
            RDF_REST,
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
