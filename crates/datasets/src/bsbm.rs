//! BSBM-like e-commerce workload generator (Table 2 substitution).
//!
//! The Berlin SPARQL Benchmark models an e-commerce scenario: a hierarchy of
//! product types, products typed with the leaves of the hierarchy, producers,
//! vendors, offers and reviews connected through properties that carry
//! `rdfs:domain`/`rdfs:range` declarations and a small `rdfs:subPropertyOf`
//! hierarchy. Those are exactly the constructs the ρDF / RDFS rulesets act
//! on, so this generator reproduces that shape with a configurable total
//! triple budget and a deterministic seed.

use crate::Dataset;
use inferray_model::{vocab, Term, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Namespace of the generated BSBM-like resources.
pub const BSBM_NS: &str = "http://inferray.example.org/bsbm/";

/// Generator for BSBM-like datasets.
#[derive(Debug, Clone)]
pub struct BsbmGenerator {
    /// Approximate number of triples to generate.
    pub target_triples: usize,
    /// Depth of the product-type tree.
    pub type_tree_depth: usize,
    /// Branching factor of the product-type tree.
    pub type_tree_fanout: usize,
    /// RNG seed (generation is deterministic given the configuration).
    pub seed: u64,
}

impl BsbmGenerator {
    /// A generator targeting `target_triples` triples with the default
    /// schema shape (depth 4, fan-out 4 → 256 leaf product types).
    pub fn new(target_triples: usize) -> Self {
        BsbmGenerator {
            target_triples,
            type_tree_depth: 4,
            type_tree_fanout: 4,
            seed: 0xB5B3,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut triples = Vec::with_capacity(self.target_triples + 1024);

        let iri = |local: &str| format!("{BSBM_NS}{local}");

        // --- Schema: product type tree ---------------------------------
        // Level 0 is the root; each node has `fanout` children.
        let mut levels: Vec<Vec<String>> = vec![vec![iri("ProductType")]];
        for depth in 1..=self.type_tree_depth {
            let mut level = Vec::new();
            for (parent_index, parent) in levels[depth - 1].iter().enumerate() {
                for child in 0..self.type_tree_fanout {
                    let name = iri(&format!("ProductType_{depth}_{parent_index}_{child}"));
                    triples.push(Triple::iris(
                        name.clone(),
                        vocab::RDFS_SUB_CLASS_OF,
                        parent.clone(),
                    ));
                    level.push(name);
                }
            }
            levels.push(level);
        }
        let leaf_types: Vec<String> = levels.last().cloned().unwrap_or_default();

        // --- Schema: property hierarchy with domains and ranges ---------
        let product = iri("Product");
        let producer = iri("Producer");
        let offer = iri("Offer");
        let vendor = iri("Vendor");
        let review = iri("Review");
        triples.push(Triple::iris(
            &product,
            vocab::RDFS_SUB_CLASS_OF,
            levels[0][0].clone(),
        ));

        let produced_by = iri("producedBy");
        let made_by = iri("madeBy"); // subPropertyOf producedBy
        let offered_product = iri("offeredProduct");
        let offered_by = iri("offeredBy");
        let reviewed_product = iri("reviewedProduct");
        let price = iri("price");

        for (prop, domain, range) in [
            (&produced_by, &product, &producer),
            (&offered_product, &offer, &product),
            (&offered_by, &offer, &vendor),
            (&reviewed_product, &review, &product),
        ] {
            triples.push(Triple::iris(
                prop.clone(),
                vocab::RDFS_DOMAIN,
                domain.clone(),
            ));
            triples.push(Triple::iris(prop.clone(), vocab::RDFS_RANGE, range.clone()));
        }
        triples.push(Triple::iris(&price, vocab::RDFS_DOMAIN, offer.clone()));
        triples.push(Triple::iris(
            &made_by,
            vocab::RDFS_SUB_PROPERTY_OF,
            produced_by.clone(),
        ));

        let schema_triples = triples.len();

        // --- Instances ---------------------------------------------------
        // Budget the remaining triples: each product contributes ~3 triples,
        // each offer ~3, each review ~1.
        let remaining = self.target_triples.saturating_sub(schema_triples);
        let n_products = (remaining / 6).max(1);
        let n_producers = (n_products / 20).max(1);
        let n_vendors = (n_products / 50).max(1);

        // Products are the filler entity: keep generating until the budget
        // is met (the per-product triple count varies with the review coin).
        for i in 0.. {
            if triples.len() >= self.target_triples {
                break;
            }
            let product_iri = iri(&format!("Product{i}"));
            let leaf = &leaf_types[rng.gen_range(0..leaf_types.len().max(1))];
            triples.push(Triple::iris(&product_iri, vocab::RDF_TYPE, leaf.clone()));
            let producer_iri = iri(&format!("Producer{}", rng.gen_range(0..n_producers)));
            // Half the products use the sub-property, exercising PRP-SPO1.
            let link = if rng.gen_bool(0.5) {
                &made_by
            } else {
                &produced_by
            };
            triples.push(Triple::iris(&product_iri, link.clone(), producer_iri));
            if triples.len() >= self.target_triples {
                break;
            }

            // One offer per product (three triples).
            let offer_iri = iri(&format!("Offer{i}"));
            triples.push(Triple::iris(
                &offer_iri,
                offered_product.clone(),
                product_iri.clone(),
            ));
            triples.push(Triple::iris(
                &offer_iri,
                offered_by.clone(),
                iri(&format!("Vendor{}", rng.gen_range(0..n_vendors))),
            ));
            triples.push(Triple::new(
                Term::iri(offer_iri),
                Term::iri(price.clone()),
                Term::integer(rng.gen_range(1..10_000)),
            ));
            // Occasional review.
            if rng.gen_bool(0.3) {
                triples.push(Triple::iris(
                    iri(&format!("Review{i}")),
                    reviewed_product.clone(),
                    product_iri,
                ));
            }
            if triples.len() >= self.target_triples {
                break;
            }
        }

        Dataset::new(format!("BSBM-{}", self.target_triples), triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::Term;

    #[test]
    fn respects_the_triple_budget_approximately() {
        for target in [500usize, 5_000, 20_000] {
            let dataset = BsbmGenerator::new(target).generate();
            assert!(
                dataset.len() >= target * 9 / 10,
                "too small for {target}: {}",
                dataset.len()
            );
            assert!(
                dataset.len() <= target + 16,
                "too large for {target}: {}",
                dataset.len()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BsbmGenerator::new(2_000).generate();
        let b = BsbmGenerator::new(2_000).generate();
        assert_eq!(a.triples, b.triples);
        let c = BsbmGenerator::new(2_000).with_seed(7).generate();
        assert_ne!(a.triples, c.triples, "different seed ⇒ different data");
    }

    #[test]
    fn contains_the_schema_constructs_rdfs_needs() {
        let dataset = BsbmGenerator::new(3_000).generate();
        let has_pred = |p: &str| dataset.triples.iter().any(|t| t.predicate == Term::iri(p));
        assert!(has_pred(vocab::RDFS_SUB_CLASS_OF));
        assert!(has_pred(vocab::RDFS_SUB_PROPERTY_OF));
        assert!(has_pred(vocab::RDFS_DOMAIN));
        assert!(has_pred(vocab::RDFS_RANGE));
        assert!(has_pred(vocab::RDF_TYPE));
    }

    #[test]
    fn type_tree_has_expected_size() {
        let generator = BsbmGenerator::new(1_000);
        let dataset = generator.generate();
        let sco_count = dataset
            .triples
            .iter()
            .filter(|t| t.predicate == Term::iri(vocab::RDFS_SUB_CLASS_OF))
            .count();
        // 4 + 16 + 64 + 256 tree edges plus Product ⊑ ProductType.
        assert_eq!(sco_count, 4 + 16 + 64 + 256 + 1);
    }

    #[test]
    fn all_triples_are_valid() {
        let dataset = BsbmGenerator::new(1_000).generate();
        assert!(dataset.triples.iter().all(|t| t.is_valid()));
    }
}
