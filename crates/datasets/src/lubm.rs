//! LUBM-like university workload generator (Table 3 substitution).
//!
//! The Lehigh University Benchmark models universities, departments, faculty,
//! students, courses and publications. The paper uses it for the RDFS-Plus
//! benchmark because "only RDFS-Plus is expressive enough to derive many
//! triples on LUBM"; this generator therefore includes the OWL constructs the
//! RDFS-Plus rules need on top of the class/property hierarchies:
//!
//! * `subOrganizationOf` declared `owl:TransitiveProperty`
//!   (university → department chains close transitively — PRP-TRP);
//! * `teacherOf` / `taughtBy` declared `owl:inverseOf` each other
//!   (PRP-INV1/2);
//! * `worksFor` ⊑ `memberOf`, `headOf` ⊑ `worksFor` (PRP-SPO1, SCM-SPO);
//! * `emailAddress` declared `owl:InverseFunctionalProperty` and aliased
//!   individuals sharing an address (PRP-IFP → owl:sameAs → EQ-REP-*);
//! * `owl:sameAs` aliases between a fraction of individuals (EQ-SYM,
//!   EQ-TRANS, EQ-REP-*);
//! * `Professor ≡ FacultyMember` (CAX-EQC1/2, SCM-EQC1);
//! * the usual `rdfs:domain`/`rdfs:range` declarations (PRP-DOM/RNG).

use crate::Dataset;
use inferray_model::{vocab, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Namespace of the generated LUBM-like resources.
pub const LUBM_NS: &str = "http://inferray.example.org/lubm/";

/// Generator for LUBM-like RDFS-Plus datasets.
#[derive(Debug, Clone)]
pub struct LubmGenerator {
    /// Approximate number of triples to generate.
    pub target_triples: usize,
    /// Number of departments per university.
    pub departments_per_university: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LubmGenerator {
    /// A generator targeting `target_triples` triples.
    pub fn new(target_triples: usize) -> Self {
        LubmGenerator {
            target_triples,
            departments_per_university: 12,
            seed: 0x10B1,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut triples: Vec<Triple> = Vec::with_capacity(self.target_triples + 256);
        let iri = |local: &str| format!("{LUBM_NS}{local}");

        // --- Schema ------------------------------------------------------
        let person = iri("Person");
        let faculty = iri("FacultyMember");
        let professor = iri("Professor");
        let full_professor = iri("FullProfessor");
        let student = iri("Student");
        let grad_student = iri("GraduateStudent");
        let organization = iri("Organization");
        let university = iri("University");
        let department = iri("Department");
        let course = iri("Course");

        for (sub, sup) in [
            (&faculty, &person),
            (&professor, &faculty),
            (&full_professor, &professor),
            (&student, &person),
            (&grad_student, &student),
            (&university, &organization),
            (&department, &organization),
        ] {
            triples.push(Triple::iris(
                sub.clone(),
                vocab::RDFS_SUB_CLASS_OF,
                sup.clone(),
            ));
        }
        // An equivalence to exercise the CAX-EQC / SCM-EQC rules.
        triples.push(Triple::iris(
            &professor,
            vocab::OWL_EQUIVALENT_CLASS,
            iri("Prof"),
        ));

        let member_of = iri("memberOf");
        let works_for = iri("worksFor");
        let head_of = iri("headOf");
        let sub_org_of = iri("subOrganizationOf");
        let teacher_of = iri("teacherOf");
        let taught_by = iri("taughtBy");
        let takes_course = iri("takesCourse");
        let advisor = iri("advisor");
        let email = iri("emailAddress");

        triples.push(Triple::iris(
            &works_for,
            vocab::RDFS_SUB_PROPERTY_OF,
            member_of.clone(),
        ));
        triples.push(Triple::iris(
            &head_of,
            vocab::RDFS_SUB_PROPERTY_OF,
            works_for.clone(),
        ));
        triples.push(Triple::iris(
            &sub_org_of,
            vocab::RDF_TYPE,
            vocab::OWL_TRANSITIVE_PROPERTY,
        ));
        triples.push(Triple::iris(
            &teacher_of,
            vocab::OWL_INVERSE_OF,
            taught_by.clone(),
        ));
        triples.push(Triple::iris(
            &email,
            vocab::RDF_TYPE,
            vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY,
        ));
        triples.push(Triple::iris(
            &advisor,
            vocab::RDF_TYPE,
            vocab::OWL_FUNCTIONAL_PROPERTY,
        ));

        for (prop, domain, range) in [
            (&works_for, &person, &organization),
            (&member_of, &person, &organization),
            (&teacher_of, &faculty, &course),
            (&takes_course, &student, &course),
            (&advisor, &student, &professor),
            (&sub_org_of, &organization, &organization),
        ] {
            triples.push(Triple::iris(
                prop.clone(),
                vocab::RDFS_DOMAIN,
                domain.clone(),
            ));
            triples.push(Triple::iris(prop.clone(), vocab::RDFS_RANGE, range.clone()));
        }

        // --- Instances ---------------------------------------------------
        // Rough budget: each student contributes ~4 triples, each professor
        // ~5, each department ~3.
        let remaining = self.target_triples.saturating_sub(triples.len());
        let n_students = (remaining * 6 / 10 / 4).max(1);
        let n_professors = (remaining * 2 / 10 / 5).max(1);
        let n_departments = ((n_professors / 8).max(1)).max(self.departments_per_university);
        let n_universities = (n_departments / self.departments_per_university).max(1);
        let n_courses = (n_professors * 2).max(1);

        // Universities and departments (subOrganizationOf chains).
        for u in 0..n_universities {
            let uni = iri(&format!("University{u}"));
            triples.push(Triple::iris(&uni, vocab::RDF_TYPE, university.clone()));
        }
        for d in 0..n_departments {
            let dept = iri(&format!("Department{d}"));
            let uni = iri(&format!("University{}", d % n_universities));
            triples.push(Triple::iris(&dept, vocab::RDF_TYPE, department.clone()));
            triples.push(Triple::iris(&dept, sub_org_of.clone(), uni));
            // Research groups nested under departments give the transitive
            // property a chain of length 3.
            let group = iri(&format!("ResearchGroup{d}"));
            triples.push(Triple::iris(&group, sub_org_of.clone(), dept));
        }

        // Professors.
        for p in 0..n_professors {
            if triples.len() >= self.target_triples {
                break;
            }
            let prof = iri(&format!("Professor{p}"));
            let dept = iri(&format!("Department{}", p % n_departments));
            let class = if p % 3 == 0 {
                &full_professor
            } else {
                &professor
            };
            triples.push(Triple::iris(&prof, vocab::RDF_TYPE, class.clone()));
            let employment = if p % 10 == 0 { &head_of } else { &works_for };
            triples.push(Triple::iris(&prof, employment.clone(), dept));
            let course_iri = iri(&format!("Course{}", p % n_courses));
            triples.push(Triple::iris(&prof, teacher_of.clone(), course_iri));
            triples.push(Triple::iris(
                &prof,
                email.clone(),
                iri(&format!("mailto/prof{p}")),
            ));
            // A small fraction of professors have an alias identity.
            if p % 25 == 0 {
                let alias = iri(&format!("Prof{p}_alias"));
                triples.push(Triple::iris(&prof, vocab::OWL_SAME_AS, alias.clone()));
                // The alias shares the professor's mailbox, so PRP-IFP also
                // rediscovers the equality.
                triples.push(Triple::iris(
                    &alias,
                    email.clone(),
                    iri(&format!("mailto/prof{p}")),
                ));
            }
        }

        // Students are the filler entity: keep generating until the triple
        // budget is met.
        let _ = n_students;
        for s in 0.. {
            if triples.len() >= self.target_triples {
                break;
            }
            let stud = iri(&format!("Student{s}"));
            let class = if s % 4 == 0 { &grad_student } else { &student };
            triples.push(Triple::iris(&stud, vocab::RDF_TYPE, class.clone()));
            triples.push(Triple::iris(
                &stud,
                takes_course.clone(),
                iri(&format!("Course{}", rng.gen_range(0..n_courses))),
            ));
            triples.push(Triple::iris(
                &stud,
                advisor.clone(),
                iri(&format!("Professor{}", rng.gen_range(0..n_professors))),
            ));
            if s % 2 == 0 {
                triples.push(Triple::iris(
                    &stud,
                    member_of.clone(),
                    iri(&format!("Department{}", rng.gen_range(0..n_departments))),
                ));
            }
        }

        Dataset::new(format!("LUBM-{}", self.target_triples), triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::Term;

    #[test]
    fn respects_the_triple_budget_approximately() {
        for target in [1_000usize, 10_000, 50_000] {
            let dataset = LubmGenerator::new(target).generate();
            assert!(
                dataset.len() >= target * 85 / 100,
                "too small for {target}: {}",
                dataset.len()
            );
            assert!(
                dataset.len() <= target + 64,
                "too large for {target}: {}",
                dataset.len()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LubmGenerator::new(5_000).generate();
        let b = LubmGenerator::new(5_000).generate();
        assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn contains_the_owl_constructs_rdfs_plus_needs() {
        let dataset = LubmGenerator::new(5_000).generate();
        let has = |p: &str, o: Option<&str>| {
            dataset
                .triples
                .iter()
                .any(|t| t.predicate == Term::iri(p) && o.is_none_or(|o| t.object == Term::iri(o)))
        };
        assert!(has(vocab::RDF_TYPE, Some(vocab::OWL_TRANSITIVE_PROPERTY)));
        assert!(has(
            vocab::RDF_TYPE,
            Some(vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY)
        ));
        assert!(has(vocab::RDF_TYPE, Some(vocab::OWL_FUNCTIONAL_PROPERTY)));
        assert!(has(vocab::OWL_INVERSE_OF, None));
        assert!(has(vocab::OWL_SAME_AS, None));
        assert!(has(vocab::OWL_EQUIVALENT_CLASS, None));
        assert!(has(vocab::RDFS_SUB_PROPERTY_OF, None));
        assert!(has(vocab::RDFS_DOMAIN, None));
    }

    #[test]
    fn all_triples_are_valid() {
        let dataset = LubmGenerator::new(2_000).generate();
        assert!(dataset.triples.iter().all(|t| t.is_valid()));
    }

    #[test]
    fn label_mentions_the_target_size() {
        assert_eq!(LubmGenerator::new(123).generate().label, "LUBM-123");
    }
}
