//! `rdfs:subClassOf` chain generator — the Table 4 workload.
//!
//! "We implemented a transitive closure dataset generator that generates
//! chains of subclassOf for a given length" (§6). A chain of `n` nodes has
//! `n − 1` asserted edges and closes to `n·(n−1)/2` subClassOf pairs, so the
//! number of inferred triples grows quadratically with the chain length —
//! exactly the stress test that separates the dedicated closure stage from
//! iterative rule application.

use inferray_model::{vocab, Triple};

/// Namespace of the generated chain classes.
pub const CHAIN_NS: &str = "http://inferray.example.org/chain/";

/// Generates a subClassOf chain over `length` classes
/// (`C0 ⊑ C1 ⊑ … ⊑ C(length−1)`), i.e. `length − 1` triples.
pub fn subclass_chain(length: usize) -> Vec<Triple> {
    (0..length.saturating_sub(1))
        .map(|i| {
            Triple::iris(
                format!("{CHAIN_NS}C{i}"),
                vocab::RDFS_SUB_CLASS_OF,
                format!("{CHAIN_NS}C{}", i + 1),
            )
        })
        .collect()
}

/// Number of subClassOf pairs in the closure of a chain of `length` nodes
/// (asserted + inferred): `length·(length−1)/2`.
pub fn closure_size(length: usize) -> usize {
    length * length.saturating_sub(1) / 2
}

/// Number of *inferred* pairs for a chain of `length` nodes:
/// closure minus the `length − 1` asserted edges.
pub fn inferred_size(length: usize) -> usize {
    closure_size(length).saturating_sub(length.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_length_minus_one_edges() {
        assert_eq!(subclass_chain(0).len(), 0);
        assert_eq!(subclass_chain(1).len(), 0);
        assert_eq!(subclass_chain(2).len(), 1);
        assert_eq!(subclass_chain(100).len(), 99);
    }

    #[test]
    fn chain_edges_are_consecutive() {
        let triples = subclass_chain(4);
        assert_eq!(
            triples[0].subject.as_iri().unwrap(),
            format!("{CHAIN_NS}C0")
        );
        assert_eq!(triples[2].object.as_iri().unwrap(), format!("{CHAIN_NS}C3"));
        assert!(triples
            .iter()
            .all(|t| t.predicate.as_iri() == Some(vocab::RDFS_SUB_CLASS_OF)));
    }

    #[test]
    fn closure_formulas() {
        assert_eq!(closure_size(0), 0);
        assert_eq!(closure_size(2), 1);
        assert_eq!(closure_size(100), 4950);
        assert_eq!(inferred_size(100), 4950 - 99);
        // Paper scale: a chain of 25,000 closes to ~312M pairs.
        assert_eq!(closure_size(25_000), 312_487_500);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(subclass_chain(50), subclass_chain(50));
    }
}
