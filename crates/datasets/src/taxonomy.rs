//! Taxonomy generators shaped like the paper's real-world datasets.
//!
//! The paper's real-world corpora stress specific parts of the engine:
//!
//! * the **Wikipedia ontology** is a very wide, shallow category graph with a
//!   large schema (many classes, articles typed with categories);
//! * the **Yago taxonomy** is deep, with a large number of `subClassOf` and
//!   `subPropertyOf` statements that stress the closure stage and the
//!   vertical-partitioning table count;
//! * **WordNet** is dominated by long hypernym chains.
//!
//! These seeded generators reproduce those shapes (depth, fan-out, number of
//! properties, instance/schema ratio) at a configurable scale.

use crate::Dataset;
use inferray_model::{vocab, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Namespace of the generated taxonomy resources.
pub const TAXO_NS: &str = "http://inferray.example.org/taxonomy/";

fn iri(local: &str) -> String {
    format!("{TAXO_NS}{local}")
}

/// A Wikipedia-ontology-shaped dataset: `n_categories` categories organized
/// in a shallow (3-level) hierarchy with very high fan-out, and roughly
/// `4 × n_categories` article instances typed with the categories.
pub fn wikipedia_like(n_categories: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    let n_top = (n_categories / 100).max(1);
    let n_mid = (n_categories / 10).max(1);

    // Shallow, wide category graph (categories may have several parents,
    // like Wikipedia's category cycles-free core).
    for c in 0..n_categories {
        let category = iri(&format!("Category{c}"));
        let mid = iri(&format!("MidCategory{}", c % n_mid));
        triples.push(Triple::iris(&category, vocab::RDFS_SUB_CLASS_OF, mid));
        if rng.gen_bool(0.2) {
            let second_parent = iri(&format!("MidCategory{}", rng.gen_range(0..n_mid)));
            triples.push(Triple::iris(
                &category,
                vocab::RDFS_SUB_CLASS_OF,
                second_parent,
            ));
        }
    }
    for m in 0..n_mid {
        triples.push(Triple::iris(
            iri(&format!("MidCategory{m}")),
            vocab::RDFS_SUB_CLASS_OF,
            iri(&format!("TopCategory{}", m % n_top)),
        ));
    }
    // Articles typed with leaf categories.
    for a in 0..n_categories * 4 {
        triples.push(Triple::iris(
            iri(&format!("Article{a}")),
            vocab::RDF_TYPE,
            iri(&format!("Category{}", rng.gen_range(0..n_categories))),
        ));
    }
    Dataset::new(format!("Wikipedia-like-{}", triples.len()), triples)
}

/// A Yago-taxonomy-shaped dataset: a deep class tree (`depth` levels, modest
/// fan-out), a sizeable `subPropertyOf` forest over many properties, and
/// typed entities.
pub fn yago_like(n_classes: usize, depth: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    let depth = depth.max(2);

    // Deep tree: class i's parent is a class from the previous "band" of the
    // id space, which yields chains of length ≈ depth.
    let band = (n_classes / depth).max(1);
    for c in band..n_classes {
        let parent = c - band - rng.gen_range(0..band.min(c - band + 1));
        triples.push(Triple::iris(
            iri(&format!("YagoClass{c}")),
            vocab::RDFS_SUB_CLASS_OF,
            iri(&format!("YagoClass{parent}")),
        ));
    }
    // A property forest: many properties, subPropertyOf chains of length ~4.
    let n_properties = (n_classes / 5).max(4);
    for p in 4..n_properties {
        triples.push(Triple::iris(
            iri(&format!("yagoProp{p}")),
            vocab::RDFS_SUB_PROPERTY_OF,
            iri(&format!("yagoProp{}", p / 4)),
        ));
        if p % 3 == 0 {
            triples.push(Triple::iris(
                iri(&format!("yagoProp{p}")),
                vocab::RDFS_DOMAIN,
                iri(&format!("YagoClass{}", rng.gen_range(0..n_classes))),
            ));
        }
    }
    // Entities typed with leaf classes plus a few facts using the properties.
    for e in 0..n_classes * 2 {
        let entity = iri(&format!("Entity{e}"));
        triples.push(Triple::iris(
            &entity,
            vocab::RDF_TYPE,
            iri(&format!(
                "YagoClass{}",
                rng.gen_range(n_classes / 2..n_classes)
            )),
        ));
        triples.push(Triple::iris(
            &entity,
            iri(&format!("yagoProp{}", rng.gen_range(4..n_properties))),
            iri(&format!("Entity{}", rng.gen_range(0..n_classes * 2))),
        ));
    }
    Dataset::new(format!("Yago-like-{}", triples.len()), triples)
}

/// A WordNet-shaped dataset: `n_chains` hypernym chains of length
/// `chain_length` (long `subClassOf` chains), with a couple of synset
/// instances per concept.
pub fn wordnet_like(n_chains: usize, chain_length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    for chain in 0..n_chains {
        for link in 0..chain_length.saturating_sub(1) {
            triples.push(Triple::iris(
                iri(&format!("Synset_{chain}_{link}")),
                vocab::RDFS_SUB_CLASS_OF,
                iri(&format!("Synset_{chain}_{}", link + 1)),
            ));
        }
        // Word senses typed with the bottom of each chain.
        for w in 0..3 {
            triples.push(Triple::iris(
                iri(&format!("Word_{chain}_{w}")),
                vocab::RDF_TYPE,
                iri(&format!(
                    "Synset_{chain}_{}",
                    rng.gen_range(0..chain_length.max(1))
                )),
            ));
        }
    }
    Dataset::new(format!("WordNet-like-{}", triples.len()), triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::Term;
    use std::collections::HashMap;

    #[test]
    fn wikipedia_shape_is_wide_and_shallow() {
        let dataset = wikipedia_like(500, 1);
        // Typed articles dominate.
        let types = dataset
            .triples
            .iter()
            .filter(|t| t.predicate == Term::iri(vocab::RDF_TYPE))
            .count();
        let sco = dataset
            .triples
            .iter()
            .filter(|t| t.predicate == Term::iri(vocab::RDFS_SUB_CLASS_OF))
            .count();
        assert!(types > sco);
        assert!(dataset.len() > 2_000);
    }

    #[test]
    fn yago_shape_has_many_properties() {
        let dataset = yago_like(1_000, 10, 2);
        let mut predicates: HashMap<&Term, usize> = HashMap::new();
        for t in &dataset.triples {
            *predicates.entry(&t.predicate).or_default() += 1;
        }
        // Far more distinct predicates than the BSBM-like schema (vertical
        // partitioning stress, as in the paper's Yago discussion).
        assert!(predicates.len() > 50, "got {}", predicates.len());
        assert!(dataset
            .triples
            .iter()
            .any(|t| t.predicate == Term::iri(vocab::RDFS_SUB_PROPERTY_OF)));
    }

    #[test]
    fn wordnet_shape_is_long_chains() {
        let dataset = wordnet_like(10, 50, 3);
        let sco = dataset
            .triples
            .iter()
            .filter(|t| t.predicate == Term::iri(vocab::RDFS_SUB_CLASS_OF))
            .count();
        assert_eq!(sco, 10 * 49);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            wikipedia_like(100, 9).triples,
            wikipedia_like(100, 9).triples
        );
        assert_eq!(yago_like(100, 5, 9).triples, yago_like(100, 5, 9).triples);
        assert_eq!(
            wordnet_like(5, 10, 9).triples,
            wordnet_like(5, 10, 9).triples
        );
    }

    #[test]
    fn all_triples_are_valid() {
        for dataset in [
            wikipedia_like(50, 0),
            yago_like(60, 6, 0),
            wordnet_like(4, 12, 0),
        ] {
            assert!(dataset.triples.iter().all(|t| t.is_valid()));
            assert!(!dataset.is_empty());
        }
    }
}
