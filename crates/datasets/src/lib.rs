//! # inferray-datasets
//!
//! Deterministic synthetic RDF dataset generators for the Inferray
//! benchmarks.
//!
//! The paper evaluates on BSBM and LUBM generated datasets, on subClassOf
//! chains, and on three real-world ontologies (the Wikipedia ontology, the
//! Yago taxonomy, WordNet). Neither the original generators (Java tools) nor
//! the real-world dumps are vendored here; instead this crate provides
//! seeded generators that reproduce the *structural characteristics* each
//! benchmark relies on (see DESIGN.md, "Substitutions"):
//!
//! * [`chain`] — `rdfs:subClassOf` chains of configurable length, the
//!   workload of Table 4 (transitivity closure);
//! * [`bsbm`] — a BSBM-like e-commerce workload (product-type tree,
//!   domain/range'd properties, instance data) sized in triples, used for
//!   the RDFS-flavour benchmark of Table 2;
//! * [`lubm`] — a LUBM-like university workload extended with the OWL
//!   constructs RDFS-Plus needs (transitive `subOrganizationOf`, inverse
//!   `teacherOf`/`taughtBy`, functional/inverse-functional identifiers,
//!   `owl:sameAs` aliases), used for Table 3;
//! * [`taxonomy`] — taxonomy generators shaped like the three real-world
//!   datasets: Wikipedia (very wide, shallow category graph), Yago (deep
//!   taxonomy, many properties), WordNet (long hypernym chains).
//!
//! Every generator is deterministic given its seed, returns decoded
//! [`Triple`](inferray_model::Triple)s, and reports its schema/instance
//! split so benchmark tables can be labelled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsbm;
pub mod chain;
pub mod lubm;
pub mod taxonomy;

pub use bsbm::BsbmGenerator;
pub use chain::subclass_chain;
pub use lubm::LubmGenerator;
pub use taxonomy::{wikipedia_like, wordnet_like, yago_like};

use inferray_model::Triple;

/// A generated dataset: the triples plus a human-readable label used in
/// benchmark output.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Label shown in benchmark tables (e.g. `"BSBM-100k"`).
    pub label: String,
    /// The triples, in generation order.
    pub triples: Vec<Triple>,
}

impl Dataset {
    /// Builds a dataset from a label and triples.
    pub fn new(label: impl Into<String>, triples: Vec<Triple>) -> Self {
        Dataset {
            label: label.into(),
            triples,
        }
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when the dataset holds no triple.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Serializes the dataset as an N-Triples document (one statement per
    /// line, generation order preserved).
    pub fn to_ntriples(&self) -> String {
        inferray_parser::to_ntriples_string(self.triples.iter())
    }

    /// Loads the dataset through the streaming ingest pipeline: serializes
    /// to N-Triples and runs the chunked parallel loader, producing a
    /// dictionary + store byte-identical to the sequential path. Benchmarks
    /// use this to exercise the exact text → store product code path.
    pub fn ingest(
        &self,
        options: inferray_parser::LoaderOptions,
    ) -> Result<inferray_parser::LoadedDataset, inferray_parser::LoadError> {
        inferray_parser::Ingest::with_options(options).ntriples(&self.to_ntriples())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::vocab;

    #[test]
    fn dataset_wrapper() {
        let d = Dataset::new(
            "tiny",
            vec![Triple::iris("http://a", vocab::RDF_TYPE, "http://b")],
        );
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.label, "tiny");
    }
}
