//! # inferray-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! Inferray paper (see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for recorded results):
//!
//! | Binary     | Paper artefact | What it prints |
//! |------------|----------------|----------------|
//! | `table1`   | Table 1        | sort throughput (M pairs/s) for counting, MSDA radix and the generic baselines over a range × size grid |
//! | `table2`   | Table 2        | RDFS-flavour (ρdf / RDFS-default / RDFS-Full) inference times on BSBM-like and real-world-shaped datasets for Inferray, the hash-join baseline and the naive baseline |
//! | `table3`   | Table 3        | RDFS-Plus inference times on LUBM-like and real-world-shaped datasets |
//! | `table4`   | Table 4        | transitivity-closure times on subClassOf chains |
//! | `figure7`  | Figure 7       | memory-access profile per inferred triple for the closure benchmark |
//! | `figure8`  | Figure 8       | memory-access profile per inferred triple for the RDFS-Plus benchmark |
//! | `ablation` | extension (§4.1/§4.3 prose) | Inferray execution time with the dedicated closure stage and the per-rule threads toggled independently |
//! | `backward_vs_forward` | extension (§1 prose) | materialize-then-lookup vs. query-time rewriting on the same instance-type query batches, with the break-even batch size |
//!
//! All binaries accept `--scale <divisor>` (default 20): paper dataset sizes
//! are divided by this factor so the suite completes on a laptop. Run with
//! `--scale 1` to attempt the paper's sizes. Criterion micro-benchmarks for
//! the individual kernels (sorting, closure, merge, end-to-end inference and
//! the query engine) live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod maintenance_workload;
pub mod reasoners;
pub mod scale;

pub use harness::{fmt_ms, print_table, run_materializer, BenchResult};
pub use maintenance_workload::{instance_victims, strided_delta};
pub use reasoners::{reasoner_names, reasoners_for};
pub use scale::ScaleConfig;
