//! The reasoner line-up of the benchmark tables.
//!
//! The paper compares Inferray, RDFox, OWLIM-SE and WebPIE. The reproduction
//! compares Inferray, the hash-join baseline (RDFox's strategy) and the
//! naive iterative baseline (OWLIM/Sesame's strategy); WebPIE's
//! Hadoop-on-disk design has no in-process equivalent and its column is
//! omitted (DESIGN.md, "Substitutions").

use inferray_baselines::{HashJoinReasoner, NaiveIterativeReasoner};
use inferray_core::InferrayReasoner;
use inferray_rules::{Fragment, Materializer};

/// The engines of one benchmark column set, in display order.
pub fn reasoners_for(fragment: Fragment, skip_naive: bool) -> Vec<Box<dyn Materializer>> {
    let mut engines: Vec<Box<dyn Materializer>> = vec![
        Box::new(InferrayReasoner::new(fragment)),
        Box::new(HashJoinReasoner::new(fragment)),
    ];
    if !skip_naive {
        engines.push(Box::new(NaiveIterativeReasoner::new(fragment)));
    }
    engines
}

/// Display names matching [`reasoners_for`]'s order.
pub fn reasoner_names(skip_naive: bool) -> Vec<&'static str> {
    if skip_naive {
        vec!["inferray", "hash-join"]
    } else {
        vec!["inferray", "hash-join", "naive-iterative"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_names() {
        for skip in [false, true] {
            let engines = reasoners_for(Fragment::RdfsDefault, skip);
            let names = reasoner_names(skip);
            assert_eq!(engines.len(), names.len());
            for (engine, name) in engines.iter().zip(names) {
                assert_eq!(engine.name(), name);
            }
        }
    }
}
