//! Command-line scale handling shared by the table/figure binaries.
//!
//! The paper's testbed is a 32 GB Xeon with a 15-minute timeout per run; this
//! reproduction targets laptops and CI containers, so every binary scales the
//! paper's dataset sizes down by a configurable divisor (default 20) and
//! reports the divisor in its output so EXPERIMENTS.md can record it.

/// Scale configuration parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Paper dataset sizes are divided by this factor.
    pub divisor: usize,
    /// Skip the naive baseline (useful for the largest runs).
    pub skip_naive: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            divisor: 20,
            skip_naive: false,
        }
    }
}

impl ScaleConfig {
    /// Parses `--scale <divisor>` and `--skip-naive` from an argument list
    /// (unknown arguments are ignored so binaries can add their own flags).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut config = ScaleConfig::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                        config.divisor = value.max(1);
                        i += 1;
                    }
                }
                "--skip-naive" => config.skip_naive = true,
                _ => {}
            }
            i += 1;
        }
        config
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Scales a paper-sized triple count down by the divisor (minimum 1,000
    /// triples so tiny scales still exercise the engines).
    pub fn triples(&self, paper_size: usize) -> usize {
        (paper_size / self.divisor).max(1_000)
    }

    /// Scales a chain length down by the divisor (minimum 50 nodes).
    pub fn chain(&self, paper_length: usize) -> usize {
        (paper_length / self.divisor).max(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ScaleConfig::default();
        assert_eq!(c.divisor, 20);
        assert!(!c.skip_naive);
    }

    #[test]
    fn parses_scale_and_skip_naive() {
        let c = ScaleConfig::from_args(
            ["--scale", "5", "--skip-naive", "--unknown"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(c.divisor, 5);
        assert!(c.skip_naive);
    }

    #[test]
    fn ignores_bad_values_and_enforces_minimums() {
        let c = ScaleConfig::from_args(["--scale", "zero"].iter().map(|s| s.to_string()));
        assert_eq!(c.divisor, 20);
        let c = ScaleConfig::from_args(["--scale", "0"].iter().map(|s| s.to_string()));
        assert_eq!(c.divisor, 1);
        assert_eq!(ScaleConfig::default().triples(1_000_000), 50_000);
        assert_eq!(ScaleConfig::default().triples(100), 1_000);
        assert_eq!(ScaleConfig::default().chain(100), 50);
        assert_eq!(ScaleConfig::default().chain(25_000), 1_250);
    }
}
