//! Shared workload definition for the maintenance benchmarks — the
//! `maintenance` binary and the criterion bench must retract the *same*
//! victim population, or the recorded `BENCH_maintenance.json` and the
//! micro-benchmark would silently measure different regimes.

use inferray_dictionary::wellknown;
use inferray_model::ids::{PROPERTY_BASE, RESOURCE_BASE};
use inferray_model::IdTriple;
use inferray_store::TripleStore;

/// The explicit *instance* triples of a base store: class assertions with
/// user-defined classes, and pairs of user-defined (data) properties — the
/// mutable-traffic regime the serving layer sees. Schema triples
/// (hierarchies, domain/range, marker declarations) are excluded: deleting
/// them cascades store-wide, which the retraction equivalence suite covers
/// for correctness but is not the steady-state workload.
pub fn instance_victims(base: &TripleStore) -> Vec<IdTriple> {
    base.iter_triples()
        .filter(|t| {
            let user_property = t.p <= PROPERTY_BASE - wellknown::NUM_SCHEMA_PROPERTIES as u64;
            let user_class = t.o >= RESOURCE_BASE + 64;
            (t.p == wellknown::RDF_TYPE && user_class) || user_property
        })
        .collect()
}

/// `size` victims spread evenly across the population (deterministic).
pub fn strided_delta(victims: &[IdTriple], size: usize) -> Vec<IdTriple> {
    let stride = (victims.len() / size).max(1);
    victims.iter().step_by(stride).take(size).copied().collect()
}
