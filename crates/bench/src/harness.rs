//! Shared measurement plumbing for the table/figure binaries.

use inferray_datasets::Dataset;
use inferray_parser::loader::load_triples;
use inferray_rules::{InferenceStats, Materializer};
use inferray_store::TripleStore;
use std::time::Instant;

/// One measured cell of a benchmark table.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Engine name (`"inferray"`, `"hash-join"`, `"naive-iterative"`).
    pub engine: &'static str,
    /// Dataset label.
    pub dataset: String,
    /// Triples before inference.
    pub input_triples: usize,
    /// Triples after inference.
    pub output_triples: usize,
    /// Wall-clock inference time in milliseconds (loading excluded, as in
    /// the paper's methodology).
    pub inference_ms: f64,
    /// Loading + dictionary-encoding time in milliseconds (reported
    /// separately, mirroring the paper's import/materialisation split).
    pub load_ms: f64,
    /// Full statistics of the run.
    pub stats: InferenceStats,
}

impl BenchResult {
    /// Inference throughput in million triples inferred per second.
    pub fn mtriples_per_second(&self) -> f64 {
        self.stats.triples_per_second() / 1.0e6
    }
}

/// Encodes a dataset into a fresh store (timed separately) and runs one
/// engine over it.
pub fn run_materializer(engine: &mut dyn Materializer, dataset: &Dataset) -> BenchResult {
    let load_start = Instant::now();
    let loaded = load_triples(dataset.triples.iter()).expect("generated datasets are valid");
    let load_ms = load_start.elapsed().as_secs_f64() * 1e3;

    let mut store: TripleStore = loaded.store;
    let input_triples = store.len();
    let stats = engine.materialize(&mut store);

    BenchResult {
        engine: engine.name(),
        dataset: dataset.label.clone(),
        input_triples,
        output_triples: store.len(),
        inference_ms: stats.duration.as_secs_f64() * 1e3,
        load_ms,
        stats,
    }
}

/// Prints a header + rows as an aligned plain-text table (the binaries'
/// output format).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        render(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Formats milliseconds with a sensible precision for table cells.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 10.0 {
        format!("{ms:.2}")
    } else if ms < 1000.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_core::InferrayReasoner;
    use inferray_datasets::subclass_chain;
    use inferray_rules::Fragment;

    #[test]
    fn run_materializer_reports_consistent_counts() {
        let dataset = Dataset::new("chain-20", subclass_chain(20));
        let mut engine = InferrayReasoner::new(Fragment::RhoDf);
        let result = run_materializer(&mut engine, &dataset);
        assert_eq!(result.engine, "inferray");
        assert_eq!(result.input_triples, 19);
        assert_eq!(result.output_triples, 20 * 19 / 2);
        assert!(result.inference_ms >= 0.0);
        assert!(result.load_ms >= 0.0);
        assert_eq!(
            result.stats.inferred_triples(),
            result.output_triples - result.input_triples
        );
    }

    #[test]
    fn fmt_ms_precision() {
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(56.78), "56.8");
        assert_eq!(fmt_ms(1234.6), "1235");
    }
}
