//! Figure 7 — memory-access behaviour of the transitivity-closure benchmark.
//!
//! The paper reports hardware counters (cache misses, dTLB misses, page
//! faults) per inferred triple; this reproduction reports the software
//! access profile (sequential words, random words, hash probes, allocated
//! words — all per inferred triple) of each reasoner on the same chain
//! datasets. Random-word and hash-probe counts are the software-level causes
//! of the cache/TLB misses the paper measures, so the *relative ordering* of
//! the engines is the comparable quantity. See DESIGN.md, "Substitutions".
//!
//! ```text
//! cargo run -p inferray-bench --release --bin figure7 [--scale N] [--skip-naive]
//! ```

use inferray_bench::{print_table, reasoners_for, run_materializer, ScaleConfig};
use inferray_datasets::{chain, Dataset};
use inferray_rules::Fragment;

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Figure 7 — software memory-access profile, transitivity-closure benchmark");
    println!(
        "(per inferred triple; paper chain lengths 500/1000/2500 divided by {})",
        scale.divisor
    );

    let lengths: Vec<usize> = [500usize, 1_000, 2_500]
        .iter()
        .map(|&l| scale.chain(l))
        .collect();

    let header = vec![
        "chain",
        "engine",
        "seq words/triple",
        "rand words/triple",
        "hash probes/triple",
        "alloc words/triple",
        "random %",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &length in &lengths {
        let dataset = Dataset::new(format!("chain-{length}"), chain::subclass_chain(length));
        for mut engine in reasoners_for(Fragment::RhoDf, scale.skip_naive) {
            let result = run_materializer(engine.as_mut(), &dataset);
            let per = result
                .stats
                .profile
                .per_triple(result.stats.inferred_triples());
            rows.push(vec![
                length.to_string(),
                result.engine.to_string(),
                format!("{:.2}", per.sequential_words),
                format!("{:.2}", per.random_words),
                format!("{:.2}", per.hash_probes),
                format!("{:.2}", per.allocated_words),
                format!("{:.1}", result.stats.profile.random_fraction() * 100.0),
            ]);
        }
    }
    print_table("Figure 7 (software access profile)", &header, &rows);
}
