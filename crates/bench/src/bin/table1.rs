//! Table 1 — sorting throughput (million pairs per second) of the counting
//! and MSDA radix kernels against generic comparison sorts, over a grid of
//! value ranges × collection sizes.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin table1 [--scale N] [--crossover]
//! ```
//!
//! The paper's grid spans 500 K – 50 M for both axes; the default scale
//! divisor (20) brings that to 25 K – 2.5 M so the full grid completes in
//! seconds. Pass `--crossover` to additionally print, for each range, the
//! size at which counting sort overtakes the radix kernel (the §5.4
//! operating-range analysis).

use inferray_bench::{print_table, ScaleConfig};
use inferray_sort::baseline::{merge_sort_pairs, quick_sort_pairs, std_sort_pairs};
use inferray_sort::{counting_sort_pairs, msda_radix_sort_pairs, recommend_algorithm, Algorithm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Generates `n` pairs whose components are uniform in `[base, base+range)`,
/// mimicking the dense-numbered identifiers the dictionary produces.
fn random_pairs(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let base = 1u64 << 32;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * n).map(|_| base + rng.gen_range(0..range)).collect()
}

/// Million pairs sorted per second for one kernel on one input.
fn throughput(pairs: &[u64], sorter: impl Fn(&mut Vec<u64>)) -> f64 {
    let mut data = pairs.to_vec();
    let start = Instant::now();
    sorter(&mut data);
    let elapsed = start.elapsed().as_secs_f64();
    (pairs.len() as f64 / 2.0) / elapsed / 1.0e6
}

fn main() {
    let scale = ScaleConfig::from_env();
    let crossover = std::env::args().any(|a| a == "--crossover");

    // Paper grid: ranges and sizes from 500 K to 50 M.
    let paper_points = [
        500_000usize,
        1_000_000,
        5_000_000,
        10_000_000,
        25_000_000,
        50_000_000,
    ];
    let ranges: Vec<usize> = paper_points.iter().map(|&p| scale.triples(p)).collect();
    let sizes: Vec<usize> = ranges.clone();

    println!("Table 1 — pair-sorting throughput in million pairs/second");
    println!(
        "(paper sizes divided by {}; entropy = log2(range))",
        scale.divisor
    );

    let header: Vec<String> = std::iter::once("range (entropy)".to_string())
        .chain(std::iter::once("algorithm".to_string()))
        .chain(sizes.iter().map(|s| format!("{}K", s / 1000)))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &range in &ranges {
        let entropy = (range as f64).log2();
        for (name, sorter) in [
            ("Counting", &counting_sort_pairs as &dyn Fn(&mut Vec<u64>)),
            ("MSDA Radix", &(|v: &mut Vec<u64>| msda_radix_sort_pairs(v))),
        ] {
            let mut row = vec![
                format!("{}K ({entropy:.1})", range / 1000),
                name.to_string(),
            ];
            for &size in &sizes {
                let pairs = random_pairs(size, range as u64, 42);
                row.push(format!("{:.1}", throughput(&pairs, sorter)));
            }
            rows.push(row);
        }
    }
    // Generic baselines (entropy-independent, one row each as in the paper).
    for (name, sorter) in [
        (
            "std pdqsort",
            &(|v: &mut Vec<u64>| std_sort_pairs(v)) as &dyn Fn(&mut Vec<u64>),
        ),
        ("Mergesort", &(|v: &mut Vec<u64>| merge_sort_pairs(v))),
        ("Quicksort", &(|v: &mut Vec<u64>| quick_sort_pairs(v))),
    ] {
        let mut row = vec!["generic".to_string(), name.to_string()];
        for &size in &sizes {
            let pairs = random_pairs(size, size as u64, 7);
            row.push(format!("{:.1}", throughput(&pairs, sorter)));
        }
        rows.push(row);
    }
    print_table("Table 1 (pairs/s in millions)", &header_refs, &rows);

    if crossover {
        println!("\nOperating-range rule of thumb (§5.4): counting when size ≥ range");
        for &range in &ranges {
            for &size in &sizes {
                let predicted = recommend_algorithm(size, range as u64);
                let counting =
                    throughput(&random_pairs(size, range as u64, 1), counting_sort_pairs);
                let radix = throughput(&random_pairs(size, range as u64, 1), |v: &mut Vec<u64>| {
                    msda_radix_sort_pairs(v)
                });
                let actual = if counting >= radix {
                    Algorithm::Counting
                } else {
                    Algorithm::MsdaRadix
                };
                println!(
                    "range={:>9} size={:>9}  predicted={:<10} measured-winner={:<10} ({:.1} vs {:.1} M pairs/s)",
                    range, size, predicted.to_string(), actual.to_string(), counting, radix
                );
            }
        }
    }
}
