//! Table 2 — inference time (milliseconds) for the RDFS flavours (ρdf,
//! RDFS-default, RDFS-Full) on BSBM-like synthetic datasets and on the
//! real-world-shaped taxonomies, for each reasoner.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin table2 [--scale N] [--skip-naive]
//! ```

use inferray_bench::{fmt_ms, print_table, reasoners_for, run_materializer, ScaleConfig};
use inferray_datasets::{wikipedia_like, wordnet_like, yago_like, BsbmGenerator, Dataset};
use inferray_rules::Fragment;

fn datasets(scale: &ScaleConfig) -> Vec<(&'static str, Dataset)> {
    // Paper sizes: BSBM 1M / 5M / 10M / 25M / 50M, plus Wikipedia, Yago,
    // WordNet.
    let mut sets = Vec::new();
    for paper_size in [1_000_000usize, 5_000_000, 10_000_000, 25_000_000] {
        let size = scale.triples(paper_size);
        sets.push(("synthetic", BsbmGenerator::new(size).generate()));
    }
    sets.push((
        "real-world",
        wikipedia_like(scale.triples(2_000_000) / 10, 11),
    ));
    sets.push((
        "real-world",
        yago_like(scale.triples(3_000_000) / 10, 12, 13),
    ));
    sets.push((
        "real-world",
        wordnet_like(scale.triples(1_000_000) / 500, 40, 17),
    ));
    sets
}

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Table 2 — RDFS flavours, execution time in milliseconds");
    println!("(paper dataset sizes divided by {})", scale.divisor);

    let fragments = [
        ("rho-df", Fragment::RhoDf),
        ("RDFS-default", Fragment::RdfsDefault),
        ("RDFS-Full", Fragment::RdfsFull),
    ];

    let mut header = vec!["type", "dataset", "fragment"];
    let engine_names = inferray_bench::reasoner_names(scale.skip_naive);
    header.extend(engine_names.iter());
    header.push("inferred");

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (kind, dataset) in datasets(&scale) {
        for (fragment_name, fragment) in fragments {
            let mut row = vec![
                kind.to_string(),
                dataset.label.clone(),
                fragment_name.to_string(),
            ];
            let mut inferred = 0usize;
            for mut engine in reasoners_for(fragment, scale.skip_naive) {
                let result = run_materializer(engine.as_mut(), &dataset);
                row.push(fmt_ms(result.inference_ms));
                inferred = result.stats.inferred_triples();
            }
            row.push(inferred.to_string());
            rows.push(row);
        }
    }
    print_table("Table 2 (ms)", &header, &rows);
}
