//! Figure 8 — memory-access behaviour of the RDFS-Plus benchmark.
//!
//! Same substitution as Figure 7 (software access profile instead of
//! hardware counters), measured on the LUBM-like and real-world-shaped
//! datasets under the RDFS-Plus ruleset.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin figure8 [--scale N] [--skip-naive]
//! ```

use inferray_bench::{print_table, reasoners_for, run_materializer, ScaleConfig};
use inferray_datasets::{wikipedia_like, wordnet_like, yago_like, Dataset, LubmGenerator};
use inferray_rules::Fragment;

fn datasets(scale: &ScaleConfig) -> Vec<Dataset> {
    let mut sets: Vec<Dataset> = [5_000_000usize, 10_000_000, 25_000_000]
        .iter()
        .map(|&paper| LubmGenerator::new(scale.triples(paper)).generate())
        .collect();
    sets.push(wikipedia_like(scale.triples(2_000_000) / 10, 31));
    sets.push(yago_like(scale.triples(3_000_000) / 10, 12, 33));
    sets.push(wordnet_like(scale.triples(1_000_000) / 500, 40, 37));
    sets
}

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Figure 8 — software memory-access profile, RDFS-Plus benchmark");
    println!(
        "(per inferred triple; paper dataset sizes divided by {})",
        scale.divisor
    );

    let header = vec![
        "dataset",
        "engine",
        "seq words/triple",
        "rand words/triple",
        "hash probes/triple",
        "alloc words/triple",
        "random %",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for dataset in datasets(&scale) {
        for mut engine in reasoners_for(Fragment::RdfsPlus, scale.skip_naive) {
            let result = run_materializer(engine.as_mut(), &dataset);
            let per = result
                .stats
                .profile
                .per_triple(result.stats.inferred_triples());
            rows.push(vec![
                dataset.label.clone(),
                result.engine.to_string(),
                format!("{:.2}", per.sequential_words),
                format!("{:.2}", per.random_words),
                format!("{:.2}", per.hash_probes),
                format!("{:.2}", per.allocated_words),
                format!("{:.1}", result.stats.profile.random_fraction() * 100.0),
            ]);
        }
    }
    print_table("Figure 8 (software access profile)", &header, &rows);
}
