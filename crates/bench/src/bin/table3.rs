//! Table 3 — RDFS-Plus inference time (milliseconds) on LUBM-like synthetic
//! datasets and on the real-world-shaped taxonomies, for each reasoner.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin table3 [--scale N] [--skip-naive]
//! ```

use inferray_bench::{fmt_ms, print_table, reasoners_for, run_materializer, ScaleConfig};
use inferray_datasets::{wikipedia_like, wordnet_like, yago_like, Dataset, LubmGenerator};
use inferray_rules::Fragment;

fn datasets(scale: &ScaleConfig) -> Vec<(&'static str, Dataset)> {
    // Paper sizes: LUBM 1M .. 100M, plus Wikipedia, Yago, WordNet.
    let mut sets = Vec::new();
    for paper_size in [
        1_000_000usize,
        5_000_000,
        10_000_000,
        25_000_000,
        50_000_000,
        100_000_000,
    ] {
        let size = scale.triples(paper_size);
        sets.push(("synthetic", LubmGenerator::new(size).generate()));
    }
    sets.push((
        "real-world",
        wikipedia_like(scale.triples(2_000_000) / 10, 21),
    ));
    sets.push((
        "real-world",
        yago_like(scale.triples(3_000_000) / 10, 12, 23),
    ));
    sets.push((
        "real-world",
        wordnet_like(scale.triples(1_000_000) / 500, 40, 27),
    ));
    sets
}

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Table 3 — RDFS-Plus, execution time in milliseconds");
    println!("(paper dataset sizes divided by {})", scale.divisor);

    let mut header = vec!["type", "dataset", "fragment"];
    let engine_names = inferray_bench::reasoner_names(scale.skip_naive);
    header.extend(engine_names.iter());
    header.push("inferred");

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (kind, dataset) in datasets(&scale) {
        let mut row = vec![
            kind.to_string(),
            dataset.label.clone(),
            "RDFS-Plus".to_string(),
        ];
        let mut inferred = 0usize;
        for mut engine in reasoners_for(Fragment::RdfsPlus, scale.skip_naive) {
            let result = run_materializer(engine.as_mut(), &dataset);
            row.push(fmt_ms(result.inference_ms));
            inferred = result.stats.inferred_triples();
        }
        row.push(inferred.to_string());
        rows.push(row);
    }
    print_table("Table 3 (ms)", &header, &rows);
}
