//! The table-update benchmark: measures the redesigned per-iteration update
//! stage (Figure 5) against the seed implementation and records the result
//! in `BENCH_table_update.json` so future PRs can track the trajectory.
//!
//! Three variants run the **same** sequence of per-property update rounds
//! (small, partially duplicate deltas against a LUBM-scale store — the
//! steady-state regime of the fixed-point loop):
//!
//! * `seed-rebuild`        — the seed path: allocating sort + full rebuild
//!   of the merged vector, per property, sequential;
//! * `adaptive-sequential` — the reasoner's update stage
//!   ([`inferray_core::run_table_update`]) without a pool, one reused
//!   [`SortScratch`];
//! * `adaptive-parallel`   — the same stage fanned out over the persistent
//!   worker pool, one scratch per lane. Both variants call the *exact*
//!   function the reasoner's fixed-point loop calls, so the benchmark
//!   cannot drift from the product code path.
//!
//! The binary also materializes the dataset with the full reasoner and
//! prints the per-iteration fire/update breakdown
//! ([`inferray_core::IterationProfile`]).
//!
//! ```text
//! cargo run -p inferray-bench --release --bin table_update [--scale N] [--out FILE]
//! ```

use inferray_bench::ScaleConfig;
use inferray_core::{run_table_update, InferrayReasoner, Materializer};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::loader::load_triples;
use inferray_rules::Fragment;
use inferray_sort::SortScratch;
use inferray_store::{merge_new_pairs_rebuild, TripleStore};
use std::time::{Duration, Instant};

/// Update rounds applied to the store (a stand-in for fixed-point
/// iterations 2..N, where the frontier is small).
const ROUNDS: usize = 12;

fn main() {
    let scale = ScaleConfig::from_env();
    let out_path = out_path_from_args();
    let target_triples = 200_000 / scale.divisor;

    println!("table_update — Figure 5 update-stage benchmark (LUBM ~{target_triples} triples)");

    // -- build the main store ------------------------------------------------
    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
    let mut base_store: TripleStore = loaded.store;
    base_store.finalize();
    let main_pairs: usize = base_store.len();
    let tables: usize = base_store.table_count();

    // -- synthesize the per-round deltas ------------------------------------
    let rounds = make_rounds(&base_store);
    let delta_pairs: usize = rounds
        .iter()
        .flat_map(|r| r.iter().map(|(_, d)| d.len() / 2))
        .sum();
    println!(
        "store: {main_pairs} pairs over {tables} tables; {ROUNDS} rounds, {delta_pairs} delta pairs total"
    );

    // Interleave repetitions of the three variants and keep each one's
    // minimum: single-shot millisecond timings are hopelessly noisy on a
    // shared box, and min-of-reps is the standard robust estimator.
    const REPS: usize = 5;
    let pool = inferray_parallel::global();
    let lanes = pool.threads() + 1;
    let mut scratch = SortScratch::new();
    let mut scratches: Vec<SortScratch> = (0..lanes).map(|_| SortScratch::new()).collect();

    let mut seed_time = Duration::MAX;
    let mut adaptive_time = Duration::MAX;
    let mut parallel_time = Duration::MAX;
    let mut seed_store = base_store.clone();
    let mut adaptive_store = base_store.clone();
    let mut parallel_store = base_store.clone();
    for rep in 0..REPS {
        // Variant 1: the seed path — allocating sort + full rebuild.
        let mut store = base_store.clone();
        seed_time = seed_time.min(time(|| {
            for round in &rounds {
                for (p, delta) in round {
                    let table = store.table_or_create(*p);
                    table.finalize();
                    let (_new, _outcome) = merge_new_pairs_rebuild(table, delta.clone());
                }
            }
        }));
        if rep == REPS - 1 {
            seed_store = store;
        }

        // Variant 2: the reasoner's update stage, sequential (no pool).
        let mut store = base_store.clone();
        adaptive_time = adaptive_time.min(time(|| {
            for round in &rounds {
                run_table_update(
                    None,
                    &mut store,
                    round.clone(),
                    std::slice::from_mut(&mut scratch),
                );
            }
        }));
        if rep == REPS - 1 {
            adaptive_store = store;
        }

        // Variant 3: the reasoner's update stage over the persistent pool.
        let mut store = base_store.clone();
        parallel_time = parallel_time.min(time(|| {
            for round in &rounds {
                run_table_update(Some(pool), &mut store, round.clone(), &mut scratches);
            }
        }));
        if rep == REPS - 1 {
            parallel_store = store;
        }
    }

    // All three variants must agree — this is the determinism contract.
    assert_stores_equal(&seed_store, &adaptive_store, "adaptive-sequential");
    assert_stores_equal(&seed_store, &parallel_store, "adaptive-parallel");

    let speedup_sequential = seed_time.as_secs_f64() / adaptive_time.as_secs_f64().max(1e-12);
    let speedup_parallel = seed_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-12);
    println!(
        "seed-rebuild:        {:>10.3} ms",
        seed_time.as_secs_f64() * 1e3
    );
    println!(
        "adaptive-sequential: {:>10.3} ms  ({speedup_sequential:.2}x)",
        adaptive_time.as_secs_f64() * 1e3
    );
    println!(
        "adaptive-parallel:   {:>10.3} ms  ({speedup_parallel:.2}x, {lanes} lanes)",
        parallel_time.as_secs_f64() * 1e3
    );

    // -- full materialization with the iteration profile ----------------------
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsPlus);
    let mut store = base_store.clone();
    let stats = reasoner.materialize(&mut store);
    let profile = reasoner.last_iteration_profile();
    println!(
        "\nfull RDFS-Plus materialization ({} -> {} triples):",
        stats.input_triples, stats.output_triples
    );
    print!("{}", profile.report());

    // -- record -------------------------------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"table_update\",\n",
            "  \"dataset\": {{ \"generator\": \"lubm\", \"target_triples\": {}, \"main_pairs\": {}, \"tables\": {} }},\n",
            "  \"workload\": {{ \"rounds\": {}, \"delta_pairs\": {} }},\n",
            "  \"seed_rebuild_ms\": {:.3},\n",
            "  \"adaptive_sequential_ms\": {:.3},\n",
            "  \"adaptive_parallel_ms\": {:.3},\n",
            "  \"speedup_sequential\": {:.3},\n",
            "  \"speedup_parallel\": {:.3},\n",
            "  \"pool_lanes\": {},\n",
            "  \"materialization\": {{\n",
            "    \"fragment\": \"rdfs-plus\",\n",
            "    \"input_triples\": {},\n",
            "    \"output_triples\": {},\n",
            "    \"iterations\": {},\n",
            "    \"os_cache_ms\": {:.3},\n",
            "    \"fire_ms\": {:.3},\n",
            "    \"update_ms\": {:.3}\n",
            "  }}\n",
            "}}\n",
        ),
        target_triples,
        main_pairs,
        tables,
        ROUNDS,
        delta_pairs,
        seed_time.as_secs_f64() * 1e3,
        adaptive_time.as_secs_f64() * 1e3,
        parallel_time.as_secs_f64() * 1e3,
        speedup_sequential,
        speedup_parallel,
        lanes,
        stats.input_triples,
        stats.output_triples,
        stats.iterations,
        profile.total_os_cache().as_secs_f64() * 1e3,
        profile.total_fire().as_secs_f64() * 1e3,
        profile.total_update().as_secs_f64() * 1e3,
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("\nrecorded -> {out_path}");
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_table_update.json".to_string())
}

fn time(f: impl FnOnce()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Builds `ROUNDS` rounds of small deltas shaped like the measured
/// fixed-point frontier (see the iteration profile this binary prints):
/// after iteration 1 the overwhelming majority of derived pairs are
/// duplicates — most tables receive a *fully* duplicate delta, and the few
/// genuinely fresh pairs mix interior positions with tail positions.
fn make_rounds(store: &TripleStore) -> Vec<Vec<(u64, Vec<u64>)>> {
    let mut rounds = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS as u64 {
        let mut deltas: Vec<(u64, Vec<u64>)> = Vec::new();
        for (table_index, (p, table)) in store.iter_tables().enumerate() {
            let pairs = table.pairs();
            let n = table.len();
            if n < 8 {
                continue;
            }
            let d = (n / 64).max(4);
            let fresh_table = (table_index as u64 + round).is_multiple_of(4);
            let mut delta = Vec::with_capacity(2 * d);
            for k in 0..d as u64 {
                let idx = ((k * 2_654_435_761 + round * 97) % n as u64) as usize;
                let (s, o) = (pairs[2 * idx], pairs[2 * idx + 1]);
                if !fresh_table || k % 8 < 6 {
                    // A pair already in main: the dominant case after
                    // iteration 2 (the profile shows 98-100% duplicates).
                    delta.extend_from_slice(&[s, o]);
                } else if k % 8 == 6 {
                    // A fresh interior pair: same subject, new object.
                    delta.extend_from_slice(&[s, o + 1_000_000_000 + round]);
                } else {
                    // A fresh tail pair: a brand-new (densely higher) subject.
                    delta.extend_from_slice(&[s + 2_000_000_000 + round * 1_000 + k, o]);
                }
            }
            deltas.push((p, delta));
        }
        rounds.push(deltas);
    }
    rounds
}

fn assert_stores_equal(expected: &TripleStore, actual: &TripleStore, label: &str) {
    assert_eq!(
        expected.len(),
        actual.len(),
        "{label}: triple count diverged"
    );
    for (p, table) in expected.iter_tables() {
        let other = actual
            .table(p)
            .unwrap_or_else(|| panic!("{label}: table {p} missing"));
        assert_eq!(table.pairs(), other.pairs(), "{label}: table {p} diverged");
    }
}
