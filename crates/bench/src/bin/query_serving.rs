//! The concurrent query-serving benchmark: throughput and tail latency of
//! the snapshot-isolated serving layer (docs/serving.md), recorded in
//! `BENCH_query.json` so future PRs can track the trajectory.
//!
//! Setup: a LUBM-scale dataset is materialized (RDFS-default), published
//! through a [`SnapshotStore`], and served by [`SnapshotQueryEngine`]s —
//! exactly the objects `inferray-cli serve` puts behind its HTTP endpoint,
//! minus the socket, so the record measures the engine rather than loopback
//! TCP.
//!
//! Two measurements:
//!
//! * **reader scaling** — *N* independent reader threads (1, 2, 4, 8)
//!   repeatedly executing a five-query LUBM mix against their own snapshot
//!   handle; per-query latencies give p50/p99, the fixed total work gives
//!   throughput vs. thread count;
//! * **batch execution** — the same total work submitted through
//!   [`SnapshotQueryEngine::execute_batch_on`] over `inferray-parallel`
//!   pools of 1/2/4/8 workers (the endpoint's bulk path).
//!
//! Every run double-checks determinism: each thread's solution counts must
//! equal the single-threaded reference counts, and a writer publishing new
//! epochs mid-measurement must never change what held engines answer.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin query_serving [--scale N] [--out FILE]
//! ```

use inferray_bench::ScaleConfig;
use inferray_core::{InferrayReasoner, Materializer};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parallel::ThreadPool;
use inferray_parser::loader::load_triples;
use inferray_query::{parse_query, Query, SnapshotQueryEngine};
use inferray_rules::Fragment;
use inferray_store::SnapshotStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Total mix executions per thread-count measurement (split across threads;
/// divisible by every entry of `THREAD_COUNTS` so each point runs the same
/// total work).
const TOTAL_ROUNDS: usize = 320;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const LUBM: &str = "http://inferray.example.org/lubm/";

fn query_mix() -> Vec<(&'static str, String)> {
    vec![
        (
            "type-scan",
            format!("PREFIX ub: <{LUBM}> SELECT ?x WHERE {{ ?x a ub:Professor }}"),
        ),
        (
            "point-ask",
            format!("PREFIX ub: <{LUBM}> ASK {{ ub:Professor0 a ub:Person }}"),
        ),
        (
            "bound-object",
            format!("PREFIX ub: <{LUBM}> SELECT ?s WHERE {{ ?s ub:worksFor ub:Department0 }}"),
        ),
        (
            "two-hop-join",
            format!(
                "PREFIX ub: <{LUBM}> SELECT ?s ?u WHERE {{ ?s ub:worksFor ?d . ?d ub:subOrganizationOf ?u }} LIMIT 200"
            ),
        ),
        (
            "distinct-classes",
            "SELECT DISTINCT ?c WHERE { ?x a ?c }".to_string(),
        ),
    ]
}

struct ScalingRecord {
    threads: usize,
    wall: Duration,
    queries: usize,
    p50_us: f64,
    p99_us: f64,
}

struct BatchRecord {
    pool_threads: usize,
    wall: Duration,
    queries: usize,
}

fn main() {
    let scale = ScaleConfig::from_env();
    let out_path = out_path_from_args();
    let target_triples = 200_000 / scale.divisor;

    println!(
        "query_serving — snapshot-isolated serving benchmark (LUBM ~{target_triples} triples)"
    );

    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
    let mut store = loaded.store;
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut store);
    let snapshots = Arc::new(SnapshotStore::new(store));
    let dictionary = Arc::new(loaded.dictionary);
    println!(
        "materialized store: {} pairs over {} tables (epoch {})",
        snapshots.snapshot().len(),
        snapshots.snapshot().table_count(),
        snapshots.epoch(),
    );

    let mix: Vec<(&'static str, Query)> = query_mix()
        .into_iter()
        .map(|(name, text)| (name, parse_query(&text).expect("mix query parses")))
        .collect();

    // Single-threaded reference counts: every measurement must reproduce
    // them exactly (the determinism contract of the serving layer).
    let reference_engine = SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary));
    let reference: Vec<usize> = mix
        .iter()
        .map(|(_, query)| reference_engine.execute(query).len())
        .collect();
    for ((name, _), count) in mix.iter().zip(&reference) {
        println!("  {name:<16} {count:>7} solutions");
    }

    // -- reader scaling ----------------------------------------------------
    let mut scaling = Vec::new();
    for &threads in &THREAD_COUNTS {
        let record = run_readers(&snapshots, &dictionary, &mix, &reference, threads);
        println!(
            "readers {:>2}: {:>8} queries in {:>9.3} ms -> {:>9.0} q/s, p50 {:>7.1} us, p99 {:>8.1} us",
            record.threads,
            record.queries,
            record.wall.as_secs_f64() * 1e3,
            record.queries as f64 / record.wall.as_secs_f64(),
            record.p50_us,
            record.p99_us,
        );
        scaling.push(record);
    }

    // -- batch execution ---------------------------------------------------
    let batch_texts: Vec<String> = (0..TOTAL_ROUNDS)
        .flat_map(|_| query_mix().into_iter().map(|(_, text)| text))
        .collect();
    let mut batches = Vec::new();
    for &threads in &THREAD_COUNTS {
        let record = run_batch(&reference_engine, &batch_texts, &reference, threads);
        println!(
            "batch  {:>2}: {:>8} queries in {:>9.3} ms -> {:>9.0} q/s",
            record.pool_threads,
            record.queries,
            record.wall.as_secs_f64() * 1e3,
            record.queries as f64 / record.wall.as_secs_f64(),
        );
        batches.push(record);
    }

    let speedup = |records: &[ScalingRecord]| -> f64 {
        let base = records[0].wall.as_secs_f64();
        records
            .iter()
            .find(|r| r.threads == 2)
            .map_or(1.0, |r| base / r.wall.as_secs_f64())
    };
    println!("2-reader speedup over 1 reader: {:.2}x", speedup(&scaling));

    let json = render_json(
        target_triples,
        &snapshots,
        &mix,
        &reference,
        &scaling,
        &batches,
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("\nrecorded -> {out_path}");
}

/// `threads` independent readers split `TOTAL_ROUNDS` executions of the mix,
/// each against its own snapshot handle of the same epoch.
fn run_readers(
    snapshots: &Arc<SnapshotStore>,
    dictionary: &Arc<inferray_dictionary::Dictionary>,
    mix: &[(&'static str, Query)],
    reference: &[usize],
    threads: usize,
) -> ScalingRecord {
    let rounds_per_thread = TOTAL_ROUNDS / threads;
    let start = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let engine =
                        SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(dictionary));
                    let mut thread_latencies = Vec::with_capacity(rounds_per_thread * mix.len());
                    for _ in 0..rounds_per_thread {
                        for ((_, query), &expected) in mix.iter().zip(reference) {
                            let query_start = Instant::now();
                            let solutions = engine.execute(query);
                            thread_latencies.push(query_start.elapsed().as_micros() as u64);
                            assert_eq!(
                                solutions.len(),
                                expected,
                                "a concurrent reader diverged from the reference"
                            );
                        }
                    }
                    thread_latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .collect()
    });
    let wall = start.elapsed();
    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let percentile = |p: f64| -> f64 {
        if all.is_empty() {
            return 0.0;
        }
        let index = ((all.len() as f64 * p).ceil() as usize).clamp(1, all.len()) - 1;
        all[index] as f64
    };
    ScalingRecord {
        threads,
        wall,
        queries: all.len(),
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

/// The whole workload as one `execute_batch_on` call per pool size.
fn run_batch(
    engine: &SnapshotQueryEngine,
    batch: &[String],
    reference: &[usize],
    pool_threads: usize,
) -> BatchRecord {
    let pool = ThreadPool::new(pool_threads);
    let start = Instant::now();
    let results = engine.execute_batch_on(&pool, batch);
    let wall = start.elapsed();
    assert_eq!(results.len(), batch.len());
    for (index, result) in results.iter().enumerate() {
        let expected = reference[index % reference.len()];
        assert_eq!(
            result.as_ref().expect("mix query parses").len(),
            expected,
            "batch result {index} diverged from the reference"
        );
    }
    BatchRecord {
        pool_threads,
        wall,
        queries: batch.len(),
    }
}

fn render_json(
    target_triples: usize,
    snapshots: &SnapshotStore,
    mix: &[(&'static str, Query)],
    reference: &[usize],
    scaling: &[ScalingRecord],
    batches: &[BatchRecord],
) -> String {
    use std::fmt::Write as _;
    let snapshot = snapshots.snapshot();

    let mut mix_json = String::new();
    for (i, ((name, _), count)) in mix.iter().zip(reference).enumerate() {
        let _ = writeln!(
            mix_json,
            "    {{ \"name\": \"{name}\", \"solutions\": {count} }}{}",
            if i + 1 == mix.len() { "" } else { "," },
        );
    }

    let mut scaling_json = String::new();
    for (i, r) in scaling.iter().enumerate() {
        let qps = r.queries as f64 / r.wall.as_secs_f64();
        let _ = write!(
            scaling_json,
            concat!(
                "    {{ \"reader_threads\": {}, \"queries\": {}, \"wall_ms\": {:.3}, ",
                "\"queries_per_second\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1} }}{}\n",
            ),
            r.threads,
            r.queries,
            r.wall.as_secs_f64() * 1e3,
            qps,
            r.p50_us,
            r.p99_us,
            if i + 1 == scaling.len() { "" } else { "," },
        );
    }

    let mut batch_json = String::new();
    for (i, r) in batches.iter().enumerate() {
        let qps = r.queries as f64 / r.wall.as_secs_f64();
        let _ = writeln!(
            batch_json,
            "    {{ \"pool_threads\": {}, \"queries\": {}, \"wall_ms\": {:.3}, \"queries_per_second\": {:.0} }}{}",
            r.pool_threads,
            r.queries,
            r.wall.as_secs_f64() * 1e3,
            qps,
            if i + 1 == batches.len() { "" } else { "," },
        );
    }

    let base = scaling[0].wall.as_secs_f64();
    let two = scaling
        .iter()
        .find(|r| r.threads == 2)
        .map_or(1.0, |r| base / r.wall.as_secs_f64());

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"query_serving\",\n",
            "  \"dataset\": {{ \"generator\": \"lubm\", \"target_triples\": {}, \"materialized_pairs\": {}, \"tables\": {}, \"epoch\": {} }},\n",
            "  \"query_mix\": [\n{}  ],\n",
            "  \"reader_scaling\": [\n{}  ],\n",
            "  \"batch_execution\": [\n{}  ],\n",
            "  \"two_reader_speedup\": {:.3}\n",
            "}}\n",
        ),
        target_triples,
        snapshot.len(),
        snapshot.table_count(),
        snapshot.epoch(),
        mix_json,
        scaling_json,
        batch_json,
        two,
    )
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_query.json".to_string())
}
