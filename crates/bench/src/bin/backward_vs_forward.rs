//! Forward-chaining (materialize once, query cheap) versus backward-chaining
//! (no setup, every query pays for inference) — the trade-off of §1
//! (extension; not a paper table).
//!
//! For each dataset the harness answers the same batch of instance-type
//! queries (`⟨x, rdf:type, ?⟩` for a sample of instances) two ways:
//!
//! * **forward** — materialize the ρdf closure with Inferray, then answer
//!   every query with a pattern lookup over the sorted property tables;
//! * **backward** — compile only the schema hierarchies (`BackwardChainer`)
//!   and rewrite every query at evaluation time.
//!
//! The last column reports the break-even batch size: how many queries a
//! workload must issue before paying the materialization cost up front
//! becomes cheaper than rewriting each query.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin backward_vs_forward [--scale N]
//! ```

use inferray_baselines::BackwardChainer;
use inferray_bench::{fmt_ms, print_table, ScaleConfig};
use inferray_core::{InferrayReasoner, Materializer};
use inferray_datasets::{subclass_chain, BsbmGenerator, Dataset, LubmGenerator};
use inferray_dictionary::wellknown;
use inferray_parser::loader::load_triples;
use inferray_rules::Fragment;
use inferray_store::{TriplePattern, TripleStore};
use std::time::Instant;

/// How many instance-type queries each strategy answers per dataset.
const QUERY_BATCH: usize = 500;

fn datasets(scale: &ScaleConfig) -> Vec<Dataset> {
    let chain_length = scale.chain(1_000);
    vec![
        Dataset::new(
            format!("chain-{chain_length}"),
            subclass_chain(chain_length),
        ),
        BsbmGenerator::new(scale.triples(5_000_000)).generate(),
        LubmGenerator::new(scale.triples(5_000_000)).generate(),
    ]
}

/// The query workload: one `⟨x, rdf:type, ?⟩` pattern per sampled subject.
fn query_subjects(store: &TripleStore) -> Vec<u64> {
    let mut subjects: Vec<u64> = match store.table(wellknown::RDF_TYPE) {
        Some(table) => table.iter_pairs().map(|(s, _)| s).collect(),
        None => Vec::new(),
    };
    if subjects.is_empty() {
        // Chains have no rdf:type triples; query the class hierarchy instead.
        subjects = store
            .table(wellknown::RDFS_SUB_CLASS_OF)
            .map(|t| t.iter_pairs().map(|(s, _)| s).collect())
            .unwrap_or_default();
    }
    subjects.sort_unstable();
    subjects.dedup();
    subjects.truncate(QUERY_BATCH);
    subjects
}

fn pattern_for(store: &TripleStore, subject: u64) -> TriplePattern {
    if store
        .table(wellknown::RDF_TYPE)
        .is_some_and(|t| !t.is_empty())
    {
        TriplePattern::any()
            .with_p(wellknown::RDF_TYPE)
            .with_s(subject)
    } else {
        TriplePattern::any()
            .with_p(wellknown::RDFS_SUB_CLASS_OF)
            .with_s(subject)
    }
}

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Forward vs backward chaining — ρdf instance-type queries");
    println!(
        "(paper dataset sizes divided by {}, {} queries per dataset)",
        scale.divisor, QUERY_BATCH
    );

    let header = vec![
        "dataset",
        "strategy",
        "setup ms",
        "queries",
        "answers",
        "query ms",
        "us/query",
        "break-even #queries",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for dataset in datasets(&scale) {
        let loaded = load_triples(dataset.triples.iter()).expect("generated datasets are valid");
        let base_store = loaded.store;
        let subjects = query_subjects(&base_store);

        // Forward: materialize once, then cheap lookups.
        let mut forward_store = base_store.clone();
        let setup_start = Instant::now();
        InferrayReasoner::new(Fragment::RhoDf).materialize(&mut forward_store);
        forward_store.ensure_all_os();
        let forward_setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

        let query_start = Instant::now();
        let mut forward_answers = 0usize;
        for &s in &subjects {
            forward_answers += forward_store
                .match_pattern(pattern_for(&base_store, s))
                .len();
        }
        let forward_query_ms = query_start.elapsed().as_secs_f64() * 1e3;

        // Backward: compile the schema, rewrite every query.
        let setup_start = Instant::now();
        let chainer = BackwardChainer::new(&base_store);
        let backward_setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

        let query_start = Instant::now();
        let mut backward_answers = 0usize;
        for &s in &subjects {
            backward_answers += chainer.match_pattern(pattern_for(&base_store, s)).len();
        }
        let backward_query_ms = query_start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            forward_answers, backward_answers,
            "strategies must return the same answers"
        );

        let per_query_forward = forward_query_ms / subjects.len().max(1) as f64;
        let per_query_backward = backward_query_ms / subjects.len().max(1) as f64;
        let break_even = if per_query_backward > per_query_forward {
            let extra_setup = forward_setup_ms - backward_setup_ms;
            format!(
                "{:.0}",
                (extra_setup / (per_query_backward - per_query_forward)).max(0.0)
            )
        } else {
            "never".to_string()
        };

        for (strategy, setup_ms, query_ms, answers, break_even_cell) in [
            (
                "forward (materialize + lookup)",
                forward_setup_ms,
                forward_query_ms,
                forward_answers,
                break_even.clone(),
            ),
            (
                "backward (rewrite per query)",
                backward_setup_ms,
                backward_query_ms,
                backward_answers,
                "-".to_string(),
            ),
        ] {
            rows.push(vec![
                dataset.label.clone(),
                strategy.to_string(),
                fmt_ms(setup_ms),
                subjects.len().to_string(),
                answers.to_string(),
                fmt_ms(query_ms),
                format!("{:.1}", query_ms * 1e3 / subjects.len().max(1) as f64),
                break_even_cell,
            ]);
        }
    }
    print_table("Forward vs backward chaining (ρdf)", &header, &rows);
}
