//! The maintenance benchmark: incremental retraction (delete–rederive,
//! docs/maintenance.md) against the only alternative forward chaining
//! classically offers — "requires full materialization after deletion"
//! (paper §1) — and records the result in `BENCH_maintenance.json`.
//!
//! For a LUBM-scale store materialized once, the benchmark retracts
//! explicit instance deltas of growing sizes two ways:
//!
//! * `retract`  — [`InferrayReasoner::retract_delta`]: over-delete the cone
//!   of consequences along the rule-dependency graph, then rederive the
//!   survivors with the output-scheduled fixed point;
//! * `rebuild`  — re-sort `base ∖ Δ` into a fresh store and run the full
//!   materialization from scratch.
//!
//! Both paths must produce byte-identical stores (the invariant proven by
//! `tests/retraction_equivalence.rs`); the benchmark asserts it on every
//! delta size before recording timings.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin maintenance [--scale N] [--out FILE]
//! ```

use inferray_bench::{instance_victims, strided_delta, ScaleConfig};
use inferray_core::{InferrayReasoner, Materializer};
use inferray_datasets::lubm::LubmGenerator;
use inferray_model::IdTriple;
use inferray_parser::loader::load_triples;
use inferray_rules::Fragment;
use inferray_store::TripleStore;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const FRAGMENT: Fragment = Fragment::RdfsDefault;
const REPS: usize = 3;

fn main() {
    let scale = ScaleConfig::from_env();
    let out_path = out_path_from_args();
    let target_triples = 200_000 / scale.divisor;

    println!("maintenance — delete–rederive vs full rebuild (LUBM ~{target_triples} triples)");

    // -- the explicit base and its materialization, computed once -----------
    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
    let mut base: TripleStore = loaded.store;
    base.finalize();
    let mut materialized = base.clone();
    let stats = InferrayReasoner::new(FRAGMENT).materialize(&mut materialized);
    println!(
        "base: {} explicit triples, materialized: {} ({} inferred, {:?})",
        base.len(),
        materialized.len(),
        stats.inferred_triples(),
        stats.duration,
    );

    // Candidate victims: the shared instance-churn workload definition
    // (also used by the criterion bench, so the two cannot drift).
    let victims: Vec<IdTriple> = instance_victims(&base);
    let mut sizes: Vec<usize> = [8usize, 64, 512, 4096]
        .into_iter()
        .filter(|&n| n <= victims.len() / 2)
        .collect();
    if sizes.is_empty() {
        sizes.push(victims.len() / 2);
    }

    let mut records = Vec::new();
    println!(
        "\n{:>8}  {:>14}  {:>14}  {:>9}  {:>9}",
        "|Δ|", "retract (ms)", "rebuild (ms)", "speedup", "removed"
    );
    for &size in &sizes {
        // Spread the delta across the whole store.
        let delta = strided_delta(&victims, size);
        let removed_set: BTreeSet<IdTriple> = delta.iter().copied().collect();
        let remaining: Vec<IdTriple> = base
            .iter_triples()
            .filter(|t| !removed_set.contains(t))
            .collect();

        let mut retract_time = Duration::MAX;
        let mut rebuild_time = Duration::MAX;
        let mut retracted = TripleStore::new();
        let mut rebuilt = TripleStore::new();
        let mut net_removed = 0usize;
        for rep in 0..REPS {
            // Variant 1: incremental delete–rederive.
            let mut store = materialized.clone();
            let mut base_copy = base.clone();
            let mut reasoner = InferrayReasoner::new(FRAGMENT);
            let start = Instant::now();
            let stats = reasoner.retract_delta(&mut store, &mut base_copy, delta.iter().copied());
            retract_time = retract_time.min(start.elapsed());
            net_removed = stats.net_removed();
            if rep == REPS - 1 {
                retracted = store;
            }

            // Variant 2: full rebuild from base ∖ Δ.
            let start = Instant::now();
            let mut store = TripleStore::from_triples(remaining.iter().copied());
            InferrayReasoner::new(FRAGMENT).materialize(&mut store);
            rebuild_time = rebuild_time.min(start.elapsed());
            if rep == REPS - 1 {
                rebuilt = store;
            }
        }
        assert_stores_equal(&rebuilt, &retracted, size);

        let speedup = rebuild_time.as_secs_f64() / retract_time.as_secs_f64().max(1e-12);
        println!(
            "{:>8}  {:>14.3}  {:>14.3}  {:>8.2}x  {:>9}",
            size,
            retract_time.as_secs_f64() * 1e3,
            rebuild_time.as_secs_f64() * 1e3,
            speedup,
            net_removed,
        );
        records.push(format!(
            concat!(
                "    {{ \"delta\": {}, \"retract_ms\": {:.3}, \"rebuild_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"net_removed\": {} }}"
            ),
            size,
            retract_time.as_secs_f64() * 1e3,
            rebuild_time.as_secs_f64() * 1e3,
            speedup,
            net_removed,
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"maintenance\",\n",
            "  \"dataset\": {{ \"generator\": \"lubm\", \"target_triples\": {}, ",
            "\"base_triples\": {}, \"materialized_triples\": {} }},\n",
            "  \"fragment\": \"{}\",\n",
            "  \"reps\": {},\n",
            "  \"rounds\": [\n{}\n  ]\n",
            "}}\n",
        ),
        target_triples,
        base.len(),
        materialized.len(),
        FRAGMENT.name(),
        REPS,
        records.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("\nrecorded -> {out_path}");
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_maintenance.json".to_string())
}

fn assert_stores_equal(expected: &TripleStore, actual: &TripleStore, delta: usize) {
    assert_eq!(
        expected.len(),
        actual.len(),
        "|Δ|={delta}: triple count diverged"
    );
    for (p, table) in expected.iter_tables() {
        let other = actual
            .table(p)
            .unwrap_or_else(|| panic!("|Δ|={delta}: table {p} missing"));
        assert_eq!(
            table.pairs(),
            other.pairs(),
            "|Δ|={delta}: table {p} diverged"
        );
    }
}
