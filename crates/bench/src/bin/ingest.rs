//! The ingest benchmark: measures the streaming parallel text → store
//! pipeline against the seed-shaped load path and records the result in
//! `BENCH_ingest.json` so future PRs can track the trajectory.
//!
//! Four variants load the **same** LUBM-scale N-Triples document:
//!
//! * `seed`              — a faithful reproduction of the seed's load path
//!   (kept in [`seed_path`]): a `Vec<char>` cursor parser building an owned
//!   `Triple` per statement, a dictionary allocating `term.to_string()` on
//!   *every* lookup, and the clone-the-table promotion patch;
//! * `two-pass`          — the current compatibility shape: zero-copy lexer
//!   collected into `Vec<Triple>`, then `load_triples` (borrowed-key
//!   dictionary);
//! * `ingest-sequential` — the streaming pipeline with one lane (the
//!   `LoaderOptions::sequential` escape hatch);
//! * `ingest-parallel`   — the same pipeline fanned out over ≥ 4 worker
//!   lanes: chunked zero-copy lexing, thread-local delta dictionaries,
//!   deterministic merge, parallel per-property table build. All four must
//!   produce byte-identical dictionaries and stores — asserted every run.
//!
//! The binary also ingests a promotion-heavy Turtle fixture (every chunking
//! splits the resource→property promotion chains differently) and asserts
//! the same identity, covering the acceptance criterion directly.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin ingest [--scale N] [--out FILE]
//! ```

use inferray_bench::ScaleConfig;
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::{load_triples, parse_ntriples, Ingest, LoadedDataset, LoaderOptions};
use std::time::{Duration, Instant};

/// Worker lanes for the parallel variant (the acceptance criterion measures
/// "on ≥ 4 threads"; a dedicated pool is spawned so the record does not
/// depend on the machine's core count).
const PARALLEL_LANES: usize = 4;

fn main() {
    let scale = ScaleConfig::from_env();
    let out_path = out_path_from_args();
    let target_triples = 200_000 / scale.divisor;

    println!("ingest — streaming parallel load benchmark (LUBM ~{target_triples} triples)");

    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    let document = dataset.to_ntriples();
    let lanes = inferray_parallel::global().threads() + 1;
    println!(
        "document: {} statements, {:.1} MiB, {lanes} pool lanes",
        dataset.len(),
        document.len() as f64 / (1024.0 * 1024.0)
    );

    // Interleave repetitions and keep each variant's minimum (single-shot
    // millisecond timings are hopelessly noisy on a shared box).
    const REPS: usize = 7;
    let sequential_ingest = Ingest::with_options(LoaderOptions::sequential());
    let parallel_ingest =
        Ingest::with_options(LoaderOptions::default().with_threads(PARALLEL_LANES));

    let mut seed_time = Duration::MAX;
    let mut two_pass_time = Duration::MAX;
    let mut sequential_time = Duration::MAX;
    let mut parallel_time = Duration::MAX;
    // Per-repetition speedups: within one repetition the variants run back
    // to back, so load spikes on a shared box hit them together and the
    // *ratio* stays meaningful even when absolute times wander. The medians
    // of these paired ratios are the recorded speedups.
    let mut ratios_two_pass = Vec::with_capacity(REPS);
    let mut ratios_sequential = Vec::with_capacity(REPS);
    let mut ratios_parallel = Vec::with_capacity(REPS);
    let mut seed = None;
    let mut two_pass = None;
    let mut sequential = None;
    let mut parallel = None;
    for _ in 0..REPS {
        let (seed_t, loaded) = timed(|| seed_path::load_ntriples(&document));
        seed_time = seed_time.min(seed_t);
        seed = Some(loaded);

        let (time, loaded) = timed(|| {
            let triples = parse_ntriples(&document).expect("generated dataset is valid");
            load_triples(triples).expect("generated dataset encodes")
        });
        two_pass_time = two_pass_time.min(time);
        ratios_two_pass.push(seed_t.as_secs_f64() / time.as_secs_f64().max(1e-12));
        two_pass = Some(loaded);

        let (time, loaded) = timed(|| {
            sequential_ingest
                .ntriples(&document)
                .expect("generated dataset is valid")
        });
        sequential_time = sequential_time.min(time);
        ratios_sequential.push(seed_t.as_secs_f64() / time.as_secs_f64().max(1e-12));
        sequential = Some(loaded);

        let (time, loaded) = timed(|| {
            parallel_ingest
                .ntriples(&document)
                .expect("generated dataset is valid")
        });
        parallel_time = parallel_time.min(time);
        ratios_parallel.push(seed_t.as_secs_f64() / time.as_secs_f64().max(1e-12));
        parallel = Some(loaded);
    }
    let seed = seed.expect("ran");
    let two_pass = two_pass.expect("ran");
    let sequential = sequential.expect("ran");
    let parallel = parallel.expect("ran");

    // The determinism contract: every path agrees with the seed byte for
    // byte.
    seed_path::assert_matches(&seed, &two_pass, "two-pass");
    assert_identical(&two_pass, &sequential, "ingest-sequential");
    assert_identical(&two_pass, &parallel, "ingest-parallel");

    let speedup_two_pass = median(&mut ratios_two_pass);
    let speedup_sequential = median(&mut ratios_sequential);
    let speedup_parallel = median(&mut ratios_parallel);
    println!(
        "seed:              {:>10.3} ms",
        seed_time.as_secs_f64() * 1e3
    );
    println!(
        "two-pass:          {:>10.3} ms  ({speedup_two_pass:.2}x)",
        two_pass_time.as_secs_f64() * 1e3
    );
    println!(
        "ingest-sequential: {:>10.3} ms  ({speedup_sequential:.2}x)",
        sequential_time.as_secs_f64() * 1e3
    );
    println!(
        "ingest-parallel:   {:>10.3} ms  ({speedup_parallel:.2}x, {PARALLEL_LANES} lanes)",
        parallel_time.as_secs_f64() * 1e3
    );

    // -- promotion-heavy Turtle fixture --------------------------------------
    let turtle = promotion_heavy_turtle(2_000.min(target_triples));
    let turtle_sequential = sequential_ingest
        .turtle(&turtle)
        .expect("fixture is valid turtle");
    let turtle_parallel = parallel_ingest
        .turtle(&turtle)
        .expect("fixture is valid turtle");
    assert_identical(&turtle_sequential, &turtle_parallel, "turtle-parallel");
    println!(
        "turtle fixture: {} triples, parallel == sequential ✓",
        turtle_parallel.len()
    );

    // -- record -------------------------------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ingest\",\n",
            "  \"dataset\": {{ \"generator\": \"lubm\", \"target_triples\": {}, \"statements\": {}, \"document_bytes\": {} }},\n",
            "  \"seed_ms\": {:.3},\n",
            "  \"two_pass_ms\": {:.3},\n",
            "  \"ingest_sequential_ms\": {:.3},\n",
            "  \"ingest_parallel_ms\": {:.3},\n",
            "  \"speedup_two_pass\": {:.3},\n",
            "  \"speedup_sequential\": {:.3},\n",
            "  \"speedup_parallel\": {:.3},\n",
            "  \"parallel_lanes\": {},\n",
            "  \"machine_pool_lanes\": {},\n",
            "  \"loaded\": {{ \"triples\": {}, \"properties\": {}, \"resources\": {}, \"tables\": {} }},\n",
            "  \"turtle_fixture\": {{ \"triples\": {}, \"parallel_equals_sequential\": true }}\n",
            "}}\n",
        ),
        target_triples,
        dataset.len(),
        document.len(),
        seed_time.as_secs_f64() * 1e3,
        two_pass_time.as_secs_f64() * 1e3,
        sequential_time.as_secs_f64() * 1e3,
        parallel_time.as_secs_f64() * 1e3,
        speedup_two_pass,
        speedup_sequential,
        speedup_parallel,
        PARALLEL_LANES,
        lanes,
        parallel.len(),
        parallel.dictionary.num_properties(),
        parallel.dictionary.num_resources(),
        parallel.store.table_count(),
        turtle_parallel.len(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("\nrecorded -> {out_path}");
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ingest.json".to_string())
}

fn timed<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    values[values.len() / 2]
}

fn assert_identical(expected: &LoadedDataset, actual: &LoadedDataset, label: &str) {
    assert_eq!(
        expected.dictionary.len(),
        actual.dictionary.len(),
        "{label}: dictionary size diverged"
    );
    assert_eq!(
        expected.len(),
        actual.len(),
        "{label}: triple count diverged"
    );
    assert_eq!(expected, actual, "{label}: datasets diverged");
}

/// A faithful reproduction of the seed's text → store path, kept so the
/// benchmark's baseline cannot silently inherit later optimizations: a
/// `Vec<char>` cursor parser materializing an owned `Triple` per statement,
/// a dictionary allocating `term.to_string()` on **every** lookup, and the
/// clone-the-table promotion patch.
mod seed_path {
    use inferray_model::ids::{is_property_id, nth_property_id, nth_resource_id};
    use inferray_model::term::unescape_ntriples;
    use inferray_model::{vocab, IdTriple, Term, Triple};
    use inferray_parser::LoadedDataset;
    use inferray_store::{PropertyTable, TripleStore};
    use std::collections::HashMap;

    /// The seed loader's result: its dictionary kept its interning map and
    /// dense term tables exactly like today's, so equality is checked
    /// field-wise against the modern [`LoadedDataset`].
    pub struct SeedLoaded {
        to_id: HashMap<String, u64>,
        num_properties: usize,
        num_resources: usize,
        store: TripleStore,
    }

    pub fn load_ntriples(input: &str) -> SeedLoaded {
        let mut triples: Vec<Triple> = Vec::new();
        for (i, line) in input.lines().enumerate() {
            if let Some(t) = parse_line(line, i + 1) {
                triples.push(t);
            }
        }
        let mut dict = SeedDictionary::new();
        let mut store = TripleStore::new();
        for t in &triples {
            store.add_triple(dict.encode_triple(t));
        }
        if !dict.pending.is_empty() {
            let remap: HashMap<u64, u64> = dict.pending.drain(..).collect();
            let properties: Vec<u64> = store.property_ids().collect();
            for p in properties {
                if let Some(table) = store.table_mut(p) {
                    let mut pairs: Vec<u64> = table.clone().into_pairs();
                    let mut changed = false;
                    for value in pairs.iter_mut() {
                        if let Some(&new_id) = remap.get(value) {
                            *value = new_id;
                            changed = true;
                        }
                    }
                    if changed {
                        *table = PropertyTable::from_pairs(pairs);
                    }
                }
            }
        }
        store.finalize();
        SeedLoaded {
            to_id: dict.to_id,
            num_properties: dict.properties.len(),
            num_resources: dict.resources.len(),
            store,
        }
    }

    pub fn assert_matches(seed: &SeedLoaded, modern: &LoadedDataset, label: &str) {
        assert_eq!(
            seed.num_properties,
            modern.dictionary.num_properties(),
            "{label}: property count diverged from seed"
        );
        assert_eq!(
            seed.num_resources,
            modern.dictionary.num_resources(),
            "{label}: resource count diverged from seed"
        );
        for (key, &id) in &seed.to_id {
            assert_eq!(
                modern.dictionary.id_of_text(key),
                Some(id),
                "{label}: id of {key} diverged from seed"
            );
        }
        assert_eq!(
            seed.store, modern.store,
            "{label}: store diverged from seed"
        );
    }

    // -- the seed parser ----------------------------------------------------

    struct Cursor {
        chars: Vec<char>,
        pos: usize,
    }

    impl Cursor {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }
        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.pos += 1;
            }
        }
        fn parse_term(&mut self) -> Term {
            match self.peek() {
                Some('<') => {
                    self.bump();
                    let mut iri = String::new();
                    while let Some(c) = self.bump() {
                        if c == '>' {
                            break;
                        }
                        iri.push(c);
                    }
                    Term::iri(unescape_ntriples(&iri).expect("benchmark input is valid"))
                }
                Some('_') => {
                    self.bump();
                    self.bump(); // ':'
                    let mut label = String::new();
                    while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-')
                    {
                        label.push(self.bump().expect("peeked"));
                    }
                    Term::blank(label)
                }
                _ => {
                    self.bump(); // '"'
                    let mut lexical = String::new();
                    while let Some(c) = self.bump() {
                        match c {
                            '\\' => {
                                lexical.push('\\');
                                lexical.push(self.bump().expect("escaped char"));
                            }
                            '"' => break,
                            c => lexical.push(c),
                        }
                    }
                    let lexical = unescape_ntriples(&lexical).expect("benchmark input is valid");
                    match self.peek() {
                        Some('@') => {
                            self.bump();
                            let mut lang = String::new();
                            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-')
                            {
                                lang.push(self.bump().expect("peeked"));
                            }
                            Term::lang_literal(lexical, lang)
                        }
                        Some('^') => {
                            self.bump();
                            self.bump();
                            match self.parse_term() {
                                Term::Iri(dt) => Term::typed_literal(lexical, dt),
                                _ => unreachable!("datatype is an IRI"),
                            }
                        }
                        _ => Term::plain_literal(lexical),
                    }
                }
            }
        }
    }

    fn parse_line(line: &str, _line_number: usize) -> Option<Triple> {
        // The seed collected every line into a fresh `Vec<char>` before
        // looking at a single character.
        let mut cursor = Cursor {
            chars: line.chars().collect(),
            pos: 0,
        };
        cursor.skip_ws();
        if cursor.peek().is_none() || cursor.peek() == Some('#') {
            return None;
        }
        let subject = cursor.parse_term();
        cursor.skip_ws();
        let predicate = cursor.parse_term();
        cursor.skip_ws();
        let object = cursor.parse_term();
        Some(Triple::new(subject, predicate, object))
    }

    // -- the seed dictionary ------------------------------------------------

    struct SeedDictionary {
        to_id: HashMap<String, u64>,
        properties: Vec<Term>,
        resources: Vec<Term>,
        pending: Vec<(u64, u64)>,
    }

    impl SeedDictionary {
        fn new() -> Self {
            let mut dict = SeedDictionary {
                to_id: HashMap::new(),
                properties: Vec::new(),
                resources: Vec::new(),
                pending: Vec::new(),
            };
            for iri in vocab::SCHEMA_PROPERTIES {
                dict.intern_property(&Term::iri(*iri));
            }
            for iri in vocab::SCHEMA_RESOURCES {
                dict.encode_as_resource(&Term::iri(*iri));
            }
            dict
        }

        fn intern_property(&mut self, term: &Term) -> u64 {
            // The seed rendered the key on every call.
            let key = term.to_string();
            if let Some(&id) = self.to_id.get(&key) {
                if is_property_id(id) {
                    return id;
                }
                let new_id = nth_property_id(self.properties.len());
                self.properties.push(term.clone());
                self.to_id.insert(key, new_id);
                self.pending.push((id, new_id));
                return new_id;
            }
            let id = nth_property_id(self.properties.len());
            self.properties.push(term.clone());
            self.to_id.insert(key, id);
            id
        }

        fn encode_as_resource(&mut self, term: &Term) -> u64 {
            let key = term.to_string();
            if let Some(&id) = self.to_id.get(&key) {
                return id;
            }
            let id = nth_resource_id(self.resources.len());
            self.resources.push(term.clone());
            self.to_id.insert(key, id);
            id
        }

        fn encode_triple(&mut self, triple: &Triple) -> IdTriple {
            let p = self.intern_property(&triple.predicate);
            let subject_is_property = matches!(
                p,
                x if x == inferray_dictionary::wellknown::RDFS_SUB_PROPERTY_OF
                    || x == inferray_dictionary::wellknown::RDFS_DOMAIN
                    || x == inferray_dictionary::wellknown::RDFS_RANGE
                    || x == inferray_dictionary::wellknown::OWL_EQUIVALENT_PROPERTY
                    || x == inferray_dictionary::wellknown::OWL_INVERSE_OF
            ) || (p == inferray_dictionary::wellknown::RDF_TYPE
                && object_is_property_class(&triple.object));
            let object_is_property = matches!(
                p,
                x if x == inferray_dictionary::wellknown::RDFS_SUB_PROPERTY_OF
                    || x == inferray_dictionary::wellknown::OWL_EQUIVALENT_PROPERTY
                    || x == inferray_dictionary::wellknown::OWL_INVERSE_OF
            );
            let s = if subject_is_property && triple.subject.valid_predicate() {
                self.intern_property(&triple.subject)
            } else {
                self.encode_as_resource(&triple.subject)
            };
            let o = if object_is_property && triple.object.valid_predicate() {
                self.intern_property(&triple.object)
            } else {
                self.encode_as_resource(&triple.object)
            };
            IdTriple::new(s, p, o)
        }
    }

    fn object_is_property_class(term: &Term) -> bool {
        matches!(
            term.as_iri(),
            Some(
                vocab::RDF_PROPERTY
                    | vocab::RDFS_CONTAINER_MEMBERSHIP_PROPERTY
                    | vocab::OWL_TRANSITIVE_PROPERTY
                    | vocab::OWL_SYMMETRIC_PROPERTY
                    | vocab::OWL_FUNCTIONAL_PROPERTY
                    | vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY
                    | vocab::OWL_DATATYPE_PROPERTY
                    | vocab::OWL_OBJECT_PROPERTY
            )
        )
    }
}

/// A Turtle document whose resource→property promotion chains interleave
/// with bulk instance statements, so any chunking cuts through them.
fn promotion_heavy_turtle(properties: usize) -> String {
    let mut doc = String::from(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         @prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
         @prefix ex: <http://promo.example.org/> .\n",
    );
    for i in 0..properties {
        // The term appears as a schema *subject* first (registered as a
        // resource candidate, promoted when the predicate use arrives)...
        doc.push_str(&format!("ex:rel{i} rdfs:domain ex:Dom{} .\n", i % 13));
        doc.push_str(&format!(
            "ex:item{i} a ex:Dom{} ; ex:score {} .\n",
            i % 13,
            i % 97
        ));
        // ...and as a predicate only much later (different chunk at most
        // chunk sizes), plus inverse declarations promoting objects.
        doc.push_str(&format!(
            "ex:subj{i} ex:rel{} ex:obj{i} .\n",
            properties - 1 - i
        ));
        if i % 7 == 0 {
            doc.push_str(&format!("ex:rel{i} owl:inverseOf ex:revRel{i} .\n"));
        }
    }
    doc
}
