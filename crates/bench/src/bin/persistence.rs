//! The persistence benchmark: cold start from a checksummed snapshot image
//! (docs/persistence.md) against the only alternative a restart otherwise
//! has — re-parsing the source dataset and re-running the full
//! materialization — and records the result in `BENCH_persistence.json`.
//!
//! Three costs are measured on a LUBM-scale store (paper size 200k triples,
//! divided by `--scale`):
//!
//! * `full_reload`  — generate/parse + sort + materialize from scratch, the
//!   cost a restart pays without a snapshot;
//! * `cold_start`   — [`DurableDataset::open`]: validate the image
//!   section-by-section (CRC-32 each) and rebuild the property tables with
//!   one sequential pass per section;
//! * `checkpoint`   — encode + atomically write the image, the cost the
//!   serving write path pays when the WAL crosses its threshold;
//! * `wal_replay`   — recovery with a non-empty log: image load plus
//!   replaying update batches through the live write path.
//!
//! Every recovery in the sweep is asserted **byte-identical** to the live
//! dataset before its timing is recorded (the invariant proven exhaustively
//! by `tests/crash_recovery.rs`).
//!
//! ```text
//! cargo run -p inferray-bench --release --bin persistence [--scale N] [--out FILE]
//! ```

use inferray_bench::ScaleConfig;
use inferray_core::{Fragment, InferrayOptions, ServingDataset};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::loader::load_triples;
use inferray_persist::{encode_image, CheckpointPolicy, DurableDataset, StdFs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FRAGMENT: Fragment = Fragment::RdfsDefault;
const REPS: usize = 3;
const WAL_BATCHES: usize = 200;
const TRIPLES_PER_BATCH: usize = 5;

fn main() {
    let scale = ScaleConfig::from_env();
    let out_path = out_path_from_args();
    let target_triples = scale.triples(200_000);

    println!("persistence — snapshot cold start vs full reload (LUBM ~{target_triples} triples)");

    // Scratch data directory under target/ so the benchmark never leaves
    // state outside the build tree.
    let dir = PathBuf::from("target/persistence-bench");
    let _ = std::fs::remove_dir_all(&dir);

    // -- full reload: the baseline cost of a restart without a snapshot ----
    let mut full_reload = Duration::MAX;
    let mut live = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
        let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
        let (dataset, _) =
            ServingDataset::materialize(loaded, FRAGMENT, InferrayOptions::default());
        full_reload = full_reload.min(start.elapsed());
        live = Some(dataset);
    }
    let live = live.expect("at least one rep");
    let (live_dict, live_base, live_snapshot) = live.persistable_state();
    println!(
        "full reload: {:.1} ms ({} materialized triples)",
        full_reload.as_secs_f64() * 1e3,
        live_snapshot.store().len(),
    );

    // -- checkpoint: encode + atomic write of the image --------------------
    let backend = Arc::new(StdFs);
    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
    let (durable, _) = DurableDataset::create(
        loaded,
        FRAGMENT,
        InferrayOptions::default(),
        &dir,
        Arc::clone(&backend) as Arc<_>,
        CheckpointPolicy::manual(),
    )
    .expect("initial snapshot");
    let mut checkpoint = Duration::MAX;
    let mut snapshot_path = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let path = durable.checkpoint().expect("checkpoint");
        checkpoint = checkpoint.min(start.elapsed());
        snapshot_path = Some(path);
    }
    let snapshot_bytes = std::fs::metadata(snapshot_path.expect("checkpoint ran"))
        .expect("snapshot exists")
        .len();
    println!(
        "checkpoint: {:.1} ms ({:.1} MiB image)",
        checkpoint.as_secs_f64() * 1e3,
        snapshot_bytes as f64 / (1024.0 * 1024.0),
    );

    // -- cold start: open the image with an empty WAL ----------------------
    let mut cold_start = Duration::MAX;
    for rep in 0..REPS {
        let start = Instant::now();
        let (recovered, report) = DurableDataset::open(
            &dir,
            FRAGMENT,
            InferrayOptions::default(),
            Arc::clone(&backend) as Arc<_>,
            CheckpointPolicy::manual(),
        )
        .expect("cold start");
        cold_start = cold_start.min(start.elapsed());
        assert_eq!(report.replayed_records, 0, "cold start must not replay");
        if rep == 0 {
            assert_byte_identical(&live, recovered.dataset(), "cold start");
        }
    }
    let speedup = full_reload.as_secs_f64() / cold_start.as_secs_f64().max(1e-12);
    println!(
        "cold start: {:.1} ms — {speedup:.1}x faster than the full reload",
        cold_start.as_secs_f64() * 1e3,
    );

    // -- WAL replay: recovery with a non-empty log -------------------------
    // Batches of fresh triples under a fresh predicate: the replay pays the
    // full live write path (parse, encode, incremental inference, publish)
    // without growing the closure, so the rate is comparable across scales.
    let mut next_id = 0usize;
    for _ in 0..WAL_BATCHES {
        let mut batch = String::new();
        for _ in 0..TRIPLES_PER_BATCH {
            batch.push_str(&format!(
                "<http://bench/s{next_id}> <http://bench/linked> <http://bench/o{next_id}> .\n"
            ));
            next_id += 1;
        }
        durable.extend_ntriples(&batch).expect("WAL append");
    }
    let mut replay_open = Duration::MAX;
    for rep in 0..REPS {
        let start = Instant::now();
        let (recovered, report) = DurableDataset::open(
            &dir,
            FRAGMENT,
            InferrayOptions::default(),
            Arc::clone(&backend) as Arc<_>,
            CheckpointPolicy::manual(),
        )
        .expect("replay recovery");
        replay_open = replay_open.min(start.elapsed());
        assert_eq!(report.replayed_records, WAL_BATCHES, "all batches replay");
        if rep == 0 {
            assert_byte_identical(durable.dataset(), recovered.dataset(), "WAL replay");
        }
    }
    let replay_secs = (replay_open - cold_start.min(replay_open)).as_secs_f64();
    let replay_rate = WAL_BATCHES as f64 / replay_secs.max(1e-9);
    println!(
        "wal replay: {:.1} ms open with {WAL_BATCHES} records — {:.0} records/s",
        replay_open.as_secs_f64() * 1e3,
        replay_rate,
    );

    // Keep the encoder honest: the image on disk equals a fresh encode of
    // the live state it claims to capture.
    let reencoded = encode_image(
        &live_dict,
        &live_base,
        live_snapshot.store(),
        live_snapshot.epoch(),
        0,
        FRAGMENT.name(),
    );
    assert_eq!(
        reencoded.len() as u64,
        snapshot_bytes,
        "image size drifted from a fresh encode of the same state"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persistence\",\n",
            "  \"dataset\": {{ \"generator\": \"lubm\", \"target_triples\": {}, ",
            "\"materialized_triples\": {} }},\n",
            "  \"fragment\": \"{}\",\n",
            "  \"reps\": {},\n",
            "  \"full_reload_ms\": {:.3},\n",
            "  \"cold_start_ms\": {:.3},\n",
            "  \"cold_start_speedup\": {:.3},\n",
            "  \"checkpoint_ms\": {:.3},\n",
            "  \"snapshot_bytes\": {},\n",
            "  \"wal_records\": {},\n",
            "  \"wal_replay_open_ms\": {:.3},\n",
            "  \"wal_replay_records_per_s\": {:.1}\n",
            "}}\n",
        ),
        target_triples,
        live_snapshot.store().len(),
        FRAGMENT.name(),
        REPS,
        full_reload.as_secs_f64() * 1e3,
        cold_start.as_secs_f64() * 1e3,
        speedup,
        checkpoint.as_secs_f64() * 1e3,
        snapshot_bytes,
        WAL_BATCHES,
        replay_open.as_secs_f64() * 1e3,
        replay_rate,
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("\nrecorded -> {out_path}");

    let _ = std::fs::remove_dir_all(&dir);
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_persistence.json".to_string())
}

/// Byte-identity through the snapshot encoder: dictionary, base slots,
/// materialized slots and epoch all serialize to the same bytes.
fn assert_byte_identical(expected: &ServingDataset, actual: &ServingDataset, context: &str) {
    let (ed, eb, es) = expected.persistable_state();
    let (ad, ab, as_) = actual.persistable_state();
    let left = encode_image(&ed, &eb, es.store(), es.epoch(), 0, "cmp");
    let right = encode_image(&ad, &ab, as_.store(), as_.epoch(), 0, "cmp");
    assert!(
        left == right,
        "{context}: recovered state is not byte-identical"
    );
}
