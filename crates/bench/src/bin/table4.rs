//! Table 4 — transitivity-closure time (milliseconds) on `rdfs:subClassOf`
//! chains of increasing length, for each reasoner, plus the dedicated-stage
//! ablation (Inferray with the up-front Nuutila stage disabled).
//!
//! ```text
//! cargo run -p inferray-bench --release --bin table4 [--scale N] [--skip-naive]
//! ```
//!
//! The paper's chains go from 100 to 25,000 nodes (the longest closes to
//! ~312 M triples and needs 16 GB); the scaled default covers 50 to 1,250
//! nodes, which already separates the approaches by orders of magnitude.

use inferray_baselines::{HashJoinReasoner, NaiveIterativeReasoner};
use inferray_bench::{fmt_ms, print_table, run_materializer, ScaleConfig};
use inferray_core::{InferrayOptions, InferrayReasoner};
use inferray_datasets::{chain, Dataset};
use inferray_rules::{Fragment, Ruleset};

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Table 4 — transitivity closure of subClassOf chains, time in milliseconds");
    println!("(paper chain lengths divided by {})", scale.divisor);

    let paper_lengths = [100usize, 500, 1_000, 2_500, 5_000, 10_000, 25_000];
    let lengths: Vec<usize> = paper_lengths.iter().map(|&l| scale.chain(l)).collect();

    let mut header = vec![
        "chain length",
        "closure triples",
        "inferray",
        "inferray (no closure stage)",
        "hash-join",
    ];
    if !scale.skip_naive {
        header.push("naive-iterative");
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &length in &lengths {
        let dataset = Dataset::new(format!("chain-{length}"), chain::subclass_chain(length));
        let expected = chain::closure_size(length);
        let mut row = vec![length.to_string(), expected.to_string()];

        // Inferray with the dedicated closure stage (the paper's system).
        let mut inferray = InferrayReasoner::new(Fragment::RhoDf);
        let result = run_materializer(&mut inferray, &dataset);
        assert_eq!(result.output_triples, expected, "closure must be exact");
        row.push(fmt_ms(result.inference_ms));

        // Ablation: same engine, θ rules only inside the fixed point.
        let mut ablated = InferrayReasoner::with_ruleset(
            Ruleset::for_fragment(Fragment::RhoDf),
            InferrayOptions::without_closure_stage(),
        );
        let result = run_materializer(&mut ablated, &dataset);
        row.push(fmt_ms(result.inference_ms));

        // Hash-join baseline (iterative rule application, RDFox-style).
        let mut hash = HashJoinReasoner::new(Fragment::RhoDf);
        let result = run_materializer(&mut hash, &dataset);
        assert_eq!(result.output_triples, expected);
        row.push(fmt_ms(result.inference_ms));

        // Naive baseline (OWLIM-style full re-derivation).
        if !scale.skip_naive {
            let mut naive = NaiveIterativeReasoner::new(Fragment::RhoDf);
            let result = run_materializer(&mut naive, &dataset);
            row.push(fmt_ms(result.inference_ms));
        }
        rows.push(row);
    }
    print_table("Table 4 (ms)", &header, &rows);
}
