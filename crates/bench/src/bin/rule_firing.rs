//! The rule-firing benchmark: measures the §4.3 rule-dependency scheduler
//! against the fire-everything loop and records the result in
//! `BENCH_rule_firing.json` so future PRs can track the trajectory.
//!
//! Two variants materialize the **same** LUBM-scale dataset with the same
//! reasoner:
//!
//! * `full`      — every rule of the ruleset fires on every iteration
//!   (`InferrayOptions::unscheduled()`, the pre-scheduler behaviour);
//! * `scheduled` — from iteration 2 on, only the rules whose input tables
//!   received new pairs in the previous iteration fire
//!   (`InferrayOptions::default()`).
//!
//! Both run the *exact* reasoner loop (the scheduler is a reasoner option,
//! not a benchmark-side reimplementation), and the resulting stores are
//! asserted byte-identical before anything is recorded. The JSON captures
//! per-fragment rule firings, the firing reduction, and min-of-reps
//! wall-clock times.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin rule_firing [--scale N] [--out FILE]
//! ```

use inferray_bench::ScaleConfig;
use inferray_core::{InferrayOptions, InferrayReasoner, Materializer};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::loader::load_triples;
use inferray_rules::Fragment;
use inferray_store::TripleStore;
use std::time::{Duration, Instant};

const REPS: usize = 5;

struct FragmentRecord {
    fragment: &'static str,
    iterations: usize,
    firings_full: usize,
    firings_scheduled: usize,
    reduction: f64,
    full_ms: f64,
    scheduled_ms: f64,
}

fn main() {
    let scale = ScaleConfig::from_env();
    let out_path = out_path_from_args();
    let target_triples = 200_000 / scale.divisor;

    println!("rule_firing — §4.3 dependency-scheduler benchmark (LUBM ~{target_triples} triples)");

    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
    let base_store: TripleStore = loaded.store;
    println!(
        "store: {} pairs over {} tables",
        base_store.len(),
        base_store.table_count()
    );

    let mut records = Vec::new();
    for fragment in [Fragment::RdfsDefault, Fragment::RdfsPlus] {
        let record = run_fragment(fragment, &base_store);
        println!(
            "{:<14} firings {:>4} -> {:>4} (-{:.1}%), wall {:>9.3} ms -> {:>9.3} ms over {} iterations",
            record.fragment,
            record.firings_full,
            record.firings_scheduled,
            100.0 * record.reduction,
            record.full_ms,
            record.scheduled_ms,
            record.iterations,
        );
        records.push(record);
    }

    let total_full: usize = records.iter().map(|r| r.firings_full).sum();
    let total_scheduled: usize = records.iter().map(|r| r.firings_scheduled).sum();
    let overall = 1.0 - total_scheduled as f64 / total_full.max(1) as f64;
    println!(
        "overall: {total_full} -> {total_scheduled} rule firings (-{:.1}%)",
        100.0 * overall
    );

    let json = render_json(target_triples, &base_store, &records, overall);
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("\nrecorded -> {out_path}");
}

fn run_fragment(fragment: Fragment, base_store: &TripleStore) -> FragmentRecord {
    // Interleave repetitions of the two variants and keep each one's
    // minimum (single-shot timings are noisy on a shared box).
    let mut full_time = Duration::MAX;
    let mut scheduled_time = Duration::MAX;
    let mut full_store = base_store.clone();
    let mut scheduled_store = base_store.clone();
    let mut firings_full = 0usize;
    let mut firings_scheduled = 0usize;
    let mut iterations = 0usize;
    // One untimed warm-up of each variant: the very first materialization
    // in a process pays page-fault and frequency-ramp costs that would
    // otherwise be charged to whichever variant happens to run first.
    for options in [InferrayOptions::unscheduled(), InferrayOptions::default()] {
        let mut store = base_store.clone();
        InferrayReasoner::with_options(fragment, options).materialize(&mut store);
    }
    for rep in 0..REPS {
        let mut store = base_store.clone();
        let mut reasoner = InferrayReasoner::with_options(fragment, InferrayOptions::unscheduled());
        let start = Instant::now();
        reasoner.materialize(&mut store);
        full_time = full_time.min(start.elapsed());
        if rep == REPS - 1 {
            firings_full = reasoner.last_iteration_profile().total_rules_fired();
            full_store = store;
        }

        let mut store = base_store.clone();
        let mut reasoner = InferrayReasoner::new(fragment);
        let start = Instant::now();
        let stats = reasoner.materialize(&mut store);
        scheduled_time = scheduled_time.min(start.elapsed());
        if rep == REPS - 1 {
            let profile = reasoner.last_iteration_profile();
            firings_scheduled = profile.total_rules_fired();
            assert_eq!(
                firings_scheduled + profile.total_rules_skipped(),
                firings_full,
                "fired + skipped must cover the full schedule"
            );
            iterations = stats.iterations;
            scheduled_store = store;
            print!("{}", profile.report());
        }
    }

    // The scheduler must not change the result — this is the §4.3 contract.
    assert_stores_equal(&full_store, &scheduled_store, fragment.name());

    FragmentRecord {
        fragment: fragment.name(),
        iterations,
        firings_full,
        firings_scheduled,
        reduction: 1.0 - firings_scheduled as f64 / firings_full.max(1) as f64,
        full_ms: full_time.as_secs_f64() * 1e3,
        scheduled_ms: scheduled_time.as_secs_f64() * 1e3,
    }
}

fn render_json(
    target_triples: usize,
    base_store: &TripleStore,
    records: &[FragmentRecord],
    overall_reduction: f64,
) -> String {
    use std::fmt::Write as _;
    let mut fragments = String::new();
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            fragments,
            concat!(
                "    {{\n",
                "      \"fragment\": \"{}\",\n",
                "      \"iterations\": {},\n",
                "      \"rule_firings_full\": {},\n",
                "      \"rule_firings_scheduled\": {},\n",
                "      \"firing_reduction\": {:.3},\n",
                "      \"full_ms\": {:.3},\n",
                "      \"scheduled_ms\": {:.3},\n",
                "      \"wall_clock_speedup\": {:.3}\n",
                "    }}{}\n",
            ),
            r.fragment,
            r.iterations,
            r.firings_full,
            r.firings_scheduled,
            r.reduction,
            r.full_ms,
            r.scheduled_ms,
            r.full_ms / r.scheduled_ms.max(1e-9),
            if i + 1 == records.len() { "" } else { "," },
        );
    }
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"rule_firing\",\n",
            "  \"dataset\": {{ \"generator\": \"lubm\", \"target_triples\": {}, \"main_pairs\": {}, \"tables\": {} }},\n",
            "  \"overall_firing_reduction\": {:.3},\n",
            "  \"fragments\": [\n{}  ]\n",
            "}}\n",
        ),
        target_triples,
        base_store.len(),
        base_store.table_count(),
        overall_reduction,
        fragments,
    )
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_rule_firing.json".to_string())
}

fn assert_stores_equal(expected: &TripleStore, actual: &TripleStore, label: &str) {
    assert_eq!(
        expected.len(),
        actual.len(),
        "{label}: triple count diverged"
    );
    for (p, table) in expected.iter_tables() {
        let other = actual
            .table(p)
            .unwrap_or_else(|| panic!("{label}: table {p} missing"));
        assert_eq!(table.pairs(), other.pairs(), "{label}: table {p} diverged");
    }
}
