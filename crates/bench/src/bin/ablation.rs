//! Ablation study of Inferray's design choices (extension; not a paper
//! table).
//!
//! DESIGN.md calls out three load-bearing decisions: the dedicated
//! transitive-closure stage (§4.1), the per-rule parallel execution (§4.3)
//! and the sorted vertical-partitioning layout itself (quantified separately
//! by Tables 2–4 against the hash-join baseline). This binary measures the
//! first two by toggling them independently on three representative
//! workloads:
//!
//! * a `subClassOf` chain — the closure-heavy workload of Table 4;
//! * a BSBM-like dataset under RDFS-default — the join-heavy workload of
//!   Table 2;
//! * a LUBM-like dataset under RDFS-Plus — the rule-heavy workload of
//!   Table 3.
//!
//! ```text
//! cargo run -p inferray-bench --release --bin ablation [--scale N]
//! ```

use inferray_bench::{fmt_ms, print_table, run_materializer, ScaleConfig};
use inferray_core::{InferrayOptions, InferrayReasoner};
use inferray_datasets::{subclass_chain, BsbmGenerator, Dataset, LubmGenerator};
use inferray_rules::Fragment;

/// The configurations under study, in display order.
fn configurations() -> Vec<(&'static str, InferrayOptions)> {
    let default = InferrayOptions::default();
    vec![
        ("full (parallel + closure stage)", default),
        (
            "sequential rules",
            InferrayOptions {
                parallel: false,
                ..default
            },
        ),
        (
            "no dedicated closure stage",
            InferrayOptions {
                skip_closure_stage: true,
                ..default
            },
        ),
        (
            "no rule scheduling (fire all rules)",
            InferrayOptions {
                schedule_rules: false,
                ..default
            },
        ),
        (
            "sequential + no closure stage",
            InferrayOptions {
                parallel: false,
                skip_closure_stage: true,
                ..default
            },
        ),
    ]
}

fn workloads(scale: &ScaleConfig) -> Vec<(Fragment, Dataset)> {
    let chain_length = scale.chain(2_500);
    vec![
        (
            Fragment::RhoDf,
            Dataset::new(
                format!("chain-{chain_length}"),
                subclass_chain(chain_length),
            ),
        ),
        (
            Fragment::RdfsDefault,
            BsbmGenerator::new(scale.triples(5_000_000)).generate(),
        ),
        (
            Fragment::RdfsPlus,
            LubmGenerator::new(scale.triples(5_000_000)).generate(),
        ),
    ]
}

fn main() {
    let scale = ScaleConfig::from_env();
    println!("Ablation — Inferray design choices (execution time in milliseconds)");
    println!("(paper dataset sizes divided by {})", scale.divisor);

    let header = vec![
        "fragment",
        "dataset",
        "configuration",
        "ms",
        "iterations",
        "inferred",
        "slowdown",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (fragment, dataset) in workloads(&scale) {
        let mut baseline_ms = None;
        for (label, options) in configurations() {
            let mut engine = InferrayReasoner::with_options(fragment, options);
            let result = run_materializer(&mut engine, &dataset);
            let baseline = *baseline_ms.get_or_insert(result.inference_ms);
            let slowdown = if baseline > 0.0 {
                result.inference_ms / baseline
            } else {
                1.0
            };
            rows.push(vec![
                fragment.to_string(),
                dataset.label.clone(),
                label.to_string(),
                fmt_ms(result.inference_ms),
                result.stats.iterations.to_string(),
                result.stats.inferred_triples().to_string(),
                format!("{slowdown:.2}x"),
            ]);
        }
    }
    print_table(
        "Ablation (ms, slowdown relative to the full configuration)",
        &header,
        &rows,
    );
}
