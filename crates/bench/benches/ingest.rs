//! Criterion micro-benchmarks for the streaming ingest pipeline: the
//! seed-shaped two-pass load (`parse_ntriples` into `Vec<Triple>` +
//! `load_triples`) against the chunked zero-copy pipeline, sequential and
//! parallel, on a LUBM-shaped document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::{load_triples, parse_ntriples, Ingest, LoaderOptions};
use std::hint::black_box;

const TARGET_TRIPLES: usize = 20_000;

fn bench_ingest(c: &mut Criterion) {
    let document = LubmGenerator::new(TARGET_TRIPLES)
        .with_seed(42)
        .generate()
        .to_ntriples();
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Bytes(document.len() as u64));

    group.bench_function(BenchmarkId::new("two-pass-seed", TARGET_TRIPLES), |b| {
        b.iter(|| {
            let triples = parse_ntriples(black_box(&document)).expect("valid");
            black_box(load_triples(triples).expect("valid"))
        })
    });

    let sequential = Ingest::with_options(LoaderOptions::sequential());
    group.bench_function(BenchmarkId::new("ingest-sequential", TARGET_TRIPLES), |b| {
        b.iter(|| black_box(sequential.ntriples(black_box(&document)).expect("valid")))
    });

    let parallel = Ingest::new();
    group.bench_function(BenchmarkId::new("ingest-parallel", TARGET_TRIPLES), |b| {
        b.iter(|| black_box(parallel.ntriples(black_box(&document)).expect("valid")))
    });

    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
