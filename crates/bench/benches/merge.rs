//! Criterion micro-benchmarks for the per-iteration property-table update
//! (Figure 5): sort + dedup of the inferred pairs and the linear merge into
//! the main table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_store::{merge_new_pairs, PropertyTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pairs(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let base = 1u64 << 32;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * n).map(|_| base + rng.gen_range(0..range)).collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5-merge");
    group.sample_size(10);
    for (main_size, inferred_size) in [(100_000usize, 10_000usize), (100_000, 100_000)] {
        group.throughput(Throughput::Elements((main_size + inferred_size) as u64));
        let main_pairs = random_pairs(main_size, 50_000, 1);
        let inferred = random_pairs(inferred_size, 50_000, 2);
        group.bench_function(
            BenchmarkId::new("merge", format!("{main_size}+{inferred_size}")),
            |b| {
                b.iter(|| {
                    let mut main = PropertyTable::from_pairs(main_pairs.clone());
                    let (new, outcome) = merge_new_pairs(&mut main, inferred.clone());
                    black_box((new.len(), outcome.new_pairs))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
