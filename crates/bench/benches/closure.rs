//! Criterion micro-benchmarks for the transitive-closure implementations
//! (Table 4 / section 4.1): Nuutila with interval sets vs. the semi-naive
//! iterative closure, on chains and on random DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inferray_closure::{iterative_closure, transitive_closure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn chain_edges(n: u64) -> Vec<(u64, u64)> {
    (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect()
}

fn random_dag(nodes: u64, edges: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..edges)
        .map(|_| {
            let a = rng.gen_range(0..nodes - 1);
            let b = rng.gen_range(a + 1..nodes);
            (a, b)
        })
        .collect()
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/chain");
    group.sample_size(10);
    for length in [200u64, 500, 1_000] {
        let edges = chain_edges(length);
        group.bench_function(BenchmarkId::new("nuutila", length), |b| {
            b.iter(|| black_box(transitive_closure(black_box(&edges)).len()))
        });
        group.bench_function(BenchmarkId::new("iterative", length), |b| {
            b.iter(|| black_box(iterative_closure(black_box(&edges)).0.len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("closure/random-dag");
    group.sample_size(10);
    let edges = random_dag(2_000, 6_000, 3);
    group.bench_function("nuutila", |b| {
        b.iter(|| black_box(transitive_closure(black_box(&edges)).len()))
    });
    group.bench_function("iterative", |b| {
        b.iter(|| black_box(iterative_closure(black_box(&edges)).0.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
