//! Criterion benchmarks for the snapshot-isolated serving layer: snapshot
//! acquisition, single-reader mix execution, pooled batch execution, and
//! the writer's copy-on-write publish — the four costs behind
//! `inferray-cli serve` (see the `query_serving` binary for the recorded
//! multi-thread scaling runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_core::InferrayReasoner;
use inferray_datasets::lubm::LubmGenerator;
use inferray_model::IdTriple;
use inferray_parallel::ThreadPool;
use inferray_parser::loader::load_triples;
use inferray_query::{parse_query, Query, SnapshotQueryEngine};
use inferray_rules::{Fragment, Materializer};
use inferray_store::SnapshotStore;
use std::hint::black_box;
use std::sync::Arc;

const LUBM: &str = "http://inferray.example.org/lubm/";

fn mix() -> Vec<Query> {
    [
        format!("PREFIX ub: <{LUBM}> SELECT ?x WHERE {{ ?x a ub:Professor }}"),
        format!("PREFIX ub: <{LUBM}> ASK {{ ub:Professor0 a ub:Person }}"),
        format!("PREFIX ub: <{LUBM}> SELECT ?s WHERE {{ ?s ub:worksFor ub:Department0 }}"),
        format!(
            "PREFIX ub: <{LUBM}> SELECT ?s ?u WHERE {{ ?s ub:worksFor ?d . ?d ub:subOrganizationOf ?u }} LIMIT 100"
        ),
    ]
    .iter()
    .map(|text| parse_query(text).expect("mix query parses"))
    .collect()
}

fn bench_query_serving(c: &mut Criterion) {
    let dataset = LubmGenerator::new(20_000).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("valid dataset");
    let mut store = loaded.store;
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut store);
    let snapshots = Arc::new(SnapshotStore::new(store));
    let dictionary = Arc::new(loaded.dictionary);
    let engine = SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary));
    let queries = mix();

    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.throughput(Throughput::Elements(queries.len() as u64));

    group.bench_function("snapshot-acquire", |b| {
        b.iter(|| black_box(snapshots.snapshot().epoch()))
    });

    group.bench_function(BenchmarkId::new("mix", "single-reader"), |b| {
        b.iter(|| {
            for query in &queries {
                black_box(engine.execute(query).len());
            }
        })
    });

    let pool = ThreadPool::new(2);
    let batch: Vec<Query> = (0..8).flat_map(|_| mix()).collect();
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function(BenchmarkId::new("mix", "batch-pool-2"), |b| {
        b.iter(|| black_box(engine.execute_queries_on(&pool, &batch).len()))
    });

    // The writer path: clone the current epoch, append a small delta,
    // finalize + rebuild caches, publish. This is the cost a serving
    // deployment pays per incremental update.
    group.throughput(Throughput::Elements(1));
    group.bench_function("publish-small-delta", |b| {
        let p = inferray_model::ids::nth_property_id(1);
        let mut next = 0u64;
        b.iter(|| {
            next += 1;
            let (snapshot, ()) = snapshots.update(|store| {
                store.add_triple(IdTriple::new(3_000_000_000 + next, p, 42));
            });
            black_box(snapshot.epoch())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_query_serving);
criterion_main!(benches);
