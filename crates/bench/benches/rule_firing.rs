//! Criterion micro-benchmark for the §4.3 rule-dependency scheduler: a full
//! LUBM materialization with every rule firing on every iteration
//! (`unscheduled`) against the delta-driven schedule (`scheduled`), for the
//! two fragments whose rule counts differ most. The stores produced by the
//! two paths are byte-identical (pinned by the `rule_scheduling` equivalence
//! suite); only the wasted firings differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_core::{InferrayOptions, InferrayReasoner, Materializer};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::loader::load_triples;
use inferray_rules::Fragment;
use inferray_store::TripleStore;
use std::hint::black_box;

fn lubm_store(target_triples: usize) -> TripleStore {
    let dataset = LubmGenerator::new(target_triples).with_seed(42).generate();
    load_triples(dataset.triples.iter())
        .expect("generated dataset is valid")
        .store
}

fn bench_rule_firing(c: &mut Criterion) {
    let base = lubm_store(20_000);
    let mut group = c.benchmark_group("rule-firing");
    group.sample_size(10);
    group.throughput(Throughput::Elements(base.len() as u64));

    for fragment in [Fragment::RdfsDefault, Fragment::RdfsPlus] {
        group.bench_function(BenchmarkId::new("unscheduled", fragment.name()), |b| {
            b.iter(|| {
                let mut store = base.clone();
                let mut reasoner =
                    InferrayReasoner::with_options(fragment, InferrayOptions::unscheduled());
                let stats = reasoner.materialize(&mut store);
                black_box(stats.output_triples)
            })
        });
        group.bench_function(BenchmarkId::new("scheduled", fragment.name()), |b| {
            b.iter(|| {
                let mut store = base.clone();
                let mut reasoner = InferrayReasoner::new(fragment);
                let stats = reasoner.materialize(&mut store);
                black_box(stats.output_triples)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rule_firing);
criterion_main!(benches);
