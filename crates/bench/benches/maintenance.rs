//! Criterion benchmarks for incremental maintenance: asserting and
//! retracting small deltas against a LUBM-scale materialized store, with
//! the full rebuild as the baseline retraction would otherwise pay (paper
//! §1: forward chaining "requires full materialization after deletion" —
//! the delete–rederive path of docs/maintenance.md is the answer; see the
//! `maintenance` binary for the recorded delta-size sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_bench::{instance_victims, strided_delta};
use inferray_core::InferrayReasoner;
use inferray_datasets::lubm::LubmGenerator;
use inferray_model::IdTriple;
use inferray_parser::loader::load_triples;
use inferray_rules::{Fragment, Materializer};
use inferray_store::TripleStore;
use std::hint::black_box;

fn bench_maintenance(c: &mut Criterion) {
    let dataset = LubmGenerator::new(20_000).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("valid dataset");
    let mut base = loaded.store;
    base.finalize();
    let mut materialized = base.clone();
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut materialized);

    // The shared instance-churn workload definition (same population the
    // `maintenance` binary records in BENCH_maintenance.json).
    let victims: Vec<IdTriple> = instance_victims(&base);

    let mut group = c.benchmark_group("maintenance");
    group.sample_size(10);

    for &size in &[16usize, 256] {
        let delta = strided_delta(&victims, size);
        group.throughput(Throughput::Elements(size as u64));

        group.bench_function(BenchmarkId::new("retract", size), |b| {
            b.iter(|| {
                let mut store = materialized.clone();
                let mut base_copy = base.clone();
                let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
                black_box(reasoner.retract_delta(&mut store, &mut base_copy, delta.iter().copied()))
            })
        });

        group.bench_function(BenchmarkId::new("rebuild", size), |b| {
            let removed: std::collections::BTreeSet<IdTriple> = delta.iter().copied().collect();
            let remaining: Vec<IdTriple> = base
                .iter_triples()
                .filter(|t| !removed.contains(t))
                .collect();
            b.iter(|| {
                let mut store = TripleStore::from_triples(remaining.iter().copied());
                black_box(InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut store))
            })
        });

        group.bench_function(BenchmarkId::new("retract-then-extend", size), |b| {
            b.iter(|| {
                let mut store = materialized.clone();
                let mut base_copy = base.clone();
                let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
                reasoner.retract_delta(&mut store, &mut base_copy, delta.iter().copied());
                black_box(reasoner.materialize_delta(&mut store, delta.iter().copied()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
