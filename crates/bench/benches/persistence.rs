//! Criterion benchmarks for the persistence subsystem (docs/persistence.md):
//! snapshot encode/decode throughput, a full cold-start recovery, and the
//! per-batch WAL append the serving write path pays before every publish
//! (see the `persistence` binary for the recorded LUBM-scale sweep).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use inferray_core::{Fragment, InferrayOptions, ServingDataset};
use inferray_datasets::lubm::LubmGenerator;
use inferray_parser::loader::load_triples;
use inferray_persist::{
    decode_image, encode_image, wal, CheckpointPolicy, DurableDataset, IoBackend, MemFs,
};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;

fn bench_persistence(c: &mut Criterion) {
    let dataset = LubmGenerator::new(20_000).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("valid dataset");
    let (serving, _) =
        ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
    let (dictionary, base, snapshot) = serving.persistable_state();
    let image = encode_image(
        &dictionary,
        &base,
        snapshot.store(),
        snapshot.epoch(),
        0,
        Fragment::RdfsDefault.name(),
    );

    // A durable dataset on the in-memory backend, so recovery timings
    // measure validation + reconstruction rather than disk latency.
    let fs = Arc::new(MemFs::new());
    let dataset = LubmGenerator::new(20_000).with_seed(42).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("valid dataset");
    let (_durable, _) = DurableDataset::create(
        loaded,
        Fragment::RdfsDefault,
        InferrayOptions::default(),
        "data",
        Arc::clone(&fs) as Arc<_>,
        CheckpointPolicy::manual(),
    )
    .expect("initial snapshot");
    let view = fs.durable_view();

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(image.len() as u64));

    group.bench_function("encode-image", |b| {
        b.iter(|| {
            black_box(encode_image(
                &dictionary,
                &base,
                snapshot.store(),
                snapshot.epoch(),
                0,
                Fragment::RdfsDefault.name(),
            ))
        })
    });

    group.bench_function("decode-image", |b| {
        b.iter(|| black_box(decode_image(&image).expect("image decodes")))
    });

    group.bench_function("cold-start-open", |b| {
        b.iter(|| {
            let backend = Arc::new(MemFs::from_view(view.clone()));
            black_box(
                DurableDataset::open(
                    "data",
                    Fragment::RdfsDefault,
                    InferrayOptions::default(),
                    backend,
                    CheckpointPolicy::manual(),
                )
                .expect("recovery"),
            )
        })
    });

    let batch = (0..5)
        .map(|i| format!("<http://bench/s{i}> <http://bench/p> <http://bench/o{i}> .\n"))
        .collect::<String>();
    group.throughput(Throughput::Elements(1));
    group.bench_function("wal-append-batch", |b| {
        let fs = MemFs::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let record = wal::encode_record(seq, wal::WalKind::Assert, &batch);
            fs.append_durable(Path::new("wal.log"), &record)
                .expect("append");
            black_box(record.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
