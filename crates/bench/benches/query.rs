//! Criterion benchmarks for the BGP query engine (extension; companion of
//! the forward-vs-backward binary): point lookups, type scans and two-hop
//! joins over a materialized store, plus the same type query answered by the
//! backward chainer for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_baselines::BackwardChainer;
use inferray_core::InferrayReasoner;
use inferray_dictionary::wellknown;
use inferray_model::Graph;
use inferray_parser::loader::load_graph;
use inferray_query::QueryEngine;
use inferray_rules::{Fragment, Materializer};
use inferray_store::TriplePattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const PERSONS: usize = 4_000;
const KNOWS_EDGES: usize = 12_000;

fn person(i: usize) -> String {
    format!("http://bench.example/person{i}")
}

/// A social-network-shaped dataset: a small class hierarchy, typed persons
/// and a dense `knows` graph.
fn social_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(42);
    let mut graph = Graph::new();
    let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    let sub_class_of = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    graph.insert_iris(
        "http://bench.example/Employee",
        sub_class_of,
        "http://bench.example/Person",
    );
    graph.insert_iris(
        "http://bench.example/Manager",
        sub_class_of,
        "http://bench.example/Employee",
    );
    graph.insert_iris(
        "http://bench.example/knows",
        "http://www.w3.org/2000/01/rdf-schema#domain",
        "http://bench.example/Person",
    );
    for i in 0..PERSONS {
        let class = match i % 10 {
            0 => "http://bench.example/Manager",
            1..=4 => "http://bench.example/Employee",
            _ => "http://bench.example/Person",
        };
        graph.insert_iris(person(i), rdf_type, class);
    }
    for _ in 0..KNOWS_EDGES {
        let a = rng.gen_range(0..PERSONS);
        let b = rng.gen_range(0..PERSONS);
        graph.insert_iris(person(a), "http://bench.example/knows", person(b));
    }
    graph
}

fn bench_query(c: &mut Criterion) {
    let graph = social_graph();
    let mut dataset = load_graph(&graph).expect("valid graph");
    let unmaterialized = dataset.store.clone();
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut dataset.store);
    dataset.store.ensure_all_os();
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

    let ask = "PREFIX b: <http://bench.example/> ASK { b:person1 b:knows ?x }";
    let type_scan = "PREFIX b: <http://bench.example/> SELECT ?x WHERE { ?x a b:Person }";
    let two_hop = "PREFIX b: <http://bench.example/> \
                   SELECT ?a ?c WHERE { ?a b:knows ?b . ?b b:knows ?c . ?a a b:Manager }";

    let mut group = c.benchmark_group("query/materialized");
    group.sample_size(20);
    group.throughput(Throughput::Elements(dataset.store.len() as u64));
    group.bench_function(BenchmarkId::new("ask", "point"), |b| {
        b.iter(|| black_box(engine.ask_sparql(ask).unwrap()))
    });
    group.bench_function(BenchmarkId::new("select", "type-scan"), |b| {
        b.iter(|| black_box(engine.execute_sparql(type_scan).unwrap().len()))
    });
    group.bench_function(BenchmarkId::new("select", "two-hop-join"), |b| {
        b.iter(|| black_box(engine.execute_sparql(two_hop).unwrap().len()))
    });
    group.finish();

    // The same instance-type workload, forward (materialized lookup) vs
    // backward (query-time rewriting) — the micro version of the
    // backward_vs_forward binary.
    let person_class = dataset
        .dictionary
        .id_of_iri("http://bench.example/Person")
        .expect("class is in the dictionary");
    let pattern = TriplePattern::any()
        .with_p(wellknown::RDF_TYPE)
        .with_o(person_class);
    let chainer = BackwardChainer::new(&unmaterialized);

    let mut group = c.benchmark_group("query/type-of-person");
    group.sample_size(20);
    group.bench_function("forward-lookup", |b| {
        b.iter(|| black_box(dataset.store.match_pattern(pattern).len()))
    });
    group.bench_function("backward-rewrite", |b| {
        b.iter(|| black_box(chainer.match_pattern(pattern).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
