//! Criterion end-to-end inference benchmarks: Inferray vs. the baselines on
//! small BSBM-like (RDFS) and LUBM-like (RDFS-Plus) workloads — the
//! micro-benchmark companions of Tables 2 and 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_baselines::{HashJoinReasoner, NaiveIterativeReasoner};
use inferray_core::InferrayReasoner;
use inferray_datasets::{BsbmGenerator, LubmGenerator};
use inferray_parser::loader::load_triples;
use inferray_rules::{Fragment, Materializer};
use inferray_store::TripleStore;
use std::hint::black_box;

fn encode(triples: &[inferray_model::Triple]) -> TripleStore {
    load_triples(triples.iter()).expect("valid dataset").store
}

fn bench_inference(c: &mut Criterion) {
    let bsbm = BsbmGenerator::new(20_000).generate();
    let lubm = LubmGenerator::new(20_000).generate();
    let bsbm_store = encode(&bsbm.triples);
    let lubm_store = encode(&lubm.triples);

    let mut group = c.benchmark_group("inference/rdfs-default-bsbm20k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(bsbm_store.len() as u64));
    group.bench_function(BenchmarkId::new("inferray", "bsbm"), |b| {
        b.iter(|| {
            let mut store = bsbm_store.clone();
            let stats = InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut store);
            black_box(stats.output_triples)
        })
    });
    group.bench_function(BenchmarkId::new("hash-join", "bsbm"), |b| {
        b.iter(|| {
            let mut store = bsbm_store.clone();
            let stats = HashJoinReasoner::new(Fragment::RdfsDefault).materialize(&mut store);
            black_box(stats.output_triples)
        })
    });
    group.bench_function(BenchmarkId::new("naive-iterative", "bsbm"), |b| {
        b.iter(|| {
            let mut store = bsbm_store.clone();
            let stats = NaiveIterativeReasoner::new(Fragment::RdfsDefault).materialize(&mut store);
            black_box(stats.output_triples)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("inference/rdfs-plus-lubm20k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(lubm_store.len() as u64));
    group.bench_function(BenchmarkId::new("inferray", "lubm"), |b| {
        b.iter(|| {
            let mut store = lubm_store.clone();
            let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut store);
            black_box(stats.output_triples)
        })
    });
    group.bench_function(BenchmarkId::new("hash-join", "lubm"), |b| {
        b.iter(|| {
            let mut store = lubm_store.clone();
            let stats = HashJoinReasoner::new(Fragment::RdfsPlus).materialize(&mut store);
            black_box(stats.output_triples)
        })
    });
    group.bench_function(BenchmarkId::new("naive-iterative", "lubm"), |b| {
        b.iter(|| {
            let mut store = lubm_store.clone();
            let stats = NaiveIterativeReasoner::new(Fragment::RdfsPlus).materialize(&mut store);
            black_box(stats.output_triples)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
