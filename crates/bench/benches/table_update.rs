//! Criterion micro-benchmarks for the redesigned table-update stage: the
//! seed's always-rebuild merge (`merge_new_pairs_rebuild`) against the
//! adaptive merge (`merge_new_pairs_with` + reused `SortScratch`) in the
//! regimes the fixed-point loop actually visits:
//!
//! * `steady-small-delta` — a shrinking frontier against a large main table
//!   (the dominant regime after iteration 2);
//! * `all-duplicate`      — the delta derives nothing new (the final
//!   iteration of every fixed point);
//! * `tail-append`        — the delta sorts after the whole main table;
//! * `iteration1-bulk`    — delta comparable to main (both paths rebuild).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_sort::SortScratch;
use inferray_store::{merge_new_pairs_rebuild, merge_new_pairs_with, PropertyTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const MAIN_PAIRS: usize = 100_000;

fn main_table() -> PropertyTable {
    let base = 1u64 << 32;
    // Dense but not contiguous: every third id, objects over a small range.
    PropertyTable::from_pairs(
        (0..MAIN_PAIRS as u64)
            .flat_map(|i| [base + 3 * i, (i * 7) % 1_000])
            .collect(),
    )
}

/// A delta of `fresh` new pairs and `dups` pairs already present in main.
fn delta(fresh: usize, dups: usize, seed: u64) -> Vec<u64> {
    let base = 1u64 << 32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(2 * (fresh + dups));
    for _ in 0..fresh {
        // Odd offsets never collide with the 3·i subjects of main.
        let i = rng.gen_range(0..MAIN_PAIRS as u64);
        out.extend_from_slice(&[base + 3 * i + 1, i % 1_000]);
    }
    for _ in 0..dups {
        let i = rng.gen_range(0..MAIN_PAIRS as u64);
        out.extend_from_slice(&[base + 3 * i, (i * 7) % 1_000]);
    }
    out
}

fn tail_delta(fresh: usize) -> Vec<u64> {
    let base = (1u64 << 32) + 3 * MAIN_PAIRS as u64 + 10;
    (0..fresh as u64).flat_map(|i| [base + i, i % 50]).collect()
}

fn bench_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    main: &PropertyTable,
    delta: &[u64],
) {
    group.throughput(Throughput::Elements((main.len() + delta.len() / 2) as u64));
    group.bench_function(BenchmarkId::new("seed-rebuild", label), |b| {
        b.iter(|| {
            let mut table = main.clone();
            let (new, outcome) = merge_new_pairs_rebuild(&mut table, delta.to_vec());
            black_box((new.len(), outcome.new_pairs))
        })
    });
    let mut scratch = SortScratch::new();
    group.bench_function(BenchmarkId::new("adaptive", label), |b| {
        b.iter(|| {
            let mut table = main.clone();
            let (new, outcome) = merge_new_pairs_with(&mut table, delta.to_vec(), &mut scratch);
            black_box((new.len(), outcome.new_pairs))
        })
    });
}

fn bench_table_update(c: &mut Criterion) {
    let main = main_table();
    let mut group = c.benchmark_group("table-update");
    group.sample_size(10);

    bench_pair(&mut group, "steady-small-delta", &main, &delta(256, 256, 1));
    bench_pair(&mut group, "all-duplicate", &main, &delta(0, 512, 2));
    bench_pair(&mut group, "tail-append", &main, &tail_delta(512));
    bench_pair(
        &mut group,
        "iteration1-bulk",
        &main,
        &delta(MAIN_PAIRS / 2, MAIN_PAIRS / 2, 3),
    );
    group.finish();
}

criterion_group!(benches, bench_table_update);
criterion_main!(benches);
