//! Criterion micro-benchmarks for the pair-sorting kernels (Table 1 /
//! section 5 of the paper): counting sort, adaptive MSD radix and the
//! generic baselines, in the dense and sparse operating regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inferray_sort::baseline::{merge_sort_pairs, quick_sort_pairs, std_sort_pairs};
use inferray_sort::{counting_sort_pairs, msda_radix_sort_pairs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pairs(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let base = 1u64 << 32;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * n).map(|_| base + rng.gen_range(0..range)).collect()
}

fn bench_sorting(c: &mut Criterion) {
    // Dense regime (size > range): counting sort's home turf.
    // Sparse regime (range > size): the radix kernel's home turf.
    let cases = [
        ("dense", 200_000usize, 20_000u64),
        ("sparse", 50_000usize, 10_000_000u64),
    ];
    for (regime, size, range) in cases {
        let mut group = c.benchmark_group(format!("sort-pairs/{regime}"));
        group.throughput(Throughput::Elements(size as u64));
        group.sample_size(10);
        let input = random_pairs(size, range, 99);

        group.bench_function(BenchmarkId::new("counting", size), |b| {
            b.iter(|| {
                let mut data = input.clone();
                counting_sort_pairs(black_box(&mut data));
                black_box(data.len())
            })
        });
        group.bench_function(BenchmarkId::new("msda-radix", size), |b| {
            b.iter(|| {
                let mut data = input.clone();
                msda_radix_sort_pairs(black_box(&mut data));
                black_box(data.len())
            })
        });
        group.bench_function(BenchmarkId::new("std-pdqsort", size), |b| {
            b.iter(|| {
                let mut data = input.clone();
                std_sort_pairs(black_box(&mut data));
                black_box(data.len())
            })
        });
        group.bench_function(BenchmarkId::new("mergesort", size), |b| {
            b.iter(|| {
                let mut data = input.clone();
                merge_sort_pairs(black_box(&mut data));
                black_box(data.len())
            })
        });
        group.bench_function(BenchmarkId::new("quicksort", size), |b| {
            b.iter(|| {
                let mut data = input.clone();
                quick_sort_pairs(black_box(&mut data));
                black_box(data.len())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
