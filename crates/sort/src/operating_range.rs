//! Operating-range selection between the counting and radix kernels
//! (paper §5.4).
//!
//! The paper's measurements (Table 1) lead to a simple rule of thumb:
//!
//! > "counting outperforms MSD radix when the size of the collection is
//! > greater than its range. When the range is greater than the number of
//! > elements, the adaptive MSD radix consistently outperforms the standard
//! > implementation."
//!
//! [`recommend_algorithm`] implements exactly that decision, with one
//! practical safeguard: counting sort allocates a histogram of `range`
//! entries, so for enormous sparse ranges (where it would also be slow) the
//! radix kernel is always chosen. [`sort_pairs_auto`] applies the decision
//! and sorts.

use crate::counting::counting_sort_unchecked_with;
use crate::pairs::subject_min_max;
use crate::radix::{msda_radix_sort_pairs_dedup_with, msda_radix_sort_pairs_with};
use crate::scratch::SortScratch;

/// The sorting kernel chosen for a given pair array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Pair counting sort (Algorithm 2) — dense collections.
    Counting,
    /// Adaptive MSD radix sort — sparse collections.
    MsdaRadix,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Counting => write!(f, "counting"),
            Algorithm::MsdaRadix => write!(f, "msda-radix"),
        }
    }
}

/// Hard cap on the counting-sort histogram size (number of `u32` buckets).
/// Beyond this, the histogram itself would dominate memory traffic, so the
/// radix kernel is used regardless of the density rule.
pub const MAX_COUNTING_RANGE: u64 = 1 << 27; // 128 Mi buckets = 512 MiB

/// Chooses a kernel for a collection of `n_pairs` pairs whose subjects span
/// `subject_range` distinct possible values (`max − min + 1`).
pub fn recommend_algorithm(n_pairs: usize, subject_range: u64) -> Algorithm {
    if subject_range == 0 {
        return Algorithm::Counting;
    }
    if subject_range > MAX_COUNTING_RANGE {
        return Algorithm::MsdaRadix;
    }
    if n_pairs as u64 >= subject_range {
        Algorithm::Counting
    } else {
        Algorithm::MsdaRadix
    }
}

/// Inspects `pairs` and returns the kernel the rule of thumb selects for it.
pub fn recommend_for(pairs: &[u64]) -> Algorithm {
    match subject_min_max(pairs) {
        None => Algorithm::Counting,
        Some((min, max)) => recommend_algorithm(pairs.len() / 2, max - min + 1),
    }
}

/// Sorts a flat pair array with the kernel picked by the operating-range
/// rule, keeping duplicates. Returns the kernel used.
pub fn sort_pairs_auto(pairs: &mut Vec<u64>) -> Algorithm {
    sort_pairs_auto_with(pairs, &mut SortScratch::new())
}

/// Sorts a flat pair array and removes duplicate pairs with the kernel picked
/// by the operating-range rule. Returns the kernel used.
pub fn sort_pairs_auto_dedup(pairs: &mut Vec<u64>) -> Algorithm {
    sort_pairs_auto_dedup_with(pairs, &mut SortScratch::new())
}

/// [`sort_pairs_auto`] against a reusable [`SortScratch`]: repeated calls —
/// the Figure 5 update stage sorts every property's inferred pairs on every
/// iteration — allocate nothing once the scratch reaches its high-water
/// mark.
pub fn sort_pairs_auto_with(pairs: &mut Vec<u64>, scratch: &mut SortScratch) -> Algorithm {
    let algo = recommend_for(pairs);
    match algo {
        Algorithm::Counting => counting_sort_unchecked_with(pairs, false, scratch),
        Algorithm::MsdaRadix => msda_radix_sort_pairs_with(pairs, scratch),
    }
    algo
}

/// [`sort_pairs_auto_dedup`] against a reusable [`SortScratch`].
pub fn sort_pairs_auto_dedup_with(pairs: &mut Vec<u64>, scratch: &mut SortScratch) -> Algorithm {
    let algo = recommend_for(pairs);
    match algo {
        Algorithm::Counting => counting_sort_unchecked_with(pairs, true, scratch),
        Algorithm::MsdaRadix => msda_radix_sort_pairs_dedup_with(pairs, scratch),
    }
    algo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::std_sort_pairs;
    use crate::pairs::{dedup_sorted_pairs, is_sorted_pairs};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rule_of_thumb_matches_paper_operating_ranges() {
        // Dense cases from Table 1 (size ≥ range) → counting.
        assert_eq!(
            recommend_algorithm(25_000_000, 1_000_000),
            Algorithm::Counting
        );
        assert_eq!(recommend_algorithm(500_000, 500_000), Algorithm::Counting);
        // Sparse cases (range > size) → radix.
        assert_eq!(
            recommend_algorithm(500_000, 10_000_000),
            Algorithm::MsdaRadix
        );
        assert_eq!(
            recommend_algorithm(1_000_000, 50_000_000),
            Algorithm::MsdaRadix
        );
    }

    #[test]
    fn huge_ranges_never_use_counting() {
        assert_eq!(
            recommend_algorithm(usize::MAX, MAX_COUNTING_RANGE + 1),
            Algorithm::MsdaRadix
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(recommend_algorithm(0, 0), Algorithm::Counting);
        let mut v: Vec<u64> = vec![];
        sort_pairs_auto(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn auto_sort_produces_sorted_output_in_both_regimes() {
        let mut rng = StdRng::seed_from_u64(99);
        // Dense: 10k pairs over a range of 100.
        let mut dense: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..100)).collect();
        let mut expected = dense.clone();
        std_sort_pairs(&mut expected);
        assert_eq!(sort_pairs_auto(&mut dense), Algorithm::Counting);
        assert_eq!(dense, expected);

        // Sparse: 100 pairs over a 2^40 range.
        let mut sparse: Vec<u64> = (0..200).map(|_| rng.gen_range(0..(1u64 << 40))).collect();
        let mut expected = sparse.clone();
        std_sort_pairs(&mut expected);
        assert_eq!(sort_pairs_auto(&mut sparse), Algorithm::MsdaRadix);
        assert_eq!(sparse, expected);
    }

    proptest! {
        #[test]
        fn prop_auto_dedup_equals_generic(mut values in proptest::collection::vec(0u64..10_000, 0..300)) {
            if values.len() % 2 == 1 {
                values.pop();
            }
            let mut expected = values.clone();
            std_sort_pairs(&mut expected);
            dedup_sorted_pairs(&mut expected);
            let mut actual = values;
            sort_pairs_auto_dedup(&mut actual);
            prop_assert!(is_sorted_pairs(&actual));
            prop_assert_eq!(actual, expected);
        }
    }
}
