//! Counting sort for pairs of integers — Algorithm 2 of the paper.
//!
//! The classic counting sort handles scalar keys; the paper adapts it to
//! key-value *pairs* while keeping linear time:
//!
//! 1. build the histogram of the subjects (the keys);
//! 2. compute each subject's starting position in the final array by a
//!    cumulative sum of the histogram;
//! 3. scatter the object values into a single `objects` array, each object
//!    landing inside the (still unsorted) sub-array reserved for its subject;
//! 4. sort each per-subject sub-array;
//! 5. rebuild the pair array by walking the start offsets, emitting
//!    `(subject, object)` pairs and — in the dedup variant — skipping
//!    repeated objects, which is sufficient because equal pairs are adjacent
//!    at this point.
//!
//! The algorithm shines when the subject range is small compared to the
//! number of pairs (dense graphs); see [`crate::operating_range`] for the
//! crossover against the radix kernel.
//!
//! All working memory (histogram, offsets, object scatter area) comes from a
//! caller-provided [`SortScratch`], so repeated calls — the per-iteration
//! table updates of Figure 5 — allocate nothing once the scratch has grown
//! to the workload's high-water mark. The historical entry points without a
//! scratch parameter run with a throwaway scratch.

use crate::operating_range::MAX_COUNTING_RANGE;
use crate::pairs::subject_min_max;
use crate::radix::{msda_radix_sort_pairs_dedup_with, msda_radix_sort_pairs_with};
use crate::scratch::SortScratch;

/// Sorts a flat pair array (`[s0, o0, s1, o1, …]`) lexicographically by
/// ⟨s,o⟩ using the pair-counting-sort of Algorithm 2, **keeping** duplicates.
///
/// The histogram is proportional to the subject span (`max − min + 1`), so
/// inputs outside the counting operating range
/// ([`MAX_COUNTING_RANGE`]) — e.g. a handful of pairs whose subjects are
/// billions apart — are routed to the adaptive MSD radix kernel instead of
/// attempting a multi-gigabyte arena allocation.
///
/// # Panics
/// Panics if the vector length is odd.
pub fn counting_sort_pairs(pairs: &mut Vec<u64>) {
    counting_sort_pairs_with(pairs, &mut SortScratch::new());
}

/// Sorts a flat pair array and removes duplicate pairs in the same pass
/// (the fused "sort & remove duplicates" step of Figure 5). The vector is
/// truncated to the deduplicated length. Subject spans outside the counting
/// operating range fall back to the radix kernel (see
/// [`counting_sort_pairs`]).
///
/// # Panics
/// Panics if the vector length is odd.
pub fn counting_sort_pairs_dedup(pairs: &mut Vec<u64>) {
    counting_sort_pairs_dedup_with(pairs, &mut SortScratch::new());
}

/// [`counting_sort_pairs`] against a reusable [`SortScratch`].
pub fn counting_sort_pairs_with(pairs: &mut Vec<u64>, scratch: &mut SortScratch) {
    if subject_span_exceeds_operating_range(pairs) {
        msda_radix_sort_pairs_with(pairs, scratch);
    } else {
        counting_sort_impl(pairs, false, scratch);
    }
}

/// [`counting_sort_pairs_dedup`] against a reusable [`SortScratch`].
pub fn counting_sort_pairs_dedup_with(pairs: &mut Vec<u64>, scratch: &mut SortScratch) {
    if subject_span_exceeds_operating_range(pairs) {
        msda_radix_sort_pairs_dedup_with(pairs, scratch);
    } else {
        counting_sort_impl(pairs, true, scratch);
    }
}

/// The guard shared by the public entry points: `true` when the histogram
/// the counting kernel would allocate is larger than the operating-range
/// cap, in which case the caller must fall back to radix.
fn subject_span_exceeds_operating_range(pairs: &[u64]) -> bool {
    match subject_min_max(pairs) {
        Some((min, max)) => max - min + 1 > MAX_COUNTING_RANGE,
        None => false,
    }
}

/// The unguarded kernel, for [`crate::operating_range`] — its dispatch rule
/// already proved the span admissible, so the min/max scan is not repeated.
pub(crate) fn counting_sort_unchecked_with(
    pairs: &mut Vec<u64>,
    dedup: bool,
    scratch: &mut SortScratch,
) {
    counting_sort_impl(pairs, dedup, scratch);
}

fn counting_sort_impl(pairs: &mut Vec<u64>, dedup: bool, scratch: &mut SortScratch) {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    if pairs.len() <= 2 {
        return;
    }
    let (min, max) = subject_min_max(pairs).expect("non-empty");
    let width = (max - min + 1) as usize;
    debug_assert!(
        width as u64 <= MAX_COUNTING_RANGE,
        "counting sort invoked outside its operating range (span {width})"
    );
    let (histogram, start, objects) = scratch.counting_arenas(width, pairs.len() / 2);

    // Lines 1-2: histogram of the subjects.
    for s in pairs.iter().copied().step_by(2) {
        histogram[(s - min) as usize] += 1;
    }

    // Line 3: starting position of each subject's object sub-array. The
    // offsets double as the per-subject counts in the rebuild phase
    // (`start[i + 1] - start[i]`), which is why no histogram copy is kept.
    let mut acc = 0usize;
    for (i, &count) in histogram.iter().enumerate() {
        start[i] = acc;
        acc += count as usize;
    }
    start[width] = acc;

    // Lines 4-10: scatter objects into per-subject sub-arrays (unsorted).
    // The histogram is consumed as a countdown of remaining slots.
    for i in (0..pairs.len()).step_by(2) {
        let key = (pairs[i] - min) as usize;
        let position = start[key];
        let remaining = histogram[key] as usize;
        histogram[key] -= 1;
        objects[position + remaining - 1] = pairs[i + 1];
    }

    // Lines 11-13: sort each sub-array of objects.
    for i in 0..width {
        let (lo, hi) = (start[i], start[i + 1]);
        if hi - lo > 1 {
            objects[lo..hi].sort_unstable();
        }
    }

    // Lines 14-26: rebuild the pair array, optionally skipping duplicates.
    let mut write = 0usize;
    for i in 0..width {
        let (lo, hi) = (start[i], start[i + 1]);
        if lo == hi {
            continue;
        }
        let subject = min + i as u64;
        let mut previous_object = 0u64;
        for (k, &object) in objects[lo..hi].iter().enumerate() {
            if !dedup || k == 0 || object != previous_object {
                pairs[write] = subject;
                pairs[write + 1] = object;
                write += 2;
            }
            previous_object = object;
        }
    }
    // Line 27: trim to the number of (unique) pairs actually written.
    pairs.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::std_sort_pairs;
    use crate::pairs::{dedup_sorted_pairs, is_sorted_pairs};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The worked example of Figure 6: pairs (4,1) (2,3) (1,2) (5,3) (4,4).
    #[test]
    fn paper_figure6_trace() {
        let mut v = vec![4, 1, 2, 3, 1, 2, 5, 3, 4, 4];
        counting_sort_pairs(&mut v);
        assert_eq!(v, vec![1, 2, 2, 3, 4, 1, 4, 4, 5, 3]);
    }

    #[test]
    fn empty_and_single_pair() {
        let mut v: Vec<u64> = vec![];
        counting_sort_pairs_dedup(&mut v);
        assert!(v.is_empty());
        let mut v = vec![9, 3];
        counting_sort_pairs_dedup(&mut v);
        assert_eq!(v, vec![9, 3]);
    }

    #[test]
    fn dedup_variant_removes_duplicate_pairs() {
        let mut v = vec![3, 7, 3, 7, 1, 1, 3, 7, 1, 1];
        counting_sort_pairs_dedup(&mut v);
        assert_eq!(v, vec![1, 1, 3, 7]);
    }

    #[test]
    fn keeps_duplicates_without_dedup() {
        let mut v = vec![3, 7, 3, 7, 1, 1];
        counting_sort_pairs(&mut v);
        assert_eq!(v, vec![1, 1, 3, 7, 3, 7]);
    }

    #[test]
    fn same_subject_objects_are_sorted() {
        let mut v = vec![5, 9, 5, 1, 5, 4, 5, 1];
        counting_sort_pairs(&mut v);
        assert_eq!(v, vec![5, 1, 5, 1, 5, 4, 5, 9]);
        let mut v2 = vec![5, 9, 5, 1, 5, 4, 5, 1];
        counting_sort_pairs_dedup(&mut v2);
        assert_eq!(v2, vec![5, 1, 5, 4, 5, 9]);
    }

    #[test]
    fn handles_large_ids_with_small_range() {
        // Dense-numbered identifiers sit near 2^32; only the range matters.
        let base = 1u64 << 32;
        let mut v = vec![base + 5, base + 1, base + 2, base + 9, base + 5, base];
        counting_sort_pairs(&mut v);
        assert_eq!(
            v,
            vec![base + 2, base + 9, base + 5, base, base + 5, base + 1]
        );
    }

    #[test]
    fn pathological_subject_span_falls_back_to_radix() {
        // Subjects {0, 5_000_000_000}: a raw counting histogram would need
        // ~5 billion slots (~20 GiB). The guarded entry points must complete
        // — via the radix fallback — and still sort correctly.
        let mut v = vec![5_000_000_000u64, 1, 0, 2, 5_000_000_000, 1];
        counting_sort_pairs(&mut v);
        assert_eq!(v, vec![0, 2, 5_000_000_000, 1, 5_000_000_000, 1]);

        let mut v = vec![5_000_000_000u64, 1, 0, 2, 5_000_000_000, 1];
        counting_sort_pairs_dedup(&mut v);
        assert_eq!(v, vec![0, 2, 5_000_000_000, 1]);

        // The reusable-scratch variants take the same guard.
        let mut scratch = SortScratch::new();
        let mut v = vec![u64::MAX - 1, 7, 3, 9];
        counting_sort_pairs_with(&mut v, &mut scratch);
        assert_eq!(v, vec![3, 9, u64::MAX - 1, 7]);
        let mut v = vec![u64::MAX - 1, 7, 3, 9, 3, 9];
        counting_sort_pairs_dedup_with(&mut v, &mut scratch);
        assert_eq!(v, vec![3, 9, u64::MAX - 1, 7]);
    }

    #[test]
    fn guard_rejects_only_spans_beyond_the_operating_range() {
        // Exactly at the cap: admissible (counting may still be slow there,
        // but the histogram fits the arena policy).
        let at_cap = vec![MAX_COUNTING_RANGE - 1, 1, 0, 2];
        assert!(!subject_span_exceeds_operating_range(&at_cap));
        // One past the cap: rejected.
        let past_cap = vec![MAX_COUNTING_RANGE, 1, 0, 2];
        assert!(subject_span_exceeds_operating_range(&past_cap));
        // Empty input: nothing to guard.
        assert!(!subject_span_exceeds_operating_range(&[]));
        // In-range spans keep using the counting kernel.
        let mut v = vec![1 << 20, 1, 0, 2];
        counting_sort_pairs(&mut v);
        assert_eq!(v, vec![0, 2, 1 << 20, 1]);
    }

    #[test]
    fn matches_std_sort_on_random_input() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [10usize, 100, 1000, 5000] {
            let mut v: Vec<u64> = (0..2 * n)
                .map(|i| {
                    if i % 2 == 0 {
                        rng.gen_range(1000..1300)
                    } else {
                        rng.gen_range(0..10_000)
                    }
                })
                .collect();
            let mut expected = v.clone();
            std_sort_pairs(&mut expected);
            counting_sort_pairs(&mut v);
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn dedup_matches_sort_then_dedup() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u64> = (0..2000)
            .map(|i| {
                if i % 2 == 0 {
                    rng.gen_range(0..50)
                } else {
                    rng.gen_range(0..20)
                }
            })
            .collect();
        let mut expected = v.clone();
        std_sort_pairs(&mut expected);
        dedup_sorted_pairs(&mut expected);
        counting_sort_pairs_dedup(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = SortScratch::new();
        for n in [5usize, 500, 50, 2000, 3] {
            let mut v: Vec<u64> = (0..2 * n).map(|_| rng.gen_range(0..200u64)).collect();
            let mut expected = v.clone();
            std_sort_pairs(&mut expected);
            counting_sort_pairs_with(&mut v, &mut scratch);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    proptest! {
        #[test]
        fn prop_sorted_and_permutation(mut values in proptest::collection::vec(0u64..5000, 0..400)) {
            if values.len() % 2 == 1 {
                values.pop();
            }
            let mut expected = values.clone();
            std_sort_pairs(&mut expected);
            let mut actual = values.clone();
            counting_sort_pairs(&mut actual);
            prop_assert!(is_sorted_pairs(&actual));
            prop_assert_eq!(actual, expected);
        }

        #[test]
        fn prop_dedup_equals_generic(mut values in proptest::collection::vec(0u64..64, 0..400)) {
            if values.len() % 2 == 1 {
                values.pop();
            }
            let mut expected = values.clone();
            std_sort_pairs(&mut expected);
            dedup_sorted_pairs(&mut expected);
            let mut actual = values;
            counting_sort_pairs_dedup(&mut actual);
            prop_assert_eq!(actual, expected);
        }
    }
}
