//! MSDA — adaptive most-significant-digit radix sort for pairs (paper §5.3).
//!
//! The pair ⟨s,o⟩ is treated as a 128-bit key (subject in the high 64 bits),
//! examined 8 bits (one byte) at a time starting from the most significant
//! digit. Two adaptations exploit the dense numbering:
//!
//! * **leading-digit skipping** — all identifiers live in a narrow window
//!   around 2³², so the high bytes of both components are constant across the
//!   whole array. MSDA computes, once, the first byte position at which the
//!   subjects (resp. objects) actually differ and starts the recursion there,
//!   saving several levels of recursive calls ("for a range of 10 million
//!   with an 8-bit radix, significant values start at the sixth byte out of
//!   eight");
//! * **small-bucket cutoff** — buckets at or below a threshold fall back to
//!   an **in-place insertion sort** over the flat pair slots, the standard
//!   practical optimisation for MSD radix. (The seed collected each bucket
//!   into a fresh `Vec<(u64, u64)>` first — one heap allocation per bucket,
//!   i.e. thousands per table sort; the fallback now allocates nothing.)
//!
//! The sort is out-of-place per level (scatter into a scratch buffer, copy
//! back), giving stable O(n) work per examined digit. The scratch buffer
//! comes from a caller-provided [`SortScratch`] so repeated sorts reuse it.

use crate::pairs::{dedup_sorted_pairs, object_min_max, subject_min_max};
use crate::scratch::SortScratch;

/// Buckets at or below this number of pairs are finished with the in-place
/// insertion sort instead of recursing further.
const SMALL_BUCKET_PAIRS: usize = 32;

/// Sorts a flat pair array lexicographically by ⟨s,o⟩ with the adaptive MSD
/// radix sort, keeping duplicates.
///
/// # Panics
/// Panics if the vector length is odd.
pub fn msda_radix_sort_pairs(pairs: &mut [u64]) {
    msda_radix_sort_pairs_with(pairs, &mut SortScratch::new());
}

/// Sorts and removes duplicate pairs (truncating the vector).
pub fn msda_radix_sort_pairs_dedup(pairs: &mut Vec<u64>) {
    msda_radix_sort_pairs_dedup_with(pairs, &mut SortScratch::new());
}

/// [`msda_radix_sort_pairs`] against a reusable [`SortScratch`].
pub fn msda_radix_sort_pairs_with(pairs: &mut [u64], scratch: &mut SortScratch) {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    if pairs.len() <= 2 {
        return;
    }
    if pairs.len() / 2 <= SMALL_BUCKET_PAIRS {
        insertion_sort_pairs(pairs);
        return;
    }
    let levels = active_levels(pairs);
    if levels.is_empty() {
        return; // every pair identical
    }
    let scratch = scratch.pair_scratch(pairs.len());
    radix_recurse(pairs, scratch, &levels, 0);
}

/// [`msda_radix_sort_pairs_dedup`] against a reusable [`SortScratch`].
pub fn msda_radix_sort_pairs_dedup_with(pairs: &mut Vec<u64>, scratch: &mut SortScratch) {
    msda_radix_sort_pairs_with(pairs, scratch);
    dedup_sorted_pairs(pairs);
}

/// The digit positions that actually need to be examined, most significant
/// first. Level 0..8 are the subject bytes (MSB..LSB), levels 8..16 the
/// object bytes. Leading bytes on which all values agree are skipped — this
/// is the "adaptive" part of MSDA.
fn active_levels(pairs: &[u64]) -> Vec<u8> {
    let (s_min, s_max) = subject_min_max(pairs).expect("non-empty");
    let (o_min, o_max) = object_min_max(pairs).expect("non-empty");
    let mut levels = Vec::with_capacity(16);
    let s_first = first_differing_byte(s_min, s_max);
    if let Some(first) = s_first {
        for byte in first..8 {
            levels.push(byte);
        }
    }
    let o_first = first_differing_byte(o_min, o_max);
    if let Some(first) = o_first {
        for byte in first..8 {
            levels.push(8 + byte);
        }
    }
    levels
}

/// Index (0 = most significant) of the first byte at which `min` and `max`
/// differ, or `None` when they are equal (the component is constant).
fn first_differing_byte(min: u64, max: u64) -> Option<u8> {
    let diff = min ^ max;
    if diff == 0 {
        None
    } else {
        Some((diff.leading_zeros() / 8) as u8)
    }
}

/// Extracts the byte of pair `(s, o)` addressed by `level` (see
/// [`active_levels`]).
#[inline]
fn byte_at(s: u64, o: u64, level: u8) -> usize {
    if level < 8 {
        ((s >> (8 * (7 - level))) & 0xFF) as usize
    } else {
        ((o >> (8 * (15 - level))) & 0xFF) as usize
    }
}

fn radix_recurse(pairs: &mut [u64], scratch: &mut [u64], levels: &[u8], depth: usize) {
    let n_pairs = pairs.len() / 2;
    if n_pairs <= 1 || depth >= levels.len() {
        return;
    }
    if n_pairs <= SMALL_BUCKET_PAIRS {
        insertion_sort_pairs(pairs);
        return;
    }
    let level = levels[depth];

    // Count digit occurrences.
    let mut counts = [0usize; 256];
    for pair in pairs.chunks_exact(2) {
        counts[byte_at(pair[0], pair[1], level)] += 1;
    }

    // Prefix sums → bucket start offsets (in pairs).
    let mut offsets = [0usize; 256];
    let mut acc = 0usize;
    for digit in 0..256 {
        offsets[digit] = acc;
        acc += counts[digit];
    }

    // Scatter into the scratch buffer.
    {
        let mut cursor = offsets;
        for pair in pairs.chunks_exact(2) {
            let digit = byte_at(pair[0], pair[1], level);
            let dst = cursor[digit] * 2;
            scratch[dst] = pair[0];
            scratch[dst + 1] = pair[1];
            cursor[digit] += 1;
        }
    }
    pairs.copy_from_slice(&scratch[..pairs.len()]);

    // Recurse into each bucket on the next digit.
    for digit in 0..256 {
        let count = counts[digit];
        if count > 1 {
            let lo = offsets[digit] * 2;
            let hi = lo + count * 2;
            radix_recurse(&mut pairs[lo..hi], &mut scratch[lo..hi], levels, depth + 1);
        }
    }
}

/// In-place insertion sort of a small flat pair slice (the recursion
/// cutoff). Shifts pair slots directly — no tuple vector, no allocation.
pub(crate) fn insertion_sort_pairs(pairs: &mut [u64]) {
    debug_assert!(pairs.len().is_multiple_of(2));
    let n = pairs.len() / 2;
    for i in 1..n {
        let s = pairs[2 * i];
        let o = pairs[2 * i + 1];
        let mut j = i;
        while j > 0 && (pairs[2 * j - 2], pairs[2 * j - 1]) > (s, o) {
            pairs[2 * j] = pairs[2 * j - 2];
            pairs[2 * j + 1] = pairs[2 * j - 1];
            j -= 1;
        }
        pairs[2 * j] = s;
        pairs[2 * j + 1] = o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::std_sort_pairs;
    use crate::pairs::is_sorted_pairs;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_single_and_identical() {
        let mut v: Vec<u64> = vec![];
        msda_radix_sort_pairs(&mut v);
        assert!(v.is_empty());

        let mut v = vec![3, 4];
        msda_radix_sort_pairs(&mut v);
        assert_eq!(v, vec![3, 4]);

        let mut v = vec![5, 5, 5, 5, 5, 5];
        msda_radix_sort_pairs(&mut v);
        assert_eq!(v, vec![5, 5, 5, 5, 5, 5]);
    }

    #[test]
    fn small_example() {
        let mut v = vec![4, 1, 2, 3, 1, 2, 5, 3, 4, 4];
        msda_radix_sort_pairs(&mut v);
        assert_eq!(v, vec![1, 2, 2, 3, 4, 1, 4, 4, 5, 3]);
    }

    #[test]
    fn first_differing_byte_positions() {
        assert_eq!(first_differing_byte(0, 0), None);
        assert_eq!(first_differing_byte(7, 7), None);
        assert_eq!(first_differing_byte(0, 1), Some(7));
        assert_eq!(first_differing_byte(0, 255), Some(7));
        assert_eq!(first_differing_byte(0, 256), Some(6));
        // "For a range of 10 million with an 8-bit radix, significant values
        // start at the sixth byte out of eight" (paper §5.3) — i.e. index 5.
        assert_eq!(
            first_differing_byte(1 << 32, (1 << 32) + 10_000_000),
            Some(5)
        );
        assert_eq!(first_differing_byte(0, u64::MAX), Some(0));
    }

    #[test]
    fn adaptive_skip_levels_for_dense_ids() {
        // Subjects span ~10M around 2^32 → subject bytes 5..8 are examined;
        // objects span 0..5 → only the last object byte (level 15) is.
        let base = 1u64 << 32;
        let pairs = vec![
            base + 1,
            base + 5,
            base + 9_999_999,
            base + 2,
            base + 3,
            base,
        ];
        let levels = active_levels(&pairs);
        assert_eq!(levels, vec![5, 6, 7, 15]);
    }

    #[test]
    fn constant_subject_only_examines_object_bytes() {
        let pairs = vec![42, 9, 42, 1, 42, 100];
        let levels = active_levels(&pairs);
        assert!(levels.iter().all(|&l| l >= 8));
        let mut v = pairs.clone();
        msda_radix_sort_pairs(&mut v);
        assert_eq!(v, vec![42, 1, 42, 9, 42, 100]);
    }

    #[test]
    fn matches_std_sort_on_random_dense_input() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = 1u64 << 32;
        for n in [100usize, 1000, 20_000] {
            let mut v: Vec<u64> = (0..2 * n)
                .map(|_| base + rng.gen_range(0..5_000u64))
                .collect();
            let mut expected = v.clone();
            std_sort_pairs(&mut expected);
            msda_radix_sort_pairs(&mut v);
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn matches_std_sort_on_sparse_input() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u64> = (0..10_000).map(|_| rng.gen::<u64>()).collect();
        let mut expected = v.clone();
        std_sort_pairs(&mut expected);
        msda_radix_sort_pairs(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn dedup_variant() {
        let mut v = vec![9, 9, 1, 2, 9, 9, 1, 2, 1, 3];
        msda_radix_sort_pairs_dedup(&mut v);
        assert_eq!(v, vec![1, 2, 1, 3, 9, 9]);
    }

    #[test]
    fn insertion_sort_is_in_place_and_correct() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 0..=SMALL_BUCKET_PAIRS {
            let mut v: Vec<u64> = (0..2 * n).map(|_| rng.gen_range(0..30u64)).collect();
            let mut expected = v.clone();
            std_sort_pairs(&mut expected);
            insertion_sort_pairs(&mut v);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut scratch = SortScratch::new();
        for n in [2000usize, 50, 400, 20_000, 5] {
            let mut v: Vec<u64> = (0..2 * n).map(|_| rng.gen::<u64>()).collect();
            let mut expected = v.clone();
            std_sort_pairs(&mut expected);
            msda_radix_sort_pairs_with(&mut v, &mut scratch);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_generic_sort(mut values in proptest::collection::vec(any::<u64>(), 0..300)) {
            if values.len() % 2 == 1 {
                values.pop();
            }
            let mut expected = values.clone();
            std_sort_pairs(&mut expected);
            let mut actual = values;
            msda_radix_sort_pairs(&mut actual);
            prop_assert!(is_sorted_pairs(&actual));
            prop_assert_eq!(actual, expected);
        }

        #[test]
        fn prop_low_entropy_matches_generic_sort(mut values in proptest::collection::vec(0u64..100, 0..300)) {
            if values.len() % 2 == 1 {
                values.pop();
            }
            let mut expected = values.clone();
            std_sort_pairs(&mut expected);
            let mut actual = values;
            msda_radix_sort_pairs(&mut actual);
            prop_assert_eq!(actual, expected);
        }
    }
}
