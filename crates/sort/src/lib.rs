//! # inferray-sort
//!
//! Low-entropy sorting kernels for pairs of 64-bit integers, reproducing
//! section 5 of the Inferray paper (Subercaze et al., VLDB 2016).
//!
//! Property tables store `⟨subject, object⟩` pairs in a *flat* `Vec<u64>` —
//! subjects on even indices, objects on odd indices — and the whole system's
//! performance "relies on an efficient sort of the property tables made up of
//! key-value pairs" (paper §1.1). Because the dictionary numbers identifiers
//! densely (see `inferray-dictionary`), key entropy is low, and two
//! specialized kernels beat generic comparison sorts:
//!
//! * [`counting::counting_sort_pairs`] — the pair-aware counting sort of the
//!   paper's Algorithm 2, including its fused duplicate-removal pass;
//! * [`radix::msda_radix_sort_pairs`] — "MSDA", an adaptive most-significant-
//!   digit radix sort over the 128-bit ⟨s,o⟩ key that skips the leading
//!   digits the dense numbering leaves constant (§5.3).
//!
//! [`baseline`] provides the generic comparison sorts the paper benchmarks
//! against in Table 1 (std unstable pattern-defeating quicksort, a textbook
//! merge sort, a textbook quicksort), and [`operating_range`] implements the
//! §5.4 "rule of thumb" that picks counting sort when the collection is
//! larger than its value range and radix sort otherwise.
//!
//! All kernels share the same contract:
//!
//! * input: a flat pair array of even length;
//! * output: the array sorted lexicographically by ⟨s,o⟩ (ascending);
//! * `*_dedup` variants additionally remove duplicate *pairs* and truncate
//!   the vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod counting;
pub mod operating_range;
pub mod pairs;
pub mod radix;
pub mod scratch;

pub use counting::{
    counting_sort_pairs, counting_sort_pairs_dedup, counting_sort_pairs_dedup_with,
    counting_sort_pairs_with,
};
pub use operating_range::{
    recommend_algorithm, sort_pairs_auto, sort_pairs_auto_dedup, sort_pairs_auto_dedup_with,
    sort_pairs_auto_with, Algorithm,
};
pub use pairs::{dedup_sorted_pairs, is_sorted_pairs, swap_pairs};
pub use radix::{
    msda_radix_sort_pairs, msda_radix_sort_pairs_dedup, msda_radix_sort_pairs_dedup_with,
    msda_radix_sort_pairs_with,
};
pub use scratch::SortScratch;
