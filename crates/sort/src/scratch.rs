//! [`SortScratch`] — the reusable working memory of the sorting kernels.
//!
//! The seed kernels allocated their working buffers on every call: the
//! counting sort built a fresh histogram, offset table and object area, the
//! radix sort a fresh scatter buffer, and the radix small-bucket fallback a
//! `Vec<(u64, u64)>` *per bucket*. In the fixed-point loop those calls
//! happen for every property table on every iteration, so the allocator sat
//! squarely on the hot path of Figure 5.
//!
//! A [`SortScratch`] owns all of those buffers and is threaded through the
//! `*_with` kernel entry points. Buffers grow to the high-water mark of the
//! workload and are then reused; steady-state iterations perform **zero**
//! sort allocations. The parameterless kernel entry points still exist and
//! simply run with a throwaway scratch.

/// Reusable working memory shared by the counting and radix kernels.
///
/// Create one per worker (never share across threads mid-sort) and pass it
/// to the `*_with` entry points. Dropping it releases the high-water-mark
/// buffers.
#[derive(Debug, Default, Clone)]
pub struct SortScratch {
    /// Radix scatter area (one slot per array element).
    pub(crate) pair_scratch: Vec<u64>,
    /// Counting-sort subject histogram (one `u32` per subject in range).
    pub(crate) histogram: Vec<u32>,
    /// Counting-sort per-subject start offsets (`width + 1` entries).
    pub(crate) start: Vec<usize>,
    /// Counting-sort object scatter area (one slot per pair).
    pub(crate) objects: Vec<u64>,
}

impl SortScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SortScratch::default()
    }

    /// A scratch pre-sized for arrays of `n_pairs` pairs whose subjects span
    /// `subject_range` values (avoids even the first-use growth).
    pub fn with_capacity(n_pairs: usize, subject_range: usize) -> Self {
        SortScratch {
            pair_scratch: Vec::with_capacity(2 * n_pairs),
            histogram: Vec::with_capacity(subject_range),
            start: Vec::with_capacity(subject_range + 1),
            objects: Vec::with_capacity(n_pairs),
        }
    }

    /// Total bytes currently reserved across all buffers. Exposed so tests
    /// and benchmarks can assert the steady state allocates nothing (the
    /// value stabilizes after the first iteration at a given scale).
    pub fn reserved_bytes(&self) -> usize {
        self.pair_scratch.capacity() * std::mem::size_of::<u64>()
            + self.histogram.capacity() * std::mem::size_of::<u32>()
            + self.start.capacity() * std::mem::size_of::<usize>()
            + self.objects.capacity() * std::mem::size_of::<u64>()
    }

    /// The radix scatter buffer, zero-filled to `len` elements.
    pub(crate) fn pair_scratch(&mut self, len: usize) -> &mut [u64] {
        self.pair_scratch.clear();
        self.pair_scratch.resize(len, 0);
        &mut self.pair_scratch
    }

    /// The counting-sort arenas sized for `width` subjects and `n_pairs`
    /// pairs: `(histogram, start, objects)`, histogram zeroed.
    pub(crate) fn counting_arenas(
        &mut self,
        width: usize,
        n_pairs: usize,
    ) -> (&mut [u32], &mut [usize], &mut [u64]) {
        self.histogram.clear();
        self.histogram.resize(width, 0);
        self.start.clear();
        self.start.resize(width + 1, 0);
        self.objects.clear();
        self.objects.resize(n_pairs, 0);
        (&mut self.histogram, &mut self.start, &mut self.objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operating_range::sort_pairs_auto_dedup_with;

    #[test]
    fn buffers_stop_growing_after_the_first_use() {
        let mut scratch = SortScratch::new();
        let make_input = |seed: u64| -> Vec<u64> {
            (0..2_000u64)
                .map(|i| (i.wrapping_mul(seed.wrapping_add(0x9E3779B9)) >> 3) % 500)
                .collect()
        };
        // Warm-up pass: buffers grow to the workloads' high-water mark.
        for seed in 1..12 {
            let mut input = make_input(seed);
            sort_pairs_auto_dedup_with(&mut input, &mut scratch);
        }
        let watermark = scratch.reserved_bytes();
        assert!(watermark > 0);
        // Steady state: replaying the same workloads allocates nothing.
        for seed in 1..12 {
            let mut input = make_input(seed);
            sort_pairs_auto_dedup_with(&mut input, &mut scratch);
            assert_eq!(
                scratch.reserved_bytes(),
                watermark,
                "steady-state sort allocated (seed {seed})"
            );
        }
    }

    #[test]
    fn with_capacity_pre_reserves() {
        let scratch = SortScratch::with_capacity(100, 50);
        assert!(scratch.reserved_bytes() >= 100 * 8 + 50 * 4);
    }
}
