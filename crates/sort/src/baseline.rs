//! Generic comparison sorts used as baselines in Table 1 of the paper.
//!
//! The paper compares its counting and MSDA kernels against generic 128-bit
//! sorts (SIMD Radix128/Merge128 from Satish et al., plus mergesort and
//! quicksort). SIMD intrinsics are out of scope for a portable reproduction,
//! so the stand-ins are:
//!
//! * [`std_sort_pairs`] — Rust's pattern-defeating quicksort
//!   (`sort_unstable`) on `(u64, u64)` tuples, the strongest generic
//!   comparison sort readily available;
//! * [`merge_sort_pairs`] — a textbook top-down merge sort, the
//!   non-SIMD analogue of the paper's `Mergesort` row;
//! * [`quick_sort_pairs`] — a textbook median-of-three quicksort, the
//!   analogue of the paper's `Quicksort` row.
//!
//! They all operate on the same flat pair-array convention as the kernels in
//! [`crate::counting`] and [`crate::radix`] so Table 1 compares like with
//! like.

/// Sorts a flat pair array with the standard library's unstable sort.
/// Serves as the correctness oracle for every other kernel.
pub fn std_sort_pairs(pairs: &mut [u64]) {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    let mut tuples = to_tuples(pairs);
    tuples.sort_unstable();
    from_tuples(&tuples, pairs);
}

/// Textbook top-down merge sort over `(u64, u64)` tuples.
pub fn merge_sort_pairs(pairs: &mut [u64]) {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    let mut tuples = to_tuples(pairs);
    let mut scratch = tuples.clone();
    merge_sort_recurse(&mut tuples, &mut scratch);
    from_tuples(&tuples, pairs);
}

/// Textbook recursive quicksort (median-of-three pivot, insertion sort for
/// small partitions) over `(u64, u64)` tuples.
pub fn quick_sort_pairs(pairs: &mut [u64]) {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    let mut tuples = to_tuples(pairs);
    quick_sort_recurse(&mut tuples);
    from_tuples(&tuples, pairs);
}

fn to_tuples(pairs: &[u64]) -> Vec<(u64, u64)> {
    pairs.chunks_exact(2).map(|p| (p[0], p[1])).collect()
}

fn from_tuples(tuples: &[(u64, u64)], pairs: &mut [u64]) {
    for (i, (s, o)) in tuples.iter().enumerate() {
        pairs[2 * i] = *s;
        pairs[2 * i + 1] = *o;
    }
}

fn merge_sort_recurse(data: &mut [(u64, u64)], scratch: &mut [(u64, u64)]) {
    let n = data.len();
    if n <= 32 {
        data.sort_unstable();
        return;
    }
    let mid = n / 2;
    merge_sort_recurse(&mut data[..mid], &mut scratch[..mid]);
    merge_sort_recurse(&mut data[mid..], &mut scratch[mid..]);
    // Merge into scratch, then copy back.
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < n {
        if data[i] <= data[j] {
            scratch[k] = data[i];
            i += 1;
        } else {
            scratch[k] = data[j];
            j += 1;
        }
        k += 1;
    }
    while i < mid {
        scratch[k] = data[i];
        i += 1;
        k += 1;
    }
    while j < n {
        scratch[k] = data[j];
        j += 1;
        k += 1;
    }
    data.copy_from_slice(&scratch[..n]);
}

fn quick_sort_recurse(data: &mut [(u64, u64)]) {
    let n = data.len();
    if n <= 24 {
        data.sort_unstable();
        return;
    }
    // Median-of-three pivot selection.
    let (a, b, c) = (data[0], data[n / 2], data[n - 1]);
    let pivot = median3(a, b, c);

    // Hoare partition.
    let mut i = 0usize;
    let mut j = n - 1;
    loop {
        while data[i] < pivot {
            i += 1;
        }
        while data[j] > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
        i += 1;
        j -= 1;
    }
    // Guard against a degenerate split (possible with pathological pivot
    // placement); the recursion must always strictly shrink.
    if j + 1 == n {
        data.sort_unstable();
        return;
    }
    let (left, right) = data.split_at_mut(j + 1);
    quick_sort_recurse(left);
    quick_sort_recurse(right);
}

fn median3(a: (u64, u64), b: (u64, u64), c: (u64, u64)) -> (u64, u64) {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    if c < lo {
        lo
    } else if c > hi {
        hi
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::is_sorted_pairs;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pairs(n: usize, range: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..2 * n).map(|_| rng.gen_range(0..range)).collect()
    }

    #[test]
    fn all_baselines_agree_with_std() {
        for (n, range, seed) in [
            (0usize, 10u64, 1u64),
            (1, 10, 2),
            (500, 100, 3),
            (4000, 1 << 40, 4),
        ] {
            let original = random_pairs(n, range.max(1), seed);
            let mut expected = original.clone();
            std_sort_pairs(&mut expected);

            let mut m = original.clone();
            merge_sort_pairs(&mut m);
            assert_eq!(m, expected, "merge sort mismatch n={n}");

            let mut q = original.clone();
            quick_sort_pairs(&mut q);
            assert_eq!(q, expected, "quick sort mismatch n={n}");
        }
    }

    #[test]
    fn sorts_already_sorted_and_reversed_input() {
        let mut asc: Vec<u64> = (0..200u64).flat_map(|i| [i, i * 2]).collect();
        let mut desc: Vec<u64> = (0..200u64).rev().flat_map(|i| [i, i * 2]).collect();
        let mut expected = desc.clone();
        std_sort_pairs(&mut expected);
        merge_sort_pairs(&mut desc);
        assert_eq!(desc, expected);
        quick_sort_pairs(&mut asc);
        assert!(is_sorted_pairs(&asc));
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut v: Vec<u64> = std::iter::repeat_n([3u64, 1u64], 300).flatten().collect();
        v.extend_from_slice(&[1, 9, 1, 9, 2, 2]);
        let mut expected = v.clone();
        std_sort_pairs(&mut expected);
        let mut q = v.clone();
        quick_sort_pairs(&mut q);
        assert_eq!(q, expected);
        let mut m = v;
        merge_sort_pairs(&mut m);
        assert_eq!(m, expected);
    }

    proptest! {
        #[test]
        fn prop_merge_and_quick_match_std(mut values in proptest::collection::vec(any::<u64>(), 0..256)) {
            if values.len() % 2 == 1 {
                values.pop();
            }
            let mut expected = values.clone();
            std_sort_pairs(&mut expected);
            let mut m = values.clone();
            merge_sort_pairs(&mut m);
            prop_assert_eq!(&m, &expected);
            let mut q = values;
            quick_sort_pairs(&mut q);
            prop_assert_eq!(q, expected);
        }
    }
}
