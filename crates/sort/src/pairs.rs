//! Helpers shared by every sorting kernel: the flat pair-array convention,
//! sortedness checks, duplicate removal on sorted arrays, and ⟨s,o⟩ ↔ ⟨o,s⟩
//! swapping (used to build the object-sorted cache of a property table).

/// Returns `true` when `pairs` (flat `[s0, o0, s1, o1, …]`) is sorted
/// lexicographically by ⟨s,o⟩.
///
/// # Panics
/// Panics if the slice length is odd.
pub fn is_sorted_pairs(pairs: &[u64]) -> bool {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    pairs
        .chunks_exact(2)
        .zip(pairs.chunks_exact(2).skip(1))
        .all(|(a, b)| (a[0], a[1]) <= (b[0], b[1]))
}

/// Removes duplicate pairs from a *sorted* flat pair array, truncating it in
/// place. Returns the number of pairs removed.
///
/// # Panics
/// Panics if the slice length is odd. Debug builds also assert sortedness.
pub fn dedup_sorted_pairs(pairs: &mut Vec<u64>) -> usize {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    debug_assert!(is_sorted_pairs(pairs), "dedup requires a sorted array");
    if pairs.is_empty() {
        return 0;
    }
    let mut write = 2usize;
    for read in (2..pairs.len()).step_by(2) {
        if pairs[read] != pairs[write - 2] || pairs[read + 1] != pairs[write - 1] {
            pairs[write] = pairs[read];
            pairs[write + 1] = pairs[read + 1];
            write += 2;
        }
    }
    let removed = (pairs.len() - write) / 2;
    pairs.truncate(write);
    removed
}

/// Returns a new flat array with every pair swapped: `(s, o)` becomes
/// `(o, s)`. Sorting the result on its first component yields the
/// object-sorted view the β/α rules join on.
pub fn swap_pairs(pairs: &[u64]) -> Vec<u64> {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair array must have even length"
    );
    let mut out = Vec::with_capacity(pairs.len());
    for pair in pairs.chunks_exact(2) {
        out.push(pair[1]);
        out.push(pair[0]);
    }
    out
}

/// Number of pairs stored in a flat pair array.
#[inline]
pub fn pair_count(pairs: &[u64]) -> usize {
    debug_assert!(pairs.len().is_multiple_of(2));
    pairs.len() / 2
}

/// Minimum and maximum over the *subject* (even-index) positions.
/// Returns `None` for an empty array.
pub fn subject_min_max(pairs: &[u64]) -> Option<(u64, u64)> {
    debug_assert!(pairs.len().is_multiple_of(2));
    let mut iter = pairs.iter().copied().step_by(2);
    let first = iter.next()?;
    let (mut min, mut max) = (first, first);
    for s in iter {
        min = min.min(s);
        max = max.max(s);
    }
    Some((min, max))
}

/// Minimum and maximum over the *object* (odd-index) positions.
pub fn object_min_max(pairs: &[u64]) -> Option<(u64, u64)> {
    debug_assert!(pairs.len().is_multiple_of(2));
    let mut iter = pairs.iter().copied().skip(1).step_by(2);
    let first = iter.next()?;
    let (mut min, mut max) = (first, first);
    for o in iter {
        min = min.min(o);
        max = max.max(o);
    }
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sortedness_check() {
        assert!(is_sorted_pairs(&[]));
        assert!(is_sorted_pairs(&[1, 2]));
        assert!(is_sorted_pairs(&[1, 2, 1, 3, 2, 0]));
        assert!(!is_sorted_pairs(&[1, 3, 1, 2]));
        assert!(!is_sorted_pairs(&[2, 0, 1, 9]));
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        is_sorted_pairs(&[1, 2, 3]);
    }

    #[test]
    fn dedup_removes_adjacent_duplicates() {
        let mut v = vec![1, 1, 1, 1, 1, 2, 3, 0, 3, 0];
        let removed = dedup_sorted_pairs(&mut v);
        assert_eq!(removed, 2);
        assert_eq!(v, vec![1, 1, 1, 2, 3, 0]);
    }

    #[test]
    fn dedup_on_empty_and_singleton() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(dedup_sorted_pairs(&mut v), 0);
        let mut v = vec![5, 6];
        assert_eq!(dedup_sorted_pairs(&mut v), 0);
        assert_eq!(v, vec![5, 6]);
    }

    #[test]
    fn dedup_all_identical() {
        let mut v = vec![4, 4, 4, 4, 4, 4];
        assert_eq!(dedup_sorted_pairs(&mut v), 2);
        assert_eq!(v, vec![4, 4]);
    }

    #[test]
    fn swap_exchanges_components() {
        assert_eq!(swap_pairs(&[1, 2, 3, 4]), vec![2, 1, 4, 3]);
        assert_eq!(swap_pairs(&[]), Vec::<u64>::new());
        // swapping twice is the identity
        let v = vec![9, 8, 7, 6, 5, 4];
        assert_eq!(swap_pairs(&swap_pairs(&v)), v);
    }

    #[test]
    fn min_max_helpers() {
        let v = vec![5, 100, 2, 300, 9, 1];
        assert_eq!(subject_min_max(&v), Some((2, 9)));
        assert_eq!(object_min_max(&v), Some((1, 300)));
        assert_eq!(subject_min_max(&[]), None);
        assert_eq!(object_min_max(&[]), None);
        assert_eq!(pair_count(&v), 3);
    }
}
