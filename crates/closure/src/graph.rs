//! Dense-numbered directed graphs in compressed sparse row (CSR) form.
//!
//! The closure stage receives a property table — a list of `⟨s, o⟩` pairs of
//! 64-bit dictionary identifiers — and needs a compact adjacency structure
//! over *dense* node indices. [`DenseGraph::from_edges`] performs the
//! renumbering (sort + dedup + binary search) and builds the CSR arrays in
//! two linear passes, exactly the "translate the nodes' ID to keep a dense
//! numbering" step the paper describes before applying Nuutila's algorithm.

/// A directed graph over densely renumbered nodes, in CSR form, remembering
/// the original 64-bit identifier of every node.
#[derive(Debug, Clone)]
pub struct DenseGraph {
    /// Original identifier of each dense node index.
    labels: Vec<u64>,
    /// CSR row offsets (length `n + 1`).
    offsets: Vec<usize>,
    /// CSR column indices (dense target node of each edge).
    targets: Vec<u32>,
}

impl DenseGraph {
    /// Builds a graph from `(source, target)` edge pairs over arbitrary u64
    /// identifiers. Parallel edges are kept (they are harmless to the
    /// closure and removing them here would cost a sort).
    pub fn from_edges(edges: &[(u64, u64)]) -> Self {
        // Dense renumbering: sorted unique labels, binary-searched per use.
        let mut labels: Vec<u64> = Vec::with_capacity(edges.len() * 2);
        for &(s, o) in edges {
            labels.push(s);
            labels.push(o);
        }
        labels.sort_unstable();
        labels.dedup();

        let index_of =
            |id: u64| -> u32 { labels.binary_search(&id).expect("label present") as u32 };

        let n = labels.len();
        let mut degree = vec![0usize; n];
        for &(s, _) in edges {
            degree[index_of(s) as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, o) in edges {
            let si = index_of(s) as usize;
            targets[cursor[si]] = index_of(o);
            cursor[si] += 1;
        }
        DenseGraph {
            labels,
            offsets,
            targets,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges (parallel edges counted).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The original identifier of dense node `v`.
    #[inline]
    pub fn label(&self, v: u32) -> u64 {
        self.labels[v as usize]
    }

    /// The dense index of an original identifier, if the node exists.
    pub fn index_of(&self, id: u64) -> Option<u32> {
        self.labels.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The successors of dense node `v`.
    #[inline]
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of dense node `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// `true` when `v` has an edge to itself.
    pub fn has_self_loop(&self, v: u32) -> bool {
        self.successors(v).contains(&v)
    }

    /// Iterates over all edges as dense `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32)
            .flat_map(move |v| self.successors(v).iter().map(move |&t| (v, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DenseGraph::from_edges(&[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn renumbering_is_dense_and_order_preserving() {
        // Sparse 64-bit labels typical of dictionary ids.
        let big = 1u64 << 32;
        let g = DenseGraph::from_edges(&[(big + 10, big + 500), (big + 500, big + 3)]);
        assert_eq!(g.node_count(), 3);
        // Labels are sorted, indices are dense 0..n.
        assert_eq!(g.label(0), big + 3);
        assert_eq!(g.label(1), big + 10);
        assert_eq!(g.label(2), big + 500);
        assert_eq!(g.index_of(big + 500), Some(2));
        assert_eq!(g.index_of(big + 4), None);
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = DenseGraph::from_edges(&[(1, 2), (1, 3), (2, 3), (3, 3)]);
        let n1 = g.index_of(1).unwrap();
        let n3 = g.index_of(3).unwrap();
        assert_eq!(g.out_degree(n1), 2);
        assert_eq!(g.out_degree(n3), 1);
        assert!(g.has_self_loop(n3));
        assert!(!g.has_self_loop(n1));
        let succ_labels: Vec<u64> = g.successors(n1).iter().map(|&t| g.label(t)).collect();
        assert_eq!(succ_labels, vec![2, 3]);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = DenseGraph::from_edges(&[(5, 6), (5, 6)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(g.index_of(5).unwrap()), 2);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let input = vec![(10u64, 20u64), (20, 30), (30, 10)];
        let g = DenseGraph::from_edges(&input);
        let mut recovered: Vec<(u64, u64)> =
            g.edges().map(|(s, t)| (g.label(s), g.label(t))).collect();
        recovered.sort_unstable();
        let mut expected = input;
        expected.sort_unstable();
        assert_eq!(recovered, expected);
    }
}
