//! Sets of `u32` values stored as sorted, disjoint, inclusive intervals.
//!
//! Cotton's implementation of Nuutila's algorithm (which the paper adopts)
//! stores each component's reachable set "as sets of intervals. This
//! structure is compact and is likely to be smaller than the expected
//! quadratic size." Reachable sets of a DAG processed in reverse topological
//! order tend to be contiguous runs of component indices, so a handful of
//! intervals usually covers millions of reachable nodes.

/// A set of `u32` values represented as sorted, disjoint, inclusive
/// `[start, end]` intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    runs: Vec<(u32, u32)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet { runs: Vec::new() }
    }

    /// Creates a set holding the single value `v`.
    pub fn singleton(v: u32) -> Self {
        IntervalSet { runs: vec![(v, v)] }
    }

    /// Creates a set from an inclusive range.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn from_range(start: u32, end: u32) -> Self {
        assert!(start <= end, "invalid interval [{start}, {end}]");
        IntervalSet {
            runs: vec![(start, end)],
        }
    }

    /// Builds a set from arbitrary values.
    pub fn from_values(values: impl IntoIterator<Item = u32>) -> Self {
        let mut sorted: Vec<u32> = values.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut set = IntervalSet::new();
        for v in sorted {
            set.push_back(v);
        }
        set
    }

    /// Number of stored intervals (not values).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(s, e)| (e - s) as usize + 1).sum()
    }

    /// `true` when the set holds no value.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Membership test (binary search over the runs).
    pub fn contains(&self, v: u32) -> bool {
        self.runs
            .binary_search_by(|&(s, e)| {
                if v < s {
                    std::cmp::Ordering::Greater
                } else if v > e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Appends a value known to be `>=` every value already present,
    /// coalescing with the last run when adjacent. O(1).
    ///
    /// # Panics
    /// Debug-asserts the monotonicity precondition.
    pub fn push_back(&mut self, v: u32) {
        if let Some(&mut (_, ref mut end)) = self.runs.last_mut() {
            debug_assert!(v >= *end || v + 1 >= *end, "push_back out of order");
            if v <= *end {
                return;
            }
            if v == *end + 1 {
                *end = v;
                return;
            }
        }
        self.runs.push((v, v));
    }

    /// Inserts an arbitrary value, keeping the runs sorted, disjoint and
    /// coalesced.
    pub fn insert(&mut self, v: u32) {
        if self.contains(v) {
            return;
        }
        let merged = Self::union_runs(&self.runs, &[(v, v)]);
        self.runs = merged;
    }

    /// Unions `other` into `self` (the Nuutila reachable-set merge).
    pub fn union_in_place(&mut self, other: &IntervalSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.runs = other.runs.clone();
            return;
        }
        self.runs = Self::union_runs(&self.runs, &other.runs);
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// Iterates over every value of the set in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|&(s, e)| s..=e)
    }

    /// Iterates over the runs (inclusive bounds) in ascending order.
    pub fn runs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.runs.iter().copied()
    }

    /// Linear-time merge of two sorted disjoint run lists, coalescing
    /// touching or overlapping runs.
    fn union_runs(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        let push = |run: (u32, u32), out: &mut Vec<(u32, u32)>| {
            if let Some(last) = out.last_mut() {
                // Coalesce when overlapping or adjacent.
                if run.0 <= last.1.saturating_add(1) {
                    last.1 = last.1.max(run.1);
                    return;
                }
            }
            out.push(run);
        };
        while i < a.len() && j < b.len() {
            if a[i].0 <= b[j].0 {
                push(a[i], &mut out);
                i += 1;
            } else {
                push(b[j], &mut out);
                j += 1;
            }
        }
        while i < a.len() {
            push(a[i], &mut out);
            i += 1;
        }
        while j < b.len() {
            push(b[j], &mut out);
            j += 1;
        }
        out
    }
}

impl FromIterator<u32> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        IntervalSet::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_set() {
        let s = IntervalSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn consecutive_values_coalesce_into_one_run() {
        let s = IntervalSet::from_values(0..1000);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 1000);
        assert!(s.contains(0));
        assert!(s.contains(999));
        assert!(!s.contains(1000));
    }

    #[test]
    fn from_values_with_gaps_and_duplicates() {
        let s = IntervalSet::from_values([5u32, 1, 2, 2, 3, 9, 10, 1]);
        assert_eq!(s.run_count(), 3); // [1,3] [5,5] [9,10]
        assert_eq!(s.len(), 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3, 5, 9, 10]);
    }

    #[test]
    fn push_back_is_idempotent_for_repeats() {
        let mut s = IntervalSet::new();
        s.push_back(4);
        s.push_back(4);
        s.push_back(5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.run_count(), 1);
    }

    #[test]
    fn insert_arbitrary_order() {
        let mut s = IntervalSet::new();
        for v in [10u32, 2, 4, 3, 11, 0] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 3, 4, 10, 11]);
        assert_eq!(s.run_count(), 3);
    }

    #[test]
    fn union_overlapping_adjacent_and_disjoint() {
        let a = IntervalSet::from_range(0, 5);
        let b = IntervalSet::from_range(6, 9); // adjacent → coalesce
        let c = IntervalSet::from_range(3, 7); // overlapping
        let d = IntervalSet::from_range(20, 22); // disjoint
        let ab = a.union(&b);
        assert_eq!(ab.run_count(), 1);
        assert_eq!(ab.len(), 10);
        let abc = ab.union(&c);
        assert_eq!(abc.run_count(), 1);
        let abcd = abc.union(&d);
        assert_eq!(abcd.run_count(), 2);
        assert_eq!(abcd.len(), 13);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = IntervalSet::from_values([1u32, 5, 6]);
        assert_eq!(a.union(&IntervalSet::new()), a);
        assert_eq!(IntervalSet::new().union(&a), a);
    }

    #[test]
    fn singleton_and_range_constructors() {
        assert_eq!(
            IntervalSet::singleton(7).iter().collect::<Vec<_>>(),
            vec![7]
        );
        assert_eq!(IntervalSet::from_range(3, 3).len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn invalid_range_panics() {
        IntervalSet::from_range(5, 4);
    }

    proptest! {
        #[test]
        fn prop_union_equals_set_union(
            a in proptest::collection::btree_set(0u32..500, 0..100),
            b in proptest::collection::btree_set(0u32..500, 0..100),
        ) {
            let ia = IntervalSet::from_values(a.iter().copied());
            let ib = IntervalSet::from_values(b.iter().copied());
            let expected: BTreeSet<u32> = a.union(&b).copied().collect();
            let actual: Vec<u32> = ia.union(&ib).iter().collect();
            prop_assert_eq!(actual, expected.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn prop_membership_matches_btreeset(values in proptest::collection::btree_set(0u32..200, 0..80)) {
            let set = IntervalSet::from_values(values.iter().copied());
            prop_assert_eq!(set.len(), values.len());
            for v in 0u32..200 {
                prop_assert_eq!(set.contains(v), values.contains(&v));
            }
        }
    }
}
