//! Nuutila-style transitive closure with interval-set reachability.
//!
//! This is the closure pipeline of section 4.1 of the paper:
//!
//! 1. split the input edge list into weakly connected components
//!    (Union-Find) and renumber the nodes of each component densely;
//! 2. detect strongly connected components (Tarjan, which also yields the
//!    reverse topological order of the condensation);
//! 3. compute each component's reachable set as the union of its successors'
//!    reachable sets, represented as [`IntervalSet`]s of component indices;
//! 4. map the quotient-graph closure back to the original nodes.
//!
//! All steps other than the reachable-set unions are linear; the unions are
//! cheap because reachable component indices form long runs under the
//! reverse-topological numbering.

use crate::graph::DenseGraph;
use crate::interval_set::IntervalSet;
use crate::scc::tarjan_scc;
use crate::union_find::UnionFind;

/// Computes the transitive closure of the directed graph given as
/// `(source, target)` edges over arbitrary 64-bit identifiers.
///
/// The result contains every pair `(x, y)` such that `y` is reachable from
/// `x` by a path of **one or more** edges — i.e. the input edges are part of
/// the output. Nodes inside a cycle (or with a self-loop) reach themselves,
/// so reflexive pairs appear exactly for those nodes, matching the semantics
/// of applying `SCM-SCO` / `PRP-TRP` to a fixed-point. The output is sorted
/// and duplicate-free.
///
/// ```
/// use inferray_closure::transitive_closure;
/// let closed = transitive_closure(&[(1, 2), (2, 3)]);
/// assert_eq!(closed, vec![(1, 2), (1, 3), (2, 3)]);
/// ```
pub fn transitive_closure(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    if edges.is_empty() {
        return Vec::new();
    }

    // Step 1: weakly connected components over the full graph.
    let global = DenseGraph::from_edges(edges);
    let mut uf = UnionFind::new(global.node_count());
    for (u, v) in global.edges() {
        uf.union(u, v);
    }

    // Bucket edges by component root so each component is closed on its own
    // small, densely renumbered graph.
    let mut edges_by_root: Vec<Vec<(u64, u64)>> = vec![Vec::new(); global.node_count()];
    for &(s, o) in edges {
        let si = global.index_of(s).expect("source registered");
        let root = uf.find(si) as usize;
        edges_by_root[root].push((s, o));
    }

    let mut result = Vec::new();
    for component_edges in edges_by_root.into_iter().filter(|e| !e.is_empty()) {
        close_component(&component_edges, &mut result);
    }
    result.sort_unstable();
    result.dedup();
    result
}

/// Like [`transitive_closure`], but returns only the pairs **not** present in
/// the input edge list — i.e. the triples the reasoner must add.
pub fn transitive_closure_new_pairs(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let closed = transitive_closure(edges);
    let mut existing: Vec<(u64, u64)> = edges.to_vec();
    existing.sort_unstable();
    existing.dedup();
    closed
        .into_iter()
        .filter(|pair| existing.binary_search(pair).is_err())
        .collect()
}

/// Closes a single weakly connected component, appending its closure pairs
/// (in original identifiers) to `out`.
fn close_component(edges: &[(u64, u64)], out: &mut Vec<(u64, u64)>) {
    let graph = DenseGraph::from_edges(edges);
    let scc = tarjan_scc(&graph);
    let ncomp = scc.component_count();

    // Quotient graph: deduplicated inter-component successor lists, plus a
    // flag for components that contain an internal edge (cycle or self-loop).
    let mut quotient_succ: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
    let mut has_internal_edge = vec![false; ncomp];
    for (u, v) in graph.edges() {
        let cu = scc.component_of[u as usize];
        let cv = scc.component_of[v as usize];
        if cu == cv {
            has_internal_edge[cu as usize] = true;
        } else {
            quotient_succ[cu as usize].push(cv);
        }
    }
    for succ in &mut quotient_succ {
        succ.sort_unstable();
        succ.dedup();
    }

    // Reachable sets over component indices, computed in index order —
    // which is reverse topological order, so successors are always ready.
    let mut reach: Vec<IntervalSet> = vec![IntervalSet::new(); ncomp];
    for c in 0..ncomp {
        // A component reaches itself when it is "non-trivial": more than one
        // member, or a self-loop.
        let non_trivial = scc.members[c].len() > 1 || has_internal_edge[c];
        let mut set = IntervalSet::new();
        for &succ in &quotient_succ[c] {
            set.union_in_place(&reach[succ as usize]);
            set.insert(succ);
        }
        if non_trivial {
            set.insert(c as u32);
        }
        reach[c] = set;
    }

    // Expansion: every member of c reaches every member of every component
    // in reach[c].
    for (c, reachable) in reach.iter().enumerate().take(ncomp) {
        if reachable.is_empty() {
            continue;
        }
        for &u in &scc.members[c] {
            let from = graph.label(u);
            for d in reachable.iter() {
                for &v in &scc.members[d as usize] {
                    out.push((from, graph.label(v)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::bfs_closure;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_input() {
        assert!(transitive_closure(&[]).is_empty());
        assert!(transitive_closure_new_pairs(&[]).is_empty());
    }

    #[test]
    fn single_edge() {
        assert_eq!(transitive_closure(&[(1, 2)]), vec![(1, 2)]);
        assert!(transitive_closure_new_pairs(&[(1, 2)]).is_empty());
    }

    #[test]
    fn chain_produces_quadratic_closure() {
        // Chain of n nodes → n(n-1)/2 closure pairs.
        let n = 50u64;
        let edges: Vec<(u64, u64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let closed = transitive_closure(&edges);
        assert_eq!(closed.len(), (n * (n - 1) / 2) as usize);
        assert!(closed.contains(&(0, n - 1)));
        assert!(!closed.contains(&(n - 1, 0)));
        // New pairs = closure minus the original n-1 edges.
        let new = transitive_closure_new_pairs(&edges);
        assert_eq!(new.len(), closed.len() - (n as usize - 1));
    }

    #[test]
    fn paper_example_subclass_chain() {
        // human ⊑ mammal ⊑ animal ⇒ human ⊑ animal is the only new pair.
        let human = 100;
        let mammal = 200;
        let animal = 300;
        let new = transitive_closure_new_pairs(&[(human, mammal), (mammal, animal)]);
        assert_eq!(new, vec![(human, animal)]);
    }

    #[test]
    fn cycle_members_reach_everything_including_themselves() {
        let closed = transitive_closure(&[(1, 2), (2, 3), (3, 1)]);
        // All 9 ordered pairs over {1,2,3}.
        assert_eq!(closed.len(), 9);
        assert!(closed.contains(&(1, 1)));
        assert!(closed.contains(&(3, 2)));
    }

    #[test]
    fn self_loop_only_adds_the_reflexive_pair() {
        let closed = transitive_closure(&[(5, 5), (5, 6)]);
        assert_eq!(closed, vec![(5, 5), (5, 6)]);
    }

    #[test]
    fn acyclic_nodes_do_not_reach_themselves() {
        let closed = transitive_closure(&[(1, 2), (2, 3)]);
        assert!(!closed.iter().any(|&(a, b)| a == b));
    }

    #[test]
    fn disjoint_components_are_closed_independently() {
        let closed = transitive_closure(&[(1, 2), (2, 3), (10, 11), (11, 12)]);
        assert!(closed.contains(&(1, 3)));
        assert!(closed.contains(&(10, 12)));
        assert!(!closed.contains(&(1, 12)));
        assert_eq!(closed.len(), 6);
    }

    #[test]
    fn diamond_dag() {
        let closed = transitive_closure(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let expected: Vec<(u64, u64)> = vec![(1, 2), (1, 3), (1, 4), (2, 4), (3, 4)];
        assert_eq!(closed, expected);
    }

    #[test]
    fn duplicate_input_edges_are_harmless() {
        let closed = transitive_closure(&[(1, 2), (1, 2), (2, 3), (2, 3)]);
        assert_eq!(closed, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn cycle_with_tail_matches_bfs_oracle() {
        let edges = vec![(1u64, 2u64), (2, 3), (3, 1), (3, 4), (4, 5)];
        assert_eq!(transitive_closure(&edges), bfs_closure(&edges));
    }

    #[test]
    fn random_graphs_match_bfs_oracle() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..20 {
            let n_nodes = rng.gen_range(2..30u64);
            let n_edges = rng.gen_range(1..80usize);
            let edges: Vec<(u64, u64)> = (0..n_edges)
                .map(|_| (rng.gen_range(0..n_nodes), rng.gen_range(0..n_nodes)))
                .collect();
            assert_eq!(
                transitive_closure(&edges),
                bfs_closure(&edges),
                "mismatch on {edges:?}"
            );
        }
    }

    #[test]
    fn large_chain_scales() {
        let n = 2_000u64;
        let edges: Vec<(u64, u64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let closed = transitive_closure(&edges);
        assert_eq!(closed.len(), (n * (n - 1) / 2) as usize);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_bfs_oracle(edges in proptest::collection::vec((0u64..20, 0u64..20), 0..60)) {
            prop_assert_eq!(transitive_closure(&edges), bfs_closure(&edges));
        }

        #[test]
        fn prop_closure_is_transitive(edges in proptest::collection::vec((0u64..15, 0u64..15), 0..40)) {
            let closed = transitive_closure(&edges);
            let set: std::collections::HashSet<(u64, u64)> = closed.iter().copied().collect();
            for &(a, b) in &closed {
                for &(c, d) in &closed {
                    if b == c {
                        prop_assert!(set.contains(&(a, d)), "missing ({a},{d})");
                    }
                }
            }
        }
    }
}
