//! Union-Find (disjoint-set forest) with path halving and union by size.
//!
//! Used to split the schema graph into weakly connected components before
//! closure, "reducing sparsity" as the paper puts it: each component is
//! renumbered densely so the interval sets of the Nuutila stage stay small.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks no element.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when the two
    /// were previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// `true` when `a` and `b` belong to the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> usize {
        let root = self.find(x);
        self.size[root as usize] as usize
    }

    /// Groups elements by representative, returning the members of each set.
    /// Sets and members are in ascending order, so the output is
    /// deterministic.
    pub fn groups(&mut self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut by_root: Vec<Vec<u32>> = vec![Vec::new(); n];
        for x in 0..n as u32 {
            let root = self.find(x);
            by_root[root as usize].push(x);
        }
        by_root.into_iter().filter(|g| !g.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.size_of(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(1, 4));
        assert_eq!(uf.size_of(3), 4);
    }

    #[test]
    fn groups_cover_all_elements_exactly_once() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 7);
        uf.union(2, 4);
        uf.union(4, 6);
        let groups = uf.groups();
        let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        assert_eq!(groups.len(), uf.component_count());
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert!(uf.groups().is_empty());
    }

    proptest! {
        #[test]
        fn prop_component_count_matches_groups(ops in proptest::collection::vec((0u32..40, 0u32..40), 0..100)) {
            let mut uf = UnionFind::new(40);
            for (a, b) in ops {
                uf.union(a, b);
            }
            prop_assert_eq!(uf.component_count(), uf.groups().len());
            // connectivity is an equivalence: same group <=> connected
            let groups = uf.groups();
            for g in &groups {
                for &x in g {
                    prop_assert!(uf.connected(g[0], x));
                }
            }
        }
    }
}
