//! # inferray-closure
//!
//! Transitive closure of directed graphs, reproducing section 4.1 of the
//! Inferray paper (Subercaze et al., VLDB 2016).
//!
//! The paper observes that computing transitive closures (of
//! `rdfs:subClassOf`, `rdfs:subPropertyOf`, `owl:sameAs` and any property
//! declared `owl:TransitiveProperty`) with iterative rule application is what
//! kills fixed-point reasoners: every iteration re-derives a quadratic number
//! of duplicates. Inferray instead translates the relevant property table
//! into a dedicated graph layout *before* the rule loop and runs **Nuutila's
//! algorithm**:
//!
//! 1. split the graph into weakly connected components (Union-Find) and
//!    renumber the nodes of each component densely, so interval
//!    representations stay compact ([`union_find`], [`graph`]);
//! 2. detect strongly connected components (iterative Tarjan — emitted in
//!    reverse topological order of the condensation) ([`scc`]);
//! 3. walk the quotient DAG in that order, computing each component's
//!    reachable set as the union of its successors' reachable sets, stored as
//!    **sets of intervals** ([`interval_set`]) — compact and cheap to merge;
//! 4. map the closure of the quotient graph back to the original nodes
//!    ([`nuutila`]).
//!
//! [`naive`] contains two reference implementations: a BFS-per-node oracle
//! used by the tests, and the semi-naive iterative fixed-point closure that
//! stands in for the "apply the transitivity rule until nothing changes"
//! strategy of the baseline reasoners (Table 4 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod interval_set;
pub mod naive;
pub mod nuutila;
pub mod scc;
pub mod union_find;

pub use interval_set::IntervalSet;
pub use naive::{bfs_closure, iterative_closure};
pub use nuutila::{transitive_closure, transitive_closure_new_pairs};
pub use union_find::UnionFind;
