//! Strongly connected components — iterative Tarjan.
//!
//! Nuutila's closure needs (a) the SCC of every node and (b) the components
//! in **reverse topological order** of the condensation (a component is
//! produced only after every component reachable from it). Tarjan's
//! algorithm delivers exactly that order as a by-product. The implementation
//! is iterative (explicit stack) so that the deep `subClassOf` chains of the
//! Table 4 benchmark (25,000 nodes and more) cannot overflow the call stack.

use crate::graph::DenseGraph;

/// The SCC decomposition of a [`DenseGraph`].
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// Component index of every dense node. Component indices are assigned
    /// in the order Tarjan completes them, i.e. **reverse topological
    /// order** of the condensation: if component `a` has an edge to
    /// component `b` (a ≠ b) then `b < a`.
    pub component_of: Vec<u32>,
    /// Members (dense node indices) of every component.
    pub members: Vec<Vec<u32>>,
}

impl SccDecomposition {
    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }
}

/// Computes the SCC decomposition of `graph` with an iterative Tarjan.
pub fn tarjan_scc(graph: &DenseGraph) -> SccDecomposition {
    let n = graph.node_count();
    const UNVISITED: u32 = u32::MAX;

    let mut index_of = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component_of = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frame: (node, next successor offset to examine).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index_of[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        while let Some(&mut (v, ref mut child_idx)) = call_stack.last_mut() {
            if *child_idx == 0 {
                // First visit of v.
                index_of[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let successors = graph.successors(v);
            let mut recursed = false;
            while *child_idx < successors.len() {
                let w = successors[*child_idx];
                *child_idx += 1;
                if index_of[w as usize] == UNVISITED {
                    call_stack.push((w, 0));
                    recursed = true;
                    break;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index_of[w as usize]);
                }
            }
            if recursed {
                continue;
            }
            // All successors examined: v is finished.
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
            if lowlink[v as usize] == index_of[v as usize] {
                // v is the root of a component: pop it off the Tarjan stack.
                let component_index = members.len() as u32;
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    component_of[w as usize] = component_index;
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                component.sort_unstable();
                members.push(component);
            }
        }
    }

    SccDecomposition {
        component_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc_of(edges: &[(u64, u64)]) -> (DenseGraph, SccDecomposition) {
        let g = DenseGraph::from_edges(edges);
        let scc = tarjan_scc(&g);
        (g, scc)
    }

    #[test]
    fn empty_graph_has_no_components() {
        let (_, scc) = scc_of(&[]);
        assert_eq!(scc.component_count(), 0);
    }

    #[test]
    fn acyclic_chain_gives_singleton_components_in_reverse_topo_order() {
        // 1 → 2 → 3 → 4
        let (g, scc) = scc_of(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(scc.component_count(), 4);
        // Reverse topological order: the sink (4) is finished first.
        let comp_of_label = |label: u64| scc.component_of[g.index_of(label).unwrap() as usize];
        assert!(comp_of_label(4) < comp_of_label(3));
        assert!(comp_of_label(3) < comp_of_label(2));
        assert!(comp_of_label(2) < comp_of_label(1));
    }

    #[test]
    fn cycle_collapses_into_single_component() {
        // 1 → 2 → 3 → 1, plus 3 → 4
        let (g, scc) = scc_of(&[(1, 2), (2, 3), (3, 1), (3, 4)]);
        assert_eq!(scc.component_count(), 2);
        let c1 = scc.component_of[g.index_of(1).unwrap() as usize];
        let c2 = scc.component_of[g.index_of(2).unwrap() as usize];
        let c3 = scc.component_of[g.index_of(3).unwrap() as usize];
        let c4 = scc.component_of[g.index_of(4).unwrap() as usize];
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
        assert_ne!(c1, c4);
        // Edge c1 → c4 in the condensation, so c4 comes first.
        assert!(c4 < c1);
        assert_eq!(scc.members[c1 as usize].len(), 3);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let (g, scc) = scc_of(&[(7, 7), (7, 8)]);
        assert_eq!(scc.component_count(), 2);
        let c7 = scc.component_of[g.index_of(7).unwrap() as usize];
        assert_eq!(scc.members[c7 as usize].len(), 1);
    }

    #[test]
    fn two_disjoint_cycles() {
        let (g, scc) = scc_of(&[(1, 2), (2, 1), (10, 11), (11, 10)]);
        assert_eq!(scc.component_count(), 2);
        assert_ne!(
            scc.component_of[g.index_of(1).unwrap() as usize],
            scc.component_of[g.index_of(10).unwrap() as usize]
        );
    }

    #[test]
    fn reverse_topological_property_holds_on_a_dag() {
        // Diamond: 1 → {2, 3} → 4
        let (g, scc) = scc_of(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        assert_eq!(scc.component_count(), 4);
        for (u, v) in g.edges() {
            let cu = scc.component_of[u as usize];
            let cv = scc.component_of[v as usize];
            if cu != cv {
                assert!(cv < cu, "edge {u}→{v} violates reverse topological order");
            }
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let n = 200_000u64;
        let edges: Vec<(u64, u64)> = (0..n).map(|i| (i, i + 1)).collect();
        let g = DenseGraph::from_edges(&edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.component_count(), n as usize + 1);
    }

    #[test]
    fn every_node_belongs_to_exactly_one_component() {
        let edges = [(1u64, 2u64), (2, 3), (3, 1), (3, 4), (4, 5), (5, 4), (6, 6)];
        let (g, scc) = scc_of(&edges);
        let mut seen = vec![false; g.node_count()];
        for members in &scc.members {
            for &m in members {
                assert!(!seen[m as usize], "node {m} in two components");
                seen[m as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
