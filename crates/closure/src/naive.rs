//! Reference and baseline closure implementations.
//!
//! * [`bfs_closure`] — a per-node breadth-first search. Obviously correct,
//!   quadratic; the test oracle for the Nuutila implementation.
//! * [`iterative_closure`] — the strategy the paper argues *against*:
//!   applying the transitivity rule (`x p y ∧ y p z → x p z`) as an ordinary
//!   rule inside a fixed-point loop, de-duplicating with a hash set after
//!   every iteration. This is how the baseline reasoners (and systems such as
//!   OWLIM or WebPIE) handle transitivity, and it is what Table 4 compares
//!   Inferray's dedicated closure stage against. The returned statistics
//!   expose the duplicate explosion the paper describes.

use std::collections::{HashMap, HashSet, VecDeque};

/// Per-node BFS transitive closure. Output is sorted and duplicate-free and
/// follows the same "path of one or more edges" semantics as
/// [`crate::transitive_closure`].
pub fn bfs_closure(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut nodes: Vec<u64> = Vec::new();
    for &(s, o) in edges {
        adjacency.entry(s).or_default().push(o);
        nodes.push(s);
        nodes.push(o);
    }
    nodes.sort_unstable();
    nodes.dedup();

    let mut result = Vec::new();
    for &start in &nodes {
        let mut visited: HashSet<u64> = HashSet::new();
        let mut queue: VecDeque<u64> = VecDeque::new();
        // Seed with the successors (paths of length ≥ 1, not 0).
        if let Some(succ) = adjacency.get(&start) {
            for &v in succ {
                if visited.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        while let Some(v) = queue.pop_front() {
            if let Some(succ) = adjacency.get(&v) {
                for &w in succ {
                    if visited.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
        }
        for v in visited {
            result.push((start, v));
        }
    }
    result.sort_unstable();
    result.dedup();
    result
}

/// Statistics of a run of [`iterative_closure`], used by the Table 4 /
/// Figure 7 harness to report the cost of the naive strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterativeClosureStats {
    /// Number of fixed-point iterations executed.
    pub iterations: usize,
    /// Total pairs derived by the rule, *including* duplicates of already
    /// known pairs (the quantity that explodes on long chains).
    pub derived_including_duplicates: usize,
    /// Number of derived pairs that turned out to be duplicates.
    pub duplicates: usize,
}

/// Fixed-point transitive closure by iterative rule application
/// (semi-naive: each iteration joins the newly derived pairs against the
/// full relation on both sides), de-duplicating with a hash set.
///
/// Returns the closure (sorted, duplicate-free, same semantics as
/// [`crate::transitive_closure`]) together with duplicate-generation
/// statistics.
pub fn iterative_closure(edges: &[(u64, u64)]) -> (Vec<(u64, u64)>, IterativeClosureStats) {
    let mut stats = IterativeClosureStats::default();

    let mut all: HashSet<(u64, u64)> = edges.iter().copied().collect();
    let mut new: Vec<(u64, u64)> = all.iter().copied().collect();

    while !new.is_empty() {
        stats.iterations += 1;

        // Index the full relation by subject and by object.
        let mut by_subject: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut by_object: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(s, o) in &all {
            by_subject.entry(s).or_default().push(o);
            by_object.entry(o).or_default().push(s);
        }

        let mut derived: Vec<(u64, u64)> = Vec::new();
        for &(x, y) in &new {
            // (x, y) ∈ Δ, (y, z) ∈ T ⇒ (x, z)
            if let Some(zs) = by_subject.get(&y) {
                for &z in zs {
                    derived.push((x, z));
                }
            }
            // (w, x) ∈ T, (x, y) ∈ Δ ⇒ (w, y)
            if let Some(ws) = by_object.get(&x) {
                for &w in ws {
                    derived.push((w, y));
                }
            }
        }
        stats.derived_including_duplicates += derived.len();

        let mut next: Vec<(u64, u64)> = Vec::new();
        for pair in derived {
            if all.insert(pair) {
                next.push(pair);
            } else {
                stats.duplicates += 1;
            }
        }
        next.sort_unstable();
        next.dedup();
        new = next;
    }

    let mut result: Vec<(u64, u64)> = all.into_iter().collect();
    result.sort_unstable();
    result.dedup();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bfs_closure_on_chain() {
        let closed = bfs_closure(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(closed, vec![(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]);
    }

    #[test]
    fn bfs_closure_on_cycle_includes_reflexive_pairs() {
        let closed = bfs_closure(&[(1, 2), (2, 1)]);
        assert_eq!(closed, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
    }

    #[test]
    fn iterative_matches_bfs_on_small_graphs() {
        let cases: Vec<Vec<(u64, u64)>> = vec![
            vec![],
            vec![(1, 2)],
            vec![(1, 2), (2, 3), (3, 4), (4, 1)],
            vec![(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)],
            vec![(7, 7)],
        ];
        for edges in cases {
            let (closed, _) = iterative_closure(&edges);
            assert_eq!(closed, bfs_closure(&edges), "mismatch on {edges:?}");
        }
    }

    #[test]
    fn iterative_closure_reports_duplicate_explosion() {
        // A 40-node chain: the naive strategy re-derives many known pairs.
        let edges: Vec<(u64, u64)> = (0..40u64).map(|i| (i, i + 1)).collect();
        let (closed, stats) = iterative_closure(&edges);
        assert_eq!(closed.len(), (41 * 40) / 2);
        assert!(stats.iterations >= 2);
        assert!(
            stats.duplicates > closed.len(),
            "the naive strategy should generate more duplicates than results \
             (got {} duplicates for {} results)",
            stats.duplicates,
            closed.len()
        );
    }

    #[test]
    fn iteration_count_grows_logarithmically_with_chain_length() {
        // Semi-naive double-sided joins double the known path length each
        // round, so a chain of 2^k needs about k iterations.
        let edges: Vec<(u64, u64)> = (0..128u64).map(|i| (i, i + 1)).collect();
        let (_, stats) = iterative_closure(&edges);
        assert!(stats.iterations <= 10, "got {}", stats.iterations);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_iterative_matches_bfs(edges in proptest::collection::vec((0u64..12, 0u64..12), 0..30)) {
            let (closed, _) = iterative_closure(&edges);
            prop_assert_eq!(closed, bfs_closure(&edges));
        }
    }
}
