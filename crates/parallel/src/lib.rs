//! # inferray-parallel
//!
//! A small, persistent, scoped thread pool for the reasoner's parallel
//! stages (paper §4.3: "each rule is executed on a dedicated thread").
//!
//! The seed implementation spawned a fresh OS thread per rule on *every*
//! fixed-point iteration. This crate replaces that with one process-wide
//! pool ([`global`]) whose workers live for the whole run: an iteration
//! submits a batch of borrowed closures ([`ThreadPool::run_ordered`]),
//! workers drain them, and the caller gets the results back **in submission
//! order**, which keeps parallel materialization byte-for-byte deterministic.
//!
//! The calling thread participates in draining the queue while it waits, so
//! a pool of *n* workers gives *n + 1* lanes and a single-core machine
//! degrades gracefully to inline execution.
//!
//! ## Safety
//!
//! `run_ordered` accepts closures that borrow the caller's stack (`'env`
//! lifetime) and erases that lifetime to hand them to the long-lived
//! workers — the same contract as `crossbeam::thread::scope` or
//! `std::thread::scope`: the call does not return (even by unwinding)
//! until every submitted closure has finished, so the borrows outlive every
//! access. This is the only `unsafe` in the workspace and is confined to
//! one function.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop_job(&self) -> Option<Job> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

/// Tracks completion of one `run_ordered` batch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        })
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A persistent pool of worker threads executing scoped, ordered batches.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `threads` worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("inferray-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads (excluding the caller, which also helps).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs every task, in parallel across the pool, returning the results
    /// **in task order**. Tasks may borrow from the caller's scope; the call
    /// blocks until every task has completed, even if one of them panics
    /// (the first panic is then propagated to the caller).
    pub fn run_ordered<'env, R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        F: FnOnce() -> R + Send + 'env,
        R: Send + 'env,
    {
        let count = tasks.len();
        if count == 0 {
            return Vec::new();
        }
        if count == 1 {
            let mut tasks = tasks;
            return vec![(tasks.pop().expect("one task"))()];
        }

        let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let latch = Latch::new(count);

        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for (index, task) in tasks.into_iter().enumerate() {
                let slot = &slots[index];
                let panic_slot = &panic_slot;
                let latch = Arc::clone(&latch);
                let job = Box::new(move || {
                    match catch_unwind(AssertUnwindSafe(task)) {
                        Ok(value) => {
                            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                        }
                        Err(payload) => {
                            let mut first = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                            if first.is_none() {
                                *first = Some(payload);
                            }
                        }
                    }
                    latch.count_down();
                });
                // SAFETY: `run_ordered` blocks (below, via `latch.wait()`)
                // until every job has run to completion, so everything the
                // job borrows — the caller's `'env` data, `slots`,
                // `panic_slot` — strictly outlives its execution. The
                // transmute only erases the lifetime; the vtable/layout of
                // the boxed closure is unchanged.
                queue.push_back(unsafe { erase_job_lifetime(job) });
            }
            self.shared.job_available.notify_all();
        }

        // Help drain the queue, then wait for stragglers. NOTE: the caller
        // may pick up jobs from a *different* concurrent batch here; that is
        // fine — they are all self-contained.
        while let Some(job) = self.shared.pop_job() {
            job();
        }
        latch.wait();

        if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every job completed")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

/// Erases the borrow lifetime of a job so it can sit in the long-lived
/// queue. Sound only when the caller guarantees the job completes before
/// any borrowed data dies — see `run_ordered`.
unsafe fn erase_job_lifetime<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
    std::mem::transmute(job)
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .job_available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// The process-wide pool: sized by `INFERRAY_THREADS` when set, otherwise by
/// the machine's available parallelism. Created on first use and kept for
/// the lifetime of the process — iterations and runs share it (the
/// "persistent pool" of the update-stage redesign).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::env::var("INFERRAY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * 2
                }
            })
            .collect();
        assert_eq!(
            pool.run_ordered(tasks),
            (0..64).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let pool = ThreadPool::new(3);
        let data: Vec<String> = (0..32).map(|i| format!("item-{i}")).collect();
        let tasks: Vec<_> = data.iter().map(|s| move || s.len()).collect();
        let lengths = pool.run_ordered(tasks);
        assert_eq!(lengths.len(), data.len());
        assert_eq!(lengths[0], "item-0".len());
        assert_eq!(lengths[31], "item-31".len());
    }

    #[test]
    fn work_actually_spreads_over_threads() {
        // With blocking tasks, > 1 distinct thread must participate
        // (the caller itself counts as one lane).
        let pool = ThreadPool::new(4);
        let barrier = std::sync::Barrier::new(3);
        let tasks: Vec<_> = (0..3)
            .map(|_| {
                let barrier = &barrier;
                move || {
                    barrier.wait();
                    std::thread::current().id()
                }
            })
            .collect();
        let ids = pool.run_ordered(tasks);
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() >= 2, "expected parallel execution");
    }

    #[test]
    fn empty_and_single_batches() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.run_ordered(Vec::<fn() -> u8>::new()), Vec::<u8>::new());
        assert_eq!(pool.run_ordered(vec![|| 9u8]), vec![9]);
    }

    #[test]
    fn panics_propagate_after_the_batch_finishes() {
        let pool = ThreadPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                        i
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            pool.run_ordered(tasks)
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(completed.load(Ordering::SeqCst), 7, "other tasks still ran");
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let tasks: Vec<_> = (0..8).map(|i| move || i + round).collect();
            let out = pool.run_ordered(tasks);
            assert_eq!(out[7], 7 + round);
        }
    }

    #[test]
    fn global_pool_is_persistent() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}
