//! # inferray-parser
//!
//! RDF serialization support for the Inferray workspace: zero-copy,
//! chunk-splittable lexers for N-Triples and a Turtle subset, an N-Triples
//! writer, and two loaders that feed parsed triples straight into the
//! dictionary + vertically-partitioned store pair ("each triple is read from
//! the file system, dictionary encoding and dense numbering happen
//! simultaneously", paper §5.1):
//!
//! * [`ingest`] — the streaming parallel loader: documents are cut into
//!   chunks on statement boundaries, each chunk is lexed zero-copy and
//!   interned into a thread-local delta dictionary, and a deterministic
//!   merge assigns global dense identifiers so the result is byte-identical
//!   to a sequential load at any thread count (see `docs/ingest.md`);
//! * [`loader`] — the sequential compatibility layer (`load_ntriples`,
//!   `load_turtle`, `load_graph`, `load_triples`).
//!
//! The original Inferray reuses Jena's parsers; this reproduction keeps its
//! dependency set to the approved offline crates, so both grammars are
//! implemented from scratch in [`lex`]:
//!
//! * N-Triples — full support for the W3C grammar as used in practice
//!   (IRIs, blank nodes, plain/typed/language-tagged literals, `\uXXXX`
//!   escapes, comments);
//! * Turtle — the subset the benchmark ontologies need:
//!   `@prefix`/`PREFIX` declarations, prefixed names, the `a` keyword,
//!   `;`/`,` predicate and object lists, literals and comments. Anonymous
//!   blank nodes (`[...]`) and collections (`(...)`) are *not* supported and
//!   produce a clear error.
//!
//! Both lexers are statement oriented, yield borrowed term slices
//! ([`lex::TermRef`]) that allocate only when normalization demands it, and
//! report errors with 1-based document-global line numbers regardless of how
//! the input was chunked. [`ntriples::parse_ntriples`] and
//! [`turtle::parse_turtle`] remain as thin wrappers collecting owned
//! [`Triple`](inferray_model::Triple)s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod lex;
pub mod loader;
pub mod ntriples;
pub mod turtle;
pub mod writer;

pub use ingest::{Ingest, LoaderOptions};
pub use lex::{TermRef, TripleRef};
pub use loader::{load_graph, load_ntriples, load_triples, load_turtle, LoadError, LoadedDataset};
pub use ntriples::{parse_ntriples, parse_ntriples_line, ParseError};
pub use turtle::parse_turtle;
pub use writer::{to_ntriples_string, write_graph_ntriples, write_ntriples};
