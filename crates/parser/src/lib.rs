//! # inferray-parser
//!
//! RDF serialization support for the Inferray workspace: a streaming
//! N-Triples parser, a pragmatic Turtle-subset parser, an N-Triples writer,
//! and the [`loader`] that feeds parsed triples straight into the
//! dictionary + vertically-partitioned store pair ("each triple is read from
//! the file system, dictionary encoding and dense numbering happen
//! simultaneously", paper §5.1).
//!
//! The original Inferray reuses Jena's parsers; this reproduction keeps its
//! dependency set to the approved offline crates, so both parsers are written
//! from scratch:
//!
//! * [`ntriples`] — full support for the W3C N-Triples grammar as used in
//!   practice (IRIs, blank nodes, plain/typed/language-tagged literals,
//!   `\uXXXX` escapes, comments);
//! * [`turtle`] — the subset of Turtle the benchmark ontologies need:
//!   `@prefix`/`PREFIX` declarations, prefixed names, the `a` keyword,
//!   `;`/`,` predicate and object lists, literals and comments. Anonymous
//!   blank nodes (`[...]`) and collections (`(...)`) are *not* supported and
//!   produce a clear error.
//!
//! Both parsers are line/statement oriented, allocate only for the terms they
//! produce, and report errors with 1-based line numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loader;
pub mod ntriples;
pub mod turtle;
pub mod writer;

pub use loader::{load_graph, load_ntriples, load_triples, load_turtle, LoadError, LoadedDataset};
pub use ntriples::{parse_ntriples, parse_ntriples_line, ParseError};
pub use turtle::parse_turtle;
pub use writer::{to_ntriples_string, write_graph_ntriples, write_ntriples};
