//! N-Triples serialization.
//!
//! The writer is the inverse of [`crate::ntriples`]: every triple is emitted
//! as one canonical N-Triples statement, so `parse(write(g)) == g`. The
//! reasoners use it to dump materializations, and the dataset generators use
//! it to persist synthetic workloads.

use inferray_model::{Graph, Triple};
use std::io::{self, Write};

/// Writes triples as N-Triples statements, one per line.
pub fn write_ntriples<'a, W: Write>(
    writer: &mut W,
    triples: impl IntoIterator<Item = &'a Triple>,
) -> io::Result<usize> {
    let mut count = 0usize;
    for triple in triples {
        writeln!(writer, "{triple}")?;
        count += 1;
    }
    Ok(count)
}

/// Writes a whole [`Graph`] as N-Triples. Returns the number of statements.
pub fn write_graph_ntriples<W: Write>(writer: &mut W, graph: &Graph) -> io::Result<usize> {
    write_ntriples(writer, graph.iter())
}

/// Renders triples to an in-memory string (convenience for tests and
/// examples).
pub fn to_ntriples_string<'a>(triples: impl IntoIterator<Item = &'a Triple>) -> String {
    let mut out = Vec::new();
    write_ntriples(&mut out, triples).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("N-Triples output is valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntriples::parse_ntriples;
    use inferray_model::{vocab, Term};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/mammal",
        );
        g.insert(Triple::new(
            Term::iri("http://ex/Bart"),
            Term::iri("http://ex/says"),
            Term::lang_literal("Ay caramba \"dude\"", "en"),
        ));
        g.insert(Triple::new(
            Term::blank("b0"),
            Term::iri(vocab::RDF_TYPE),
            Term::iri("http://ex/human"),
        ));
        g
    }

    #[test]
    fn writer_and_parser_round_trip() {
        let g = sample_graph();
        let mut buffer = Vec::new();
        let written = write_graph_ntriples(&mut buffer, &g).unwrap();
        assert_eq!(written, 3);
        let text = String::from_utf8(buffer).unwrap();
        let reparsed: Graph = parse_ntriples(&text).unwrap().into_iter().collect();
        assert_eq!(reparsed, g);
    }

    #[test]
    fn to_string_helper_matches_writer() {
        let g = sample_graph();
        let triples: Vec<Triple> = g.iter().cloned().collect();
        let text = to_ntriples_string(&triples);
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.ends_with(" .")));
    }

    #[test]
    fn empty_graph_produces_empty_output() {
        let g = Graph::new();
        let mut buffer = Vec::new();
        assert_eq!(write_graph_ntriples(&mut buffer, &g).unwrap(), 0);
        assert!(buffer.is_empty());
    }
}
