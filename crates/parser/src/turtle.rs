//! A pragmatic Turtle-subset parser.
//!
//! The benchmark ontologies (and the examples) only need a small, common
//! slice of Turtle on top of N-Triples:
//!
//! * `@prefix p: <iri> .` and SPARQL-style `PREFIX p: <iri>` declarations;
//! * `@base <iri> .` (resolved by simple concatenation of relative IRIs);
//! * prefixed names (`rdfs:subClassOf`, `ex:Bart`, `:localDefault`);
//! * the `a` keyword for `rdf:type`;
//! * predicate lists (`;`) and object lists (`,`);
//! * IRIs, blank node labels, plain/typed/language-tagged literals, plus
//!   bare integer/decimal/boolean abbreviations;
//! * `#` comments.
//!
//! Anonymous blank nodes `[...]`, collections `(...)` and multi-line
//! (`"""`) literals are **not** supported and raise a [`ParseError`] that
//! says so. This keeps the parser small while covering every file the
//! test-suite and dataset generators produce.
//!
//! Since the streaming-ingest refactor the lexing lives in [`crate::lex`]
//! ([`lex_turtle_prologue`], [`TurtleChunkLexer`]), which yields borrowed
//! term slices and supports statement-boundary chunking for the parallel
//! loader; [`parse_turtle`] is a thin compatibility wrapper that runs the
//! same lexer over the whole document and collects owned [`Triple`]s.

use crate::lex::{lex_turtle_prologue, Chunk, TurtleChunkLexer};
use crate::ntriples::ParseError;
use inferray_model::Triple;

/// Parses a Turtle document (restricted to the subset described in the
/// module documentation), returning the triples in document order.
pub fn parse_turtle(input: &str) -> Result<Vec<Triple>, ParseError> {
    let prologue = lex_turtle_prologue(input)?;
    let body = Chunk {
        text: &input[prologue.body_offset..],
        first_line: prologue.body_first_line,
    };
    let mut lexer = TurtleChunkLexer::new(body, prologue.prefixes, prologue.base);
    let mut triples = Vec::new();
    while lexer.next_statement(|t| triples.push(t.into_triple()))? {}
    Ok(triples)
}

/// `true` when `iri` is an absolute IRI reference, i.e. starts with a scheme
/// (RFC 3986: `ALPHA *( ALPHA / DIGIT / "+" / "-" / "." ) ":"`). A colon
/// appearing after the first `/`, `?` or `#` — as in `foo/bar:baz` or
/// `#frag:x` — belongs to the path/query/fragment of a *relative* reference,
/// which must still be resolved against the base.
pub(crate) fn has_scheme(iri: &str) -> bool {
    let mut chars = iri.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    for c in chars {
        match c {
            ':' => return true,
            '/' | '?' | '#' => return false,
            c if c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.') => {}
            _ => return false,
        }
    }
    false
}

/// Resolves a relative `reference` against `base`. Path-relative references
/// keep the subset's documented simple concatenation (bases in the test
/// corpora end in `/` or `#`), but the two reference forms RFC 3986 anchors
/// higher up are honoured: a network-path reference (`//host/x`) keeps only
/// the base's scheme, and an absolute-path reference (`/x`) keeps the
/// base's scheme and authority.
pub(crate) fn resolve_against_base(base: &str, reference: &str) -> String {
    if let Some((scheme, after_authority)) = base.split_once("://") {
        if reference.starts_with("//") {
            return format!("{scheme}:{reference}");
        }
        if reference.starts_with('/') {
            let authority_len = after_authority.find('/').unwrap_or(after_authority.len());
            let prefix_len = scheme.len() + "://".len() + authority_len;
            return format!("{}{}", &base[..prefix_len], reference);
        }
    }
    format!("{base}{reference}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::{vocab, Term};

    #[test]
    fn parses_prefixes_and_a_keyword() {
        let doc = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .

ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDFS_SUB_CLASS_OF));
        assert_eq!(triples[1].predicate, Term::iri(vocab::RDF_TYPE));
        assert_eq!(triples[1].subject, Term::iri("http://example.org/Bart"));
    }

    #[test]
    fn sparql_style_prefix_and_default_prefix() {
        let doc = r#"
PREFIX : <http://example.org/>
:a :knows :b .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].object, Term::iri("http://example.org/b"));
    }

    #[test]
    fn predicate_and_object_lists() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o1 , ex:o2 ;
     ex:q ex:o3 ;
     a ex:C .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 4);
        assert_eq!(triples[0].object, Term::iri("http://ex.org/o1"));
        assert_eq!(triples[1].object, Term::iri("http://ex.org/o2"));
        assert_eq!(triples[2].predicate, Term::iri("http://ex.org/q"));
        assert_eq!(triples[3].predicate, Term::iri(vocab::RDF_TYPE));
    }

    #[test]
    fn literals_including_shorthand_numerics_and_booleans() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:name "Bart" ;
     ex:age 10 ;
     ex:height 1.22 ;
     ex:cool true ;
     ex:iq "85"^^xsd:integer ;
     ex:motto "Ay caramba"@en .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 6);
        assert_eq!(triples[0].object, Term::plain_literal("Bart"));
        assert_eq!(
            triples[1].object,
            Term::typed_literal("10", format!("{}integer", vocab::XSD_NS))
        );
        assert_eq!(
            triples[2].object,
            Term::typed_literal("1.22", format!("{}decimal", vocab::XSD_NS))
        );
        assert_eq!(
            triples[3].object,
            Term::typed_literal("true", format!("{}boolean", vocab::XSD_NS))
        );
        assert_eq!(
            triples[4].object,
            Term::typed_literal("85", format!("{}integer", vocab::XSD_NS))
        );
        assert_eq!(triples[5].object, Term::lang_literal("Ay caramba", "en"));
    }

    #[test]
    fn base_resolution_for_relative_iris() {
        let doc = r#"
@base <http://ex.org/> .
@prefix ex: <http://ex.org/> .
<a> ex:p <b> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/a"));
        assert_eq!(triples[0].object, Term::iri("http://ex.org/b"));
    }

    #[test]
    fn base_resolution_of_relative_iris_containing_colons() {
        // A ':' after '/' or '#' does not make the reference absolute: these
        // are relative and must be resolved against the base.
        let doc = r#"
@base <http://ex.org/> .
@prefix ex: <http://ex.org/> .
<foo/bar:baz> ex:p <#frag:x> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/foo/bar:baz"));
        assert_eq!(triples[0].object, Term::iri("http://ex.org/#frag:x"));
    }

    #[test]
    fn base_resolution_leaves_absolute_iris_alone() {
        let doc = r#"
@base <http://base.org/> .
@prefix ex: <http://ex.org/> .
<http://other.org/a> ex:p <mailto:bart@ex.org> , <urn:isbn:12-34> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://other.org/a"));
        assert_eq!(triples[0].object, Term::iri("mailto:bart@ex.org"));
        assert_eq!(triples[1].object, Term::iri("urn:isbn:12-34"));
    }

    #[test]
    fn rooted_and_network_path_references_resolve_against_the_base_origin() {
        // An absolute-path reference keeps the base's scheme + authority; a
        // network-path reference keeps only the scheme — neither is plain
        // concatenation onto a base with a path.
        let doc = r#"
@base <http://ex.org/a/> .
@prefix ex: <http://ex.org/> .
</rooted:x> ex:p <//other.org/y> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/rooted:x"));
        assert_eq!(triples[0].object, Term::iri("http://other.org/y"));
        assert_eq!(
            resolve_against_base("http://ex.org/a/", "/rooted:x"),
            "http://ex.org/rooted:x"
        );
        assert_eq!(
            resolve_against_base("http://ex.org/a/", "//other.org/y"),
            "http://other.org/y"
        );
        // A base without an authority falls back to concatenation.
        assert_eq!(resolve_against_base("tag:base/", "x"), "tag:base/x");
    }

    #[test]
    fn scheme_detection() {
        for absolute in ["http://a/b", "mailto:x", "urn:isbn:1", "a+b-c.d:rest"] {
            assert!(has_scheme(absolute), "{absolute} has a scheme");
        }
        for relative in [
            "foo/bar:baz",
            "#frag:x",
            "a?q=:v",
            "a",
            "",
            "1:x",
            "foo bar:x",
            "/rooted:x",
        ] {
            assert!(!has_scheme(relative), "{relative} is relative");
        }
    }

    #[test]
    fn a_keyword_without_trailing_whitespace() {
        // `a` directly followed by the object's opening '<' is still the
        // rdf:type keyword.
        let doc = "@prefix ex: <http://ex.org/> .\nex:Bart a<http://ex.org/human>.";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDF_TYPE));
        assert_eq!(triples[0].object, Term::iri("http://ex.org/human"));
    }

    #[test]
    fn prefixes_starting_with_a_are_not_the_keyword() {
        let doc = "@prefix a: <http://ex.org/> .\nex:s a:p a:o .\n@prefix ex: <http://ex.org/> .";
        // Declare ex: first so the subject resolves.
        let doc = &format!("@prefix ex: <http://ex.org/> .\n{doc}");
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].predicate, Term::iri("http://ex.org/p"));
        // And `a` in predicate position followed by whitespace still works.
        let doc = "@prefix ex: <http://ex.org/> .\nex:s a ex:C .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDF_TYPE));
    }

    #[test]
    fn comments_and_blank_nodes() {
        let doc = r#"
@prefix ex: <http://ex.org/> . # declare
# a full-line comment
_:x ex:p _:y . # trailing comment
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].subject, Term::blank("x"));
        assert_eq!(triples[0].object, Term::blank("y"));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse_turtle("foo:a foo:b foo:c .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn unsupported_constructs_give_clear_errors() {
        let err = parse_turtle("@prefix ex: <http://e/> .\nex:a ex:p [ ex:q ex:r ] .").unwrap_err();
        assert!(err.message.contains("not supported"));
        let err = parse_turtle("@prefix ex: <http://e/> .\nex:a ex:p ( ex:r ) .").unwrap_err();
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn local_names_containing_dots() {
        let doc = "@prefix ex: <http://ex.org/> .\nex:v1.2 ex:p ex:o .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/v1.2"));
    }
}
