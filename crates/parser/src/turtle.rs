//! A pragmatic Turtle-subset parser.
//!
//! The benchmark ontologies (and the examples) only need a small, common
//! slice of Turtle on top of N-Triples:
//!
//! * `@prefix p: <iri> .` and SPARQL-style `PREFIX p: <iri>` declarations;
//! * `@base <iri> .` (resolved by simple concatenation of relative IRIs);
//! * prefixed names (`rdfs:subClassOf`, `ex:Bart`, `:localDefault`);
//! * the `a` keyword for `rdf:type`;
//! * predicate lists (`;`) and object lists (`,`);
//! * IRIs, blank node labels, plain/typed/language-tagged literals, plus
//!   bare integer/decimal/boolean abbreviations;
//! * `#` comments.
//!
//! Anonymous blank nodes `[...]`, collections `(...)` and multi-line
//! (`"""`) literals are **not** supported and raise a [`ParseError`] that
//! says so. This keeps the parser small while covering every file the
//! test-suite and dataset generators produce.

use crate::ntriples::{Cursor, ParseError};
use inferray_model::{vocab, Term, Triple};
use std::collections::HashMap;

/// Parses a Turtle document (restricted to the subset described in the
/// module documentation), returning the triples in document order.
pub fn parse_turtle(input: &str) -> Result<Vec<Triple>, ParseError> {
    TurtleParser::new(input).parse_all()
}

struct TurtleParser<'a> {
    cursor: Cursor<'a>,
    prefixes: HashMap<String, String>,
    base: String,
    triples: Vec<Triple>,
}

impl<'a> TurtleParser<'a> {
    fn new(input: &'a str) -> Self {
        TurtleParser {
            cursor: Cursor::new(input, 1),
            prefixes: HashMap::new(),
            base: String::new(),
            triples: Vec::new(),
        }
    }

    fn parse_all(mut self) -> Result<Vec<Triple>, ParseError> {
        loop {
            self.skip_trivia();
            if self.cursor.is_done() {
                break;
            }
            if self.at_keyword("@prefix") || self.at_keyword("PREFIX") {
                self.parse_prefix()?;
            } else if self.at_keyword("@base") || self.at_keyword("BASE") {
                self.parse_base()?;
            } else {
                self.parse_statement()?;
            }
        }
        Ok(self.triples)
    }

    /// Skips whitespace and `#` comments (to end of line).
    fn skip_trivia(&mut self) {
        loop {
            self.cursor.skip_whitespace();
            if self.cursor.peek() == Some('#') {
                while let Some(c) = self.cursor.bump() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn at_keyword(&self, keyword: &str) -> bool {
        let mut probe = 0usize;
        for expected in keyword.chars() {
            match self.peek_at(probe) {
                Some(c) if c.eq_ignore_ascii_case(&expected) => probe += 1,
                _ => return false,
            }
        }
        // The keyword must be followed by whitespace.
        matches!(self.peek_at(probe), Some(c) if c.is_whitespace())
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        // Cursor has no lookahead API beyond peek; emulate with a clone of
        // the character index arithmetic by peeking the source directly.
        self.cursor.peek_offset(offset)
    }

    fn parse_prefix(&mut self) -> Result<(), ParseError> {
        let sparql_style = self.at_keyword("PREFIX");
        self.consume_keyword(if sparql_style { "PREFIX" } else { "@prefix" })?;
        self.skip_trivia();
        let mut name = String::new();
        while let Some(c) = self.cursor.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.cursor.error("malformed prefix name"));
            }
            name.push(c);
            self.cursor.bump();
        }
        self.cursor.expect(':')?;
        self.skip_trivia();
        let iri = match self.cursor.parse_iri()? {
            Term::Iri(iri) => iri,
            _ => unreachable!(),
        };
        self.skip_trivia();
        if !sparql_style {
            self.cursor.expect('.')?;
        } else if self.cursor.peek() == Some('.') {
            self.cursor.bump();
        }
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_base(&mut self) -> Result<(), ParseError> {
        let sparql_style = self.at_keyword("BASE");
        self.consume_keyword(if sparql_style { "BASE" } else { "@base" })?;
        self.skip_trivia();
        let iri = match self.cursor.parse_iri()? {
            Term::Iri(iri) => iri,
            _ => unreachable!(),
        };
        self.skip_trivia();
        if !sparql_style {
            self.cursor.expect('.')?;
        } else if self.cursor.peek() == Some('.') {
            self.cursor.bump();
        }
        self.base = iri;
        Ok(())
    }

    fn consume_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        for expected in keyword.chars() {
            match self.cursor.bump() {
                Some(c) if c.eq_ignore_ascii_case(&expected) => {}
                other => {
                    return Err(self
                        .cursor
                        .error(format!("expected keyword {keyword}, found {other:?}")))
                }
            }
        }
        Ok(())
    }

    /// Parses `subject predicateObjectList .`
    fn parse_statement(&mut self) -> Result<(), ParseError> {
        let subject = self.parse_node()?;
        loop {
            self.skip_trivia();
            let predicate = self.parse_predicate()?;
            loop {
                self.skip_trivia();
                let object = self.parse_node()?;
                let triple = Triple::new(subject.clone(), predicate.clone(), object);
                if !triple.is_valid() {
                    return Err(self.cursor.error(format!("invalid triple: {triple}")));
                }
                self.triples.push(triple);
                self.skip_trivia();
                match self.cursor.peek() {
                    Some(',') => {
                        self.cursor.bump();
                    }
                    _ => break,
                }
            }
            self.skip_trivia();
            match self.cursor.peek() {
                Some(';') => {
                    self.cursor.bump();
                    self.skip_trivia();
                    // A dangling ';' before '.' is allowed in Turtle.
                    if self.cursor.peek() == Some('.') {
                        self.cursor.bump();
                        return Ok(());
                    }
                }
                Some('.') => {
                    self.cursor.bump();
                    return Ok(());
                }
                other => {
                    return Err(self
                        .cursor
                        .error(format!("expected ';' or '.', found {other:?}")))
                }
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, ParseError> {
        // The `a` keyword: `a` followed by anything that cannot continue a
        // prefixed name (whitespace, `<` of an IRI, `"` of a literal, …).
        // Requiring whitespace specifically would wrongly reject compact
        // forms like `a<http://…>`, while `a:C` or `abc:x` must still parse
        // as prefixed names.
        if self.cursor.peek() == Some('a')
            && !matches!(self.peek_at(1), Some(c) if is_name_continuation(c))
        {
            self.cursor.bump();
            return Ok(Term::iri(vocab::RDF_TYPE));
        }
        self.parse_node()
    }

    /// Parses an IRI, prefixed name, blank node label or literal.
    fn parse_node(&mut self) -> Result<Term, ParseError> {
        match self.cursor.peek() {
            Some('<') => {
                let term = self.cursor.parse_iri()?;
                match term {
                    Term::Iri(iri) if !self.base.is_empty() && !has_scheme(&iri) => {
                        Ok(Term::iri(resolve_against_base(&self.base, &iri)))
                    }
                    other => Ok(other),
                }
            }
            Some('_') => self.cursor.parse_blank(),
            Some('"') => {
                // Parse the quoted part here so that the datatype suffix can
                // be either `^^<iri>` or a prefixed name (`^^xsd:integer`).
                let lexical = self.cursor.parse_quoted_string()?;
                match self.cursor.peek() {
                    Some('@') => {
                        self.cursor.bump();
                        let mut lang = String::new();
                        while matches!(self.peek_at(0), Some(c) if c.is_ascii_alphanumeric() || c == '-')
                        {
                            lang.push(self.cursor.bump().expect("peeked"));
                        }
                        if lang.is_empty() {
                            return Err(self.cursor.error("empty language tag"));
                        }
                        Ok(Term::lang_literal(lexical, lang))
                    }
                    Some('^') => {
                        self.cursor.bump();
                        self.cursor.expect('^')?;
                        let datatype = if self.cursor.peek() == Some('<') {
                            self.cursor.parse_iri()?
                        } else {
                            self.parse_prefixed_name()?
                        };
                        match datatype {
                            Term::Iri(dt) => Ok(Term::typed_literal(lexical, dt)),
                            _ => Err(self.cursor.error("malformed datatype annotation")),
                        }
                    }
                    _ => Ok(Term::plain_literal(lexical)),
                }
            }
            Some('[') => Err(self
                .cursor
                .error("anonymous blank nodes [...] are not supported by this Turtle subset")),
            Some('(') => Err(self
                .cursor
                .error("collections (...) are not supported by this Turtle subset")),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_numeric(),
            Some(_) => {
                if self.at_keyword_value("true") {
                    return Ok(Term::typed_literal(
                        "true",
                        format!("{}boolean", vocab::XSD_NS),
                    ));
                }
                if self.at_keyword_value("false") {
                    return Ok(Term::typed_literal(
                        "false",
                        format!("{}boolean", vocab::XSD_NS),
                    ));
                }
                self.parse_prefixed_name()
            }
            None => Err(self.cursor.error("unexpected end of input")),
        }
    }

    fn at_keyword_value(&mut self, keyword: &str) -> bool {
        if !self.at_keyword_loose(keyword) {
            return false;
        }
        for _ in 0..keyword.len() {
            self.cursor.bump();
        }
        true
    }

    fn at_keyword_loose(&self, keyword: &str) -> bool {
        let mut probe = 0usize;
        for expected in keyword.chars() {
            match self.peek_at(probe) {
                Some(c) if c == expected => probe += 1,
                _ => return false,
            }
        }
        match self.peek_at(probe) {
            None => true,
            Some(c) => c.is_whitespace() || c == '.' || c == ';' || c == ',',
        }
    }

    fn parse_numeric(&mut self) -> Result<Term, ParseError> {
        let mut text = String::new();
        while matches!(self.cursor.peek(), Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E')
        {
            // A '.' followed by whitespace/end is the statement terminator.
            if self.cursor.peek() == Some('.')
                && !matches!(self.peek_at(1), Some(c) if c.is_ascii_digit())
            {
                break;
            }
            text.push(self.cursor.bump().expect("peeked"));
        }
        if text.is_empty() {
            return Err(self.cursor.error("expected a numeric literal"));
        }
        let datatype = if text.contains('.') || text.contains('e') || text.contains('E') {
            format!("{}decimal", vocab::XSD_NS)
        } else {
            format!("{}integer", vocab::XSD_NS)
        };
        Ok(Term::typed_literal(text, datatype))
    }

    fn parse_prefixed_name(&mut self) -> Result<Term, ParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.cursor.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() || c == ';' || c == ',' || c == '.' {
                return Err(self
                    .cursor
                    .error(format!("expected a prefixed name, found {prefix:?}")));
            }
            prefix.push(c);
            self.cursor.bump();
        }
        self.cursor.expect(':')?;
        let mut local = String::new();
        while let Some(c) = self.cursor.peek() {
            if c.is_whitespace() || c == ';' || c == ',' {
                break;
            }
            if c == '.' {
                // A dot ends the local name only when followed by
                // whitespace/end (statement terminator).
                match self.peek_at(1) {
                    Some(next) if !next.is_whitespace() => {}
                    _ => break,
                }
            }
            local.push(c);
            self.cursor.bump();
        }
        let namespace = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.cursor.error(format!("undeclared prefix '{prefix}:'")))?;
        Ok(Term::iri(format!("{namespace}{local}")))
    }
}

/// `true` when `c` can continue a prefixed-name token started by a letter
/// (the PN_CHARS-ish set this subset accepts, plus the `:` that introduces
/// the local part and the `.`/`%` that may appear inside a name). Used to
/// decide whether a leading `a` is the `rdf:type` keyword or the start of a
/// name such as `a:C` or `abc:x`.
fn is_name_continuation(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '%')
}

/// `true` when `iri` is an absolute IRI reference, i.e. starts with a scheme
/// (RFC 3986: `ALPHA *( ALPHA / DIGIT / "+" / "-" / "." ) ":"`). A colon
/// appearing after the first `/`, `?` or `#` — as in `foo/bar:baz` or
/// `#frag:x` — belongs to the path/query/fragment of a *relative* reference,
/// which must still be resolved against the base.
fn has_scheme(iri: &str) -> bool {
    let mut chars = iri.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    for c in chars {
        match c {
            ':' => return true,
            '/' | '?' | '#' => return false,
            c if c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.') => {}
            _ => return false,
        }
    }
    false
}

/// Resolves a relative `reference` against `base`. Path-relative references
/// keep the subset's documented simple concatenation (bases in the test
/// corpora end in `/` or `#`), but the two reference forms RFC 3986 anchors
/// higher up are honoured: a network-path reference (`//host/x`) keeps only
/// the base's scheme, and an absolute-path reference (`/x`) keeps the
/// base's scheme and authority.
fn resolve_against_base(base: &str, reference: &str) -> String {
    if let Some((scheme, after_authority)) = base.split_once("://") {
        if reference.starts_with("//") {
            return format!("{scheme}:{reference}");
        }
        if reference.starts_with('/') {
            let authority_len = after_authority.find('/').unwrap_or(after_authority.len());
            let prefix_len = scheme.len() + "://".len() + authority_len;
            return format!("{}{}", &base[..prefix_len], reference);
        }
    }
    format!("{base}{reference}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::vocab;

    #[test]
    fn parses_prefixes_and_a_keyword() {
        let doc = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .

ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDFS_SUB_CLASS_OF));
        assert_eq!(triples[1].predicate, Term::iri(vocab::RDF_TYPE));
        assert_eq!(triples[1].subject, Term::iri("http://example.org/Bart"));
    }

    #[test]
    fn sparql_style_prefix_and_default_prefix() {
        let doc = r#"
PREFIX : <http://example.org/>
:a :knows :b .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].object, Term::iri("http://example.org/b"));
    }

    #[test]
    fn predicate_and_object_lists() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o1 , ex:o2 ;
     ex:q ex:o3 ;
     a ex:C .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 4);
        assert_eq!(triples[0].object, Term::iri("http://ex.org/o1"));
        assert_eq!(triples[1].object, Term::iri("http://ex.org/o2"));
        assert_eq!(triples[2].predicate, Term::iri("http://ex.org/q"));
        assert_eq!(triples[3].predicate, Term::iri(vocab::RDF_TYPE));
    }

    #[test]
    fn literals_including_shorthand_numerics_and_booleans() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:name "Bart" ;
     ex:age 10 ;
     ex:height 1.22 ;
     ex:cool true ;
     ex:iq "85"^^xsd:integer ;
     ex:motto "Ay caramba"@en .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 6);
        assert_eq!(triples[0].object, Term::plain_literal("Bart"));
        assert_eq!(
            triples[1].object,
            Term::typed_literal("10", format!("{}integer", vocab::XSD_NS))
        );
        assert_eq!(
            triples[2].object,
            Term::typed_literal("1.22", format!("{}decimal", vocab::XSD_NS))
        );
        assert_eq!(
            triples[3].object,
            Term::typed_literal("true", format!("{}boolean", vocab::XSD_NS))
        );
        assert_eq!(
            triples[4].object,
            Term::typed_literal("85", format!("{}integer", vocab::XSD_NS))
        );
        assert_eq!(triples[5].object, Term::lang_literal("Ay caramba", "en"));
    }

    #[test]
    fn base_resolution_for_relative_iris() {
        let doc = r#"
@base <http://ex.org/> .
@prefix ex: <http://ex.org/> .
<a> ex:p <b> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/a"));
        assert_eq!(triples[0].object, Term::iri("http://ex.org/b"));
    }

    #[test]
    fn base_resolution_of_relative_iris_containing_colons() {
        // A ':' after '/' or '#' does not make the reference absolute: these
        // are relative and must be resolved against the base.
        let doc = r#"
@base <http://ex.org/> .
@prefix ex: <http://ex.org/> .
<foo/bar:baz> ex:p <#frag:x> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/foo/bar:baz"));
        assert_eq!(triples[0].object, Term::iri("http://ex.org/#frag:x"));
    }

    #[test]
    fn base_resolution_leaves_absolute_iris_alone() {
        let doc = r#"
@base <http://base.org/> .
@prefix ex: <http://ex.org/> .
<http://other.org/a> ex:p <mailto:bart@ex.org> , <urn:isbn:12-34> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://other.org/a"));
        assert_eq!(triples[0].object, Term::iri("mailto:bart@ex.org"));
        assert_eq!(triples[1].object, Term::iri("urn:isbn:12-34"));
    }

    #[test]
    fn rooted_and_network_path_references_resolve_against_the_base_origin() {
        // An absolute-path reference keeps the base's scheme + authority; a
        // network-path reference keeps only the scheme — neither is plain
        // concatenation onto a base with a path.
        let doc = r#"
@base <http://ex.org/a/> .
@prefix ex: <http://ex.org/> .
</rooted:x> ex:p <//other.org/y> .
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/rooted:x"));
        assert_eq!(triples[0].object, Term::iri("http://other.org/y"));
        assert_eq!(
            resolve_against_base("http://ex.org/a/", "/rooted:x"),
            "http://ex.org/rooted:x"
        );
        assert_eq!(
            resolve_against_base("http://ex.org/a/", "//other.org/y"),
            "http://other.org/y"
        );
        // A base without an authority falls back to concatenation.
        assert_eq!(resolve_against_base("tag:base/", "x"), "tag:base/x");
    }

    #[test]
    fn scheme_detection() {
        for absolute in ["http://a/b", "mailto:x", "urn:isbn:1", "a+b-c.d:rest"] {
            assert!(has_scheme(absolute), "{absolute} has a scheme");
        }
        for relative in [
            "foo/bar:baz",
            "#frag:x",
            "a?q=:v",
            "a",
            "",
            "1:x",
            "foo bar:x",
            "/rooted:x",
        ] {
            assert!(!has_scheme(relative), "{relative} is relative");
        }
    }

    #[test]
    fn a_keyword_without_trailing_whitespace() {
        // `a` directly followed by the object's opening '<' is still the
        // rdf:type keyword.
        let doc = "@prefix ex: <http://ex.org/> .\nex:Bart a<http://ex.org/human>.";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDF_TYPE));
        assert_eq!(triples[0].object, Term::iri("http://ex.org/human"));
    }

    #[test]
    fn prefixes_starting_with_a_are_not_the_keyword() {
        let doc = "@prefix a: <http://ex.org/> .\nex:s a:p a:o .\n@prefix ex: <http://ex.org/> .";
        // Declare ex: first so the subject resolves.
        let doc = &format!("@prefix ex: <http://ex.org/> .\n{doc}");
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].predicate, Term::iri("http://ex.org/p"));
        // And `a` in predicate position followed by whitespace still works.
        let doc = "@prefix ex: <http://ex.org/> .\nex:s a ex:C .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDF_TYPE));
    }

    #[test]
    fn comments_and_blank_nodes() {
        let doc = r#"
@prefix ex: <http://ex.org/> . # declare
# a full-line comment
_:x ex:p _:y . # trailing comment
"#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].subject, Term::blank("x"));
        assert_eq!(triples[0].object, Term::blank("y"));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse_turtle("foo:a foo:b foo:c .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn unsupported_constructs_give_clear_errors() {
        let err = parse_turtle("@prefix ex: <http://e/> .\nex:a ex:p [ ex:q ex:r ] .").unwrap_err();
        assert!(err.message.contains("not supported"));
        let err = parse_turtle("@prefix ex: <http://e/> .\nex:a ex:p ( ex:r ) .").unwrap_err();
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn local_names_containing_dots() {
        let doc = "@prefix ex: <http://ex.org/> .\nex:v1.2 ex:p ex:o .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::iri("http://ex.org/v1.2"));
    }
}
