//! Loading parsed triples into the dictionary + store pair.
//!
//! This is the boundary between the textual world and the encoded world:
//! triples flow in (from a parser, a generator or an in-memory [`Graph`]),
//! each term is dictionary-encoded with dense numbering on the fly, and the
//! encoded pairs land directly in the vertically partitioned
//! [`TripleStore`]. When the single streaming pass discovers late that a term
//! used earlier as a resource is actually a property (see the dictionary's
//! *promotion* mechanism), the affected identifiers are patched in one linear
//! sweep before the store is finalized.

use crate::ingest::{Ingest, LoaderOptions};
use crate::ntriples::ParseError;
use inferray_dictionary::Dictionary;
use inferray_model::{Graph, Triple};
use inferray_store::TripleStore;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;

/// A fully loaded dataset: the dictionary and the finalized store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedDataset {
    /// The dictionary holding every term of the dataset.
    pub dictionary: Dictionary,
    /// The finalized (sorted, duplicate-free) triple store.
    pub store: TripleStore,
}

impl LoadedDataset {
    /// Number of distinct triples loaded.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when no triple was loaded.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

/// Errors produced while loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The input could not be parsed.
    Parse(ParseError),
    /// A triple could not be encoded (invalid term positions).
    Encode(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "parse error: {e}"),
            LoadError::Encode(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ParseError> for LoadError {
    fn from(e: ParseError) -> Self {
        LoadError::Parse(e)
    }
}

/// Loads decoded triples into a fresh dictionary + store. Accepts owned
/// triples (`Vec<Triple>`, draining iterators) as well as `&Triple`
/// iterators, so callers holding a buffer hand it over instead of keeping a
/// second copy alive for the duration of the load.
pub fn load_triples<I>(triples: I) -> Result<LoadedDataset, LoadError>
where
    I: IntoIterator,
    I::Item: Borrow<Triple>,
{
    let mut dictionary = Dictionary::new();
    let mut store = TripleStore::new();
    for triple in triples {
        let encoded = dictionary
            .encode_triple(triple.borrow())
            .map_err(|e| LoadError::Encode(e.to_string()))?;
        store.add_triple(encoded);
    }
    apply_promotions(&mut dictionary, &mut store);
    store.finalize();
    Ok(LoadedDataset { dictionary, store })
}

/// Loads an in-memory [`Graph`].
pub fn load_graph(graph: &Graph) -> Result<LoadedDataset, LoadError> {
    load_triples(graph.iter())
}

/// Parses an N-Triples document and loads it (sequential compatibility
/// wrapper over the streaming [`Ingest`] pipeline; see [`crate::ingest`] for
/// the parallel entry point).
pub fn load_ntriples(input: &str) -> Result<LoadedDataset, LoadError> {
    Ingest::with_options(LoaderOptions::sequential()).ntriples(input)
}

/// Parses a Turtle document (subset) and loads it (sequential compatibility
/// wrapper over the streaming [`Ingest`] pipeline).
pub fn load_turtle(input: &str) -> Result<LoadedDataset, LoadError> {
    Ingest::with_options(LoaderOptions::sequential()).turtle(input)
}

/// Rewrites stale resource identifiers to their promoted property
/// identifiers across every property table, then drains the promotion list.
/// Only the sequential one-pass loaders need this; the two-phase ingest
/// pipeline resolves promotions at dictionary-merge time, before any pair
/// buffer is built.
fn apply_promotions(dictionary: &mut Dictionary, store: &mut TripleStore) {
    if !dictionary.has_pending_promotions() {
        return;
    }
    let remap: HashMap<u64, u64> = dictionary.take_promotions().into_iter().collect();
    // Tables are still raw (unfinalized) at this point; the store patches
    // each flat pair buffer in place and the batch finalize that follows
    // restores the sort order.
    store.remap_ids(&remap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown;
    use inferray_model::ids::is_property_id;
    use inferray_model::vocab;

    #[test]
    fn load_ntriples_end_to_end() {
        let doc = "\
<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
<http://ex/mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/animal> .\n\
<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n";
        let loaded = load_ntriples(doc).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(
            loaded
                .store
                .table(wellknown::RDFS_SUB_CLASS_OF)
                .unwrap()
                .len(),
            2
        );
        // Every stored triple decodes back to a parsed triple.
        for t in loaded.store.iter_triples() {
            assert!(loaded.dictionary.decode_triple(t).is_some());
        }
    }

    #[test]
    fn duplicate_statements_are_collapsed() {
        let doc = "<http://a> <http://p> <http://b> .\n<http://a> <http://p> <http://b> .\n";
        let loaded = load_ntriples(doc).unwrap();
        assert_eq!(loaded.len(), 1);
    }

    #[test]
    fn load_turtle_document() {
        let doc = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human ; ex:age 10 .
"#;
        let loaded = load_turtle(doc).unwrap();
        assert_eq!(loaded.len(), 3);
    }

    #[test]
    fn promotion_is_patched_across_tables() {
        // `hasPart` appears first as the *subject* of a domain triple, then
        // as a predicate. After loading, both occurrences must use the same
        // (property) identifier.
        let mut g = Graph::new();
        g.insert_iris("http://ex/hasPart", vocab::RDFS_DOMAIN, "http://ex/Whole");
        g.insert_iris("http://ex/Car", "http://ex/hasPart", "http://ex/Wheel");
        let loaded = load_graph(&g).unwrap();
        let prop_id = loaded
            .dictionary
            .id_of_iri("http://ex/hasPart")
            .expect("registered");
        assert!(is_property_id(prop_id));
        // The domain table's subject must be the promoted property id.
        let domain = loaded.store.table(wellknown::RDFS_DOMAIN).unwrap();
        let subjects: Vec<u64> = domain.iter_pairs().map(|(s, _)| s).collect();
        assert_eq!(subjects, vec![prop_id]);
        // And the data triple lives in the table addressed by that same id.
        assert_eq!(loaded.store.table(prop_id).unwrap().len(), 1);
    }

    #[test]
    fn no_promotion_when_predicate_seen_first() {
        let mut g = Graph::new();
        g.insert_iris("http://ex/Car", "http://ex/hasPart", "http://ex/Wheel");
        g.insert_iris("http://ex/hasPart", vocab::RDFS_DOMAIN, "http://ex/Whole");
        let loaded = load_graph(&g).unwrap();
        let prop_id = loaded.dictionary.id_of_iri("http://ex/hasPart").unwrap();
        assert!(is_property_id(prop_id));
        let domain = loaded.store.table(wellknown::RDFS_DOMAIN).unwrap();
        assert!(domain.iter_pairs().any(|(s, _)| s == prop_id));
    }

    #[test]
    fn parse_errors_are_propagated() {
        let err = load_ntriples("<http://a> <http://p> .").unwrap_err();
        assert!(matches!(err, LoadError::Parse(_)));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input_loads_empty_dataset() {
        let loaded = load_ntriples("").unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.len(), 0);
    }
}
