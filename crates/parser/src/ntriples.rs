//! Streaming N-Triples parser.
//!
//! N-Triples is line oriented: one statement per line, terminated by `.`,
//! with `#` comments and blank lines allowed. Terms are written in their
//! canonical form (`<iri>`, `_:label`, `"literal"`, `"literal"@lang`,
//! `"literal"^^<datatype>`), which is also exactly what
//! [`inferray_model::Term`]'s `Display` produces — so parsing and writing
//! round-trip.

use inferray_model::term::unescape_ntriples;
use inferray_model::{Term, Triple};
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line (N-Triples) or statement (Turtle) number.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole N-Triples document, returning the triples in document
/// order.
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>, ParseError> {
    let mut triples = Vec::new();
    for (i, raw_line) in input.lines().enumerate() {
        if let Some(triple) = parse_ntriples_line(raw_line, i + 1)? {
            triples.push(triple);
        }
    }
    Ok(triples)
}

/// Parses a single N-Triples line. Returns `Ok(None)` for blank lines and
/// comments. `line_number` is only used for error reporting.
pub fn parse_ntriples_line(line: &str, line_number: usize) -> Result<Option<Triple>, ParseError> {
    let mut cursor = Cursor::new(line, line_number);
    cursor.skip_whitespace();
    if cursor.is_done() || cursor.peek() == Some('#') {
        return Ok(None);
    }
    let subject = cursor.parse_term()?;
    cursor.skip_whitespace();
    let predicate = cursor.parse_term()?;
    cursor.skip_whitespace();
    let object = cursor.parse_term()?;
    cursor.skip_whitespace();
    cursor.expect('.')?;
    cursor.skip_whitespace();
    if !cursor.is_done() && cursor.peek() != Some('#') {
        return Err(cursor.error("trailing content after '.'"));
    }
    let triple = Triple::new(subject, predicate, object);
    if !triple.is_valid() {
        return Err(ParseError::new(
            line_number,
            format!("invalid triple (check term positions): {triple}"),
        ));
    }
    Ok(Some(triple))
}

/// A character cursor shared by the N-Triples and Turtle parsers.
pub(crate) struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    source: &'a str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(source: &'a str, line: usize) -> Self {
        Cursor {
            chars: source.chars().collect(),
            pos: 0,
            line,
            source,
        }
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(
            self.line,
            format!("{} (in: {:?})", message.into(), self.source),
        )
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos >= self.chars.len()
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    /// Peeks `offset` characters ahead of the cursor (0 = same as `peek`).
    pub(crate) fn peek_offset(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    pub(crate) fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    pub(crate) fn expect(&mut self, expected: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            other => Err(self.error(format!("expected '{expected}', found {other:?}"))),
        }
    }

    /// Parses one N-Triples term starting at the cursor.
    pub(crate) fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some('<') => self.parse_iri(),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }

    pub(crate) fn parse_iri(&mut self) -> Result<Term, ParseError> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some(c) if c.is_whitespace() => {
                    return Err(self.error("whitespace inside IRI"));
                }
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI")),
            }
        }
        let unescaped = unescape_ntriples(&iri).ok_or_else(|| self.error("bad escape in IRI"))?;
        Ok(Term::iri(unescaped))
    }

    pub(crate) fn parse_blank(&mut self) -> Result<Term, ParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            label.push(self.bump().expect("peeked"));
        }
        // A trailing '.' belongs to the statement terminator, not the label.
        while label.ends_with('.') {
            label.pop();
            self.pos -= 1;
        }
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(Term::blank(label))
    }

    /// Parses the quoted, escaped part of a literal (`"…"`), returning the
    /// unescaped lexical form. Shared by the N-Triples and Turtle parsers.
    pub(crate) fn parse_quoted_string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut lexical = String::new();
        loop {
            match self.bump() {
                Some('\\') => {
                    lexical.push('\\');
                    match self.bump() {
                        Some(c) => lexical.push(c),
                        None => return Err(self.error("unterminated escape in literal")),
                    }
                }
                Some('"') => break,
                Some(c) => lexical.push(c),
                None => return Err(self.error("unterminated literal")),
            }
        }
        unescape_ntriples(&lexical).ok_or_else(|| self.error("bad escape sequence in literal"))
    }

    pub(crate) fn parse_literal(&mut self) -> Result<Term, ParseError> {
        let lexical = self.parse_quoted_string()?;
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                    lang.push(self.bump().expect("peeked"));
                }
                if lang.is_empty() {
                    return Err(self.error("empty language tag"));
                }
                Ok(Term::lang_literal(lexical, lang))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let datatype = self.parse_iri()?;
                match datatype {
                    Term::Iri(dt) => Ok(Term::typed_literal(lexical, dt)),
                    _ => unreachable!("parse_iri returns IRIs"),
                }
            }
            _ => Ok(Term::plain_literal(lexical)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::vocab;

    #[test]
    fn parses_simple_document() {
        let doc = "<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
                   # a comment\n\
                   \n\
                   <http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .";
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDFS_SUB_CLASS_OF));
        assert_eq!(triples[1].subject, Term::iri("http://ex/Bart"));
    }

    #[test]
    fn parses_blank_nodes_and_literals() {
        let doc = r#"_:b0 <http://ex/label> "hello world" .
_:b1 <http://ex/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b2 <http://ex/name> "José"@es ."#;
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(triples.len(), 3);
        assert_eq!(triples[0].subject, Term::blank("b0"));
        assert_eq!(triples[0].object, Term::plain_literal("hello world"));
        assert_eq!(
            triples[1].object,
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer")
        );
        assert_eq!(triples[2].object, Term::lang_literal("José", "es"));
    }

    #[test]
    fn parses_escapes_in_literals() {
        let doc = r#"<http://ex/a> <http://ex/p> "line1\nline2 \"quoted\" é" ."#;
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(
            triples[0].object,
            Term::plain_literal("line1\nline2 \"quoted\" é")
        );
    }

    #[test]
    fn round_trips_through_display() {
        let doc = r#"<http://ex/a> <http://ex/p> "x\ty"@en-GB .
_:n1 <http://ex/q> <http://ex/b> ."#;
        let triples = parse_ntriples(doc).unwrap();
        let rendered: String = triples.iter().map(|t| format!("{t}\n")).collect();
        let reparsed = parse_ntriples(&rendered).unwrap();
        assert_eq!(triples, reparsed);
    }

    #[test]
    fn blank_line_and_comment_only_lines_are_skipped() {
        assert_eq!(parse_ntriples("").unwrap().len(), 0);
        assert_eq!(parse_ntriples("   \n# only a comment\n").unwrap().len(), 0);
        assert!(parse_ntriples_line("  # c", 1).unwrap().is_none());
    }

    #[test]
    fn trailing_comment_after_dot_is_allowed() {
        let t = parse_ntriples_line("<http://a> <http://p> <http://b> . # done", 3).unwrap();
        assert!(t.is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "<http://ex/a> <http://ex/p> <http://ex/b> .\n<http://ex/a> <http://ex/p> .";
        let err = parse_ntriples(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "<http://a> <http://p> <http://b>",        // missing dot
            "<http://a> <http://p> <http://b> . junk", // trailing garbage
            "<http://a <http://p> <http://b> .",       // unterminated IRI
            "\"lit\" <http://p> <http://b> .",         // literal subject
            "<http://a> _:b <http://c> .",             // blank predicate
            "<http://a> <http://p> \"x\"@ .",          // empty language tag
        ] {
            assert!(
                parse_ntriples_line(bad, 1).is_err(),
                "expected an error for {bad:?}"
            );
        }
    }

    #[test]
    fn unicode_escape_in_iri() {
        let t = parse_ntriples_line("<http://ex/caf\\u00e9> <http://p> <http://o> .", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.subject, Term::iri("http://ex/café"));
    }
}
