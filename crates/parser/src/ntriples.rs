//! Streaming N-Triples parser.
//!
//! N-Triples is line oriented: one statement per line, terminated by `.`,
//! with `#` comments and blank lines allowed. Terms are written in their
//! canonical form (`<iri>`, `_:label`, `"literal"`, `"literal"@lang`,
//! `"literal"^^<datatype>`), which is also exactly what
//! [`inferray_model::Term`]'s `Display` produces — so parsing and writing
//! round-trip.
//!
//! Since the streaming-ingest refactor the actual lexing lives in
//! [`crate::lex`], which works on borrowed slices and is chunk-splittable for
//! the parallel loader; the functions here are thin compatibility wrappers
//! that collect owned [`Triple`]s.

use crate::lex::lex_ntriples_line;
use inferray_model::Triple;
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (for Turtle: the line the statement failed on).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole N-Triples document, returning the triples in document
/// order.
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>, ParseError> {
    let mut triples = Vec::new();
    for (i, raw_line) in input.lines().enumerate() {
        if let Some(triple) = lex_ntriples_line(raw_line, i + 1)? {
            triples.push(triple.into_triple());
        }
    }
    Ok(triples)
}

/// Parses a single N-Triples line. Returns `Ok(None)` for blank lines and
/// comments. `line_number` is only used for error reporting.
pub fn parse_ntriples_line(line: &str, line_number: usize) -> Result<Option<Triple>, ParseError> {
    Ok(lex_ntriples_line(line, line_number)?.map(|t| t.into_triple()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::{vocab, Term};

    #[test]
    fn parses_simple_document() {
        let doc = "<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
                   # a comment\n\
                   \n\
                   <http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .";
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].predicate, Term::iri(vocab::RDFS_SUB_CLASS_OF));
        assert_eq!(triples[1].subject, Term::iri("http://ex/Bart"));
    }

    #[test]
    fn parses_blank_nodes_and_literals() {
        let doc = r#"_:b0 <http://ex/label> "hello world" .
_:b1 <http://ex/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b2 <http://ex/name> "José"@es ."#;
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(triples.len(), 3);
        assert_eq!(triples[0].subject, Term::blank("b0"));
        assert_eq!(triples[0].object, Term::plain_literal("hello world"));
        assert_eq!(
            triples[1].object,
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer")
        );
        assert_eq!(triples[2].object, Term::lang_literal("José", "es"));
    }

    #[test]
    fn parses_escapes_in_literals() {
        let doc = r#"<http://ex/a> <http://ex/p> "line1\nline2 \"quoted\" é" ."#;
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(
            triples[0].object,
            Term::plain_literal("line1\nline2 \"quoted\" é")
        );
    }

    #[test]
    fn round_trips_through_display() {
        let doc = r#"<http://ex/a> <http://ex/p> "x\ty"@en-GB .
_:n1 <http://ex/q> <http://ex/b> ."#;
        let triples = parse_ntriples(doc).unwrap();
        let rendered: String = triples.iter().map(|t| format!("{t}\n")).collect();
        let reparsed = parse_ntriples(&rendered).unwrap();
        assert_eq!(triples, reparsed);
    }

    #[test]
    fn blank_line_and_comment_only_lines_are_skipped() {
        assert_eq!(parse_ntriples("").unwrap().len(), 0);
        assert_eq!(parse_ntriples("   \n# only a comment\n").unwrap().len(), 0);
        assert!(parse_ntriples_line("  # c", 1).unwrap().is_none());
    }

    #[test]
    fn trailing_comment_after_dot_is_allowed() {
        let t = parse_ntriples_line("<http://a> <http://p> <http://b> . # done", 3).unwrap();
        assert!(t.is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "<http://ex/a> <http://ex/p> <http://ex/b> .\n<http://ex/a> <http://ex/p> .";
        let err = parse_ntriples(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "<http://a> <http://p> <http://b>",        // missing dot
            "<http://a> <http://p> <http://b> . junk", // trailing garbage
            "<http://a <http://p> <http://b> .",       // unterminated IRI
            "\"lit\" <http://p> <http://b> .",         // literal subject
            "<http://a> _:b <http://c> .",             // blank predicate
            "<http://a> <http://p> \"x\"@ .",          // empty language tag
        ] {
            assert!(
                parse_ntriples_line(bad, 1).is_err(),
                "expected an error for {bad:?}"
            );
        }
    }

    #[test]
    fn unicode_escape_in_iri() {
        let t = parse_ntriples_line("<http://ex/caf\\u00e9> <http://p> <http://o> .", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.subject, Term::iri("http://ex/café"));
    }
}
