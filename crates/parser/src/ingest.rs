//! Streaming parallel ingest: text → dictionary + store without a serial
//! wall.
//!
//! The legacy load path parsed a whole document into an owned `Vec<Triple>`
//! (one `String` per term) and then dictionary-encoded it one triple at a
//! time — a strictly sequential preamble in front of the now-parallel
//! inference stages. [`Ingest`] replaces it with a three-phase pipeline
//! (documented in `docs/ingest.md`):
//!
//! 1. **Lex + local intern** (parallel): the document is cut into chunks on
//!    statement boundaries ([`crate::lex`]); each worker lexes its chunk
//!    zero-copy and interns every term occurrence into a *thread-local delta
//!    dictionary* (textual key → dense local index), recording only the
//!    chunk-local *intern events* that could change global dictionary state
//!    (first occurrence of a term, first property demand of a term first
//!    met as a resource) and each triple as three local indexes.
//! 2. **Merge** (sequential, but over distinct-term events only): because
//!    chunks are contiguous document slices, concatenating the per-chunk
//!    event lists replays the exact global first-occurrence order, so
//!    feeding them through the ordinary [`Dictionary`] assigns the *same
//!    dense identifiers, in the same order, with the same resource→property
//!    promotions* as the sequential loader — the byte-identical-dictionary
//!    invariant. Promotions are resolved here, before any pair buffer
//!    exists, so no table rewrite is ever needed.
//! 3. **Remap + table build** (parallel): each worker translates its local
//!    indexes through the merged dictionary and scatters `⟨s,o⟩` pairs into
//!    per-property buffers; the buffers are concatenated in chunk order
//!    (reproducing document order) and every property lane is sorted and
//!    deduplicated on its own pool lane with a reusable
//!    [`SortScratch`](inferray_sort::SortScratch).
//!
//! The chunk structure is invisible in the result: any thread count and any
//! chunk size produce a dictionary and store byte-identical to
//! [`LoaderOptions::sequential`] (and to the legacy loader), which the
//! `ingest_equivalence` proptest suite asserts.

use crate::lex::{
    lex_ntriples_chunk, lex_turtle_prologue, split_ntriples, split_turtle_body, Chunk, TermRef,
    TripleRef, TurtleChunkLexer,
};
use crate::loader::{LoadError, LoadedDataset};
use crate::ntriples::ParseError;
use inferray_dictionary::Dictionary;
use inferray_model::ids::{property_id_from_index, property_index};
use inferray_model::{vocab, FxHashMap, Term};
use inferray_parallel::ThreadPool;
use inferray_sort::SortScratch;
use inferray_store::{PropertyTable, TripleStore};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Default minimum chunk size: below this, splitting costs more than it
/// saves.
const DEFAULT_MIN_CHUNK_BYTES: usize = 64 * 1024;

/// How many chunks each pool lane gets by default. Mild oversubscription
/// evens out chunks whose statements are unusually cheap or expensive;
/// higher values only re-intern more shared terms per chunk.
const CHUNKS_PER_LANE: usize = 2;

/// Tuning knobs of the streaming ingest pipeline.
#[derive(Debug, Clone, Default)]
pub struct LoaderOptions {
    /// Worker lanes. `None` uses the process-wide pool
    /// ([`inferray_parallel::global`]); `Some(1)` is the sequential escape
    /// hatch; `Some(n)` spawns a dedicated pool of `n` lanes for this load.
    pub threads: Option<usize>,
    /// Approximate chunk size in bytes. `None` picks
    /// `max(64 KiB, len / (2 × lanes))`. Setting it explicitly overrides the
    /// per-lane cap (useful to stress chunk boundaries in tests).
    pub chunk_bytes: Option<usize>,
}

impl LoaderOptions {
    /// Options for the sequential escape hatch: one lane, one chunk.
    pub fn sequential() -> Self {
        LoaderOptions {
            threads: Some(1),
            chunk_bytes: None,
        }
    }

    /// Overrides the number of worker lanes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the approximate chunk size in bytes.
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = Some(bytes);
        self
    }
}

/// The streaming parallel loader: the text → [`LoadedDataset`] entry point.
///
/// ```
/// use inferray_parser::{Ingest, LoaderOptions};
///
/// let doc = "<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n";
/// let parallel = Ingest::new().ntriples(doc).unwrap();
/// let sequential = Ingest::with_options(LoaderOptions::sequential())
///     .ntriples(doc)
///     .unwrap();
/// assert_eq!(parallel, sequential); // byte-identical, always
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ingest {
    options: LoaderOptions,
}

impl Ingest {
    /// An ingest over the process-wide thread pool with default chunking.
    pub fn new() -> Self {
        Ingest::default()
    }

    /// An ingest with explicit options.
    pub fn with_options(options: LoaderOptions) -> Self {
        Ingest { options }
    }

    /// Parses and loads an N-Triples document.
    pub fn ntriples(&self, input: &str) -> Result<LoadedDataset, LoadError> {
        let pool = self.pool();
        let lanes = pool.lanes();
        let chunks = split_ntriples(input, self.chunk_target(input.len(), lanes));
        let tasks: Vec<_> = chunks
            .into_iter()
            .map(|chunk| move || lex_ntriples_into_sink(chunk))
            .collect();
        let outputs = run_tasks(pool.get(), tasks);
        assemble(outputs, &pool)
    }

    /// Parses and loads a Turtle (subset) document.
    pub fn turtle(&self, input: &str) -> Result<LoadedDataset, LoadError> {
        let pool = self.pool();
        let lanes = pool.lanes();
        let prologue = lex_turtle_prologue(input).map_err(LoadError::Parse)?;
        let body = Chunk {
            text: &input[prologue.body_offset..],
            first_line: prologue.body_first_line,
        };
        let chunks = match split_turtle_body(
            body.text,
            body.first_line,
            self.chunk_target(body.text.len(), lanes),
        ) {
            Some(chunks) => chunks,
            // Directives after the prologue: lex the body as one chunk, in
            // stream order.
            None => vec![body],
        };
        let tasks: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let prefixes = prologue.prefixes.clone();
                let base = prologue.base.clone();
                move || lex_turtle_into_sink(chunk, prefixes, base)
            })
            .collect();
        let outputs = run_tasks(pool.get(), tasks);
        assemble(outputs, &pool)
    }

    fn pool(&self) -> PoolHandle {
        match self.options.threads {
            Some(n) if n <= 1 => PoolHandle::Inline,
            // The caller participates in draining the queue, so a pool of
            // `n - 1` workers gives exactly `n` lanes.
            Some(n) => PoolHandle::Owned(ThreadPool::new(n - 1)),
            None => PoolHandle::Global(inferray_parallel::global()),
        }
    }

    fn chunk_target(&self, input_len: usize, lanes: usize) -> usize {
        match self.options.chunk_bytes {
            Some(bytes) => input_len.div_ceil(bytes.max(1)).max(1),
            None if lanes <= 1 => 1,
            None => (lanes * CHUNKS_PER_LANE)
                .min(input_len.div_ceil(DEFAULT_MIN_CHUNK_BYTES))
                .max(1),
        }
    }
}

/// Where phase work runs: inline, on the shared pool, or on a dedicated one.
enum PoolHandle {
    Inline,
    Global(&'static ThreadPool),
    Owned(ThreadPool),
}

impl PoolHandle {
    fn get(&self) -> Option<&ThreadPool> {
        match self {
            PoolHandle::Inline => None,
            PoolHandle::Global(pool) => Some(pool),
            PoolHandle::Owned(pool) => Some(pool),
        }
    }

    fn lanes(&self) -> usize {
        match self.get() {
            Some(pool) => pool.threads() + 1,
            None => 1,
        }
    }
}

fn run_tasks<R, F>(pool: Option<&ThreadPool>, tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    match pool {
        Some(pool) if tasks.len() > 1 => pool.run_ordered(tasks),
        _ => tasks.into_iter().map(|task| task()).collect(),
    }
}

// ---------------------------------------------------------------------------
// Phase 1: lex + thread-local delta dictionaries
// ---------------------------------------------------------------------------

/// How a term occurrence constrains the dictionary, mirroring
/// [`Dictionary::encode_triple`]'s choice between `encode_as_property` and
/// `encode_as_resource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Demand {
    Property,
    Resource,
}

/// The canonical textual keys of the schema terms whose *position* in a
/// triple forces property registration (see `Dictionary::encode_triple`).
struct SchemaKeys {
    rdf_type: String,
    /// Predicates whose subject is a property.
    subject_position: Vec<String>,
    /// Predicates whose object is a property.
    object_position: Vec<String>,
    /// Classes whose `rdf:type` instances are properties.
    property_classes: Vec<String>,
}

fn schema_keys() -> &'static SchemaKeys {
    static KEYS: OnceLock<SchemaKeys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let key = |iri: &str| format!("<{iri}>");
        SchemaKeys {
            rdf_type: key(vocab::RDF_TYPE),
            subject_position: [
                vocab::RDFS_SUB_PROPERTY_OF,
                vocab::RDFS_DOMAIN,
                vocab::RDFS_RANGE,
                vocab::OWL_EQUIVALENT_PROPERTY,
                vocab::OWL_INVERSE_OF,
            ]
            .iter()
            .map(|iri| key(iri))
            .collect(),
            object_position: [
                vocab::RDFS_SUB_PROPERTY_OF,
                vocab::OWL_EQUIVALENT_PROPERTY,
                vocab::OWL_INVERSE_OF,
            ]
            .iter()
            .map(|iri| key(iri))
            .collect(),
            property_classes: [
                vocab::RDF_PROPERTY,
                vocab::RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
                vocab::OWL_TRANSITIVE_PROPERTY,
                vocab::OWL_SYMMETRIC_PROPERTY,
                vocab::OWL_FUNCTIONAL_PROPERTY,
                vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY,
                vocab::OWL_DATATYPE_PROPERTY,
                vocab::OWL_OBJECT_PROPERTY,
            ]
            .iter()
            .map(|iri| key(iri))
            .collect(),
        }
    })
}

/// One chunk's thread-local delta dictionary plus its encoded statements.
#[derive(Default)]
struct ChunkSink {
    /// Textual key → dense local index.
    index: FxHashMap<String, u32>,
    /// Local index → owned term (chunk-local first-occurrence order).
    terms: Vec<Term>,
    /// Whether the term has already been demanded as a property locally.
    demanded_property: Vec<bool>,
    /// The ordered intern events that could change global dictionary state.
    events: Vec<(u32, Demand)>,
    /// Statements as `[s, p, o]` local indexes, in chunk order.
    triples: Vec<[u32; 3]>,
}

/// Reusable key-rendering buffers (one set per worker, zero steady-state
/// allocations).
#[derive(Default)]
struct KeyBufs {
    s: String,
    p: String,
    o: String,
}

impl ChunkSink {
    fn intern(&mut self, key: &str, term: &TermRef<'_>, demand: Demand) -> u32 {
        if let Some(&i) = self.index.get(key) {
            if demand == Demand::Property && !self.demanded_property[i as usize] {
                // First local property demand of a term first met as a
                // resource: the merge must see this transition.
                self.demanded_property[i as usize] = true;
                self.events.push((i, Demand::Property));
            }
            return i;
        }
        let i = u32::try_from(self.terms.len()).expect("chunk holds fewer than 2^32 terms");
        self.index.insert(key.to_string(), i);
        self.terms.push(term.to_term());
        self.demanded_property.push(demand == Demand::Property);
        self.events.push((i, demand));
        i
    }

    /// Interns one statement's terms (in the sequential loader's P, S, O
    /// event order) and records the encoded triple.
    fn add(&mut self, triple: &TripleRef<'_>, bufs: &mut KeyBufs) {
        bufs.p.clear();
        triple.predicate.write_key(&mut bufs.p);
        bufs.s.clear();
        triple.subject.write_key(&mut bufs.s);
        bufs.o.clear();
        triple.object.write_key(&mut bufs.o);

        let schema = schema_keys();
        let subject_is_property = (schema.subject_position.iter().any(|k| k == &bufs.p)
            || (bufs.p == schema.rdf_type && schema.property_classes.iter().any(|k| k == &bufs.o)))
            && triple.subject.is_iri();
        let object_is_property =
            schema.object_position.iter().any(|k| k == &bufs.p) && triple.object.is_iri();

        let p = self.intern(&bufs.p, &triple.predicate, Demand::Property);
        let s = self.intern(
            &bufs.s,
            &triple.subject,
            if subject_is_property {
                Demand::Property
            } else {
                Demand::Resource
            },
        );
        let o = self.intern(
            &bufs.o,
            &triple.object,
            if object_is_property {
                Demand::Property
            } else {
                Demand::Resource
            },
        );
        self.triples.push([s, p, o]);
    }
}

fn lex_ntriples_into_sink(chunk: Chunk<'_>) -> Result<ChunkSink, ParseError> {
    let mut sink = ChunkSink::default();
    let mut bufs = KeyBufs::default();
    lex_ntriples_chunk(chunk, |triple| sink.add(&triple, &mut bufs))?;
    Ok(sink)
}

fn lex_turtle_into_sink(
    chunk: Chunk<'_>,
    prefixes: HashMap<String, String>,
    base: String,
) -> Result<ChunkSink, ParseError> {
    let mut sink = ChunkSink::default();
    let mut bufs = KeyBufs::default();
    let mut lexer = TurtleChunkLexer::new(chunk, prefixes, base);
    while lexer.next_statement(|triple| sink.add(&triple, &mut bufs))? {}
    Ok(sink)
}

// ---------------------------------------------------------------------------
// Phases 2 + 3: deterministic merge, remap, parallel table build
// ---------------------------------------------------------------------------

fn assemble(
    outputs: Vec<Result<ChunkSink, ParseError>>,
    pool: &PoolHandle,
) -> Result<LoadedDataset, LoadError> {
    // The first failing chunk is also the earliest document position, so
    // errors are identical to the sequential pass.
    let mut chunks = Vec::with_capacity(outputs.len());
    for output in outputs {
        chunks.push(output.map_err(LoadError::Parse)?);
    }

    // Phase 2 — merge. Chunks are contiguous document slices, so replaying
    // the concatenated event lists through a fresh dictionary visits every
    // term in global first-occurrence order: identifiers, registration order
    // and promotions all match the sequential loader exactly. Every distinct
    // chunk term has a first-occurrence event, so the encode calls also fill
    // the chunk's local-index → global-id table as a side effect — no
    // second lookup pass over the (long) textual keys is needed.
    let mut dictionary = Dictionary::new();
    let mut remaps: Vec<Vec<u64>> = chunks
        .iter()
        .map(|chunk| vec![0u64; chunk.terms.len()])
        .collect();
    for (chunk, remap) in chunks.iter().zip(remaps.iter_mut()) {
        for &(index, demand) in &chunk.events {
            let term = &chunk.terms[index as usize];
            let id = match demand {
                Demand::Property => dictionary
                    .encode_as_property(term)
                    .map_err(|e| LoadError::Encode(e.to_string()))?,
                Demand::Resource => dictionary.encode_as_resource(term),
            };
            // A same-chunk promotion event overwrites the resource id with
            // the promoted property id.
            remap[index as usize] = id;
        }
    }
    // Resolve cross-chunk promotions: a term promoted in a later chunk must
    // remap to its property id in *every* chunk. (Same reason the sequential
    // loader patches tables — but here no pair buffer exists yet, so it is a
    // patch over the small remap tables instead.) Draining the list also
    // leaves the dictionary in the same state as the sequential loader.
    let promotions: FxHashMap<u64, u64> = dictionary.take_promotions().into_iter().collect();
    if !promotions.is_empty() {
        for remap in &mut remaps {
            for id in remap.iter_mut() {
                if let Some(&promoted) = promotions.get(id) {
                    *id = promoted;
                }
            }
        }
    }

    // Phase 3a — translate local indexes through the remap tables and
    // scatter pairs into per-property buffers, one task per chunk.
    let num_properties = dictionary.num_properties();
    let bucket_tasks: Vec<_> = chunks
        .iter()
        .zip(remaps.iter())
        .map(|(chunk, remap)| move || bucket_chunk(chunk, remap, num_properties))
        .collect();
    let buckets = run_tasks(pool.get(), bucket_tasks);

    // Gather the chunk buffers per property, in chunk order — the
    // concatenation is exactly the document-order pair sequence.
    let mut per_property: Vec<Vec<Vec<u64>>> = vec![Vec::new(); num_properties];
    for chunk_buckets in buckets {
        for (index, pairs) in chunk_buckets {
            per_property[index].push(pairs);
        }
    }

    // Phase 3b — build and finalize each property lane. Lanes are
    // independent, so distribute them over the pool (largest first for
    // balance) with one sort scratch per task.
    let mut jobs: Vec<(usize, Vec<Vec<u64>>)> = per_property
        .into_iter()
        .enumerate()
        .filter(|(_, buffers)| !buffers.is_empty())
        .collect();
    jobs.sort_by_key(|(index, buffers)| {
        let pairs: usize = buffers.iter().map(|b| b.len()).sum();
        (std::cmp::Reverse(pairs), *index)
    });
    let lanes = pool.lanes().min(jobs.len()).max(1);
    let mut groups: Vec<Vec<(usize, Vec<Vec<u64>>)>> = (0..lanes).map(|_| Vec::new()).collect();
    for (slot, job) in jobs.into_iter().enumerate() {
        groups[slot % lanes].push(job);
    }
    let table_tasks: Vec<_> = groups
        .into_iter()
        .map(|group| {
            move || {
                let mut scratch = SortScratch::new();
                group
                    .into_iter()
                    .map(|(index, buffers)| {
                        let total = buffers.iter().map(|b| b.len()).sum();
                        let mut pairs = Vec::with_capacity(total);
                        for buffer in &buffers {
                            pairs.extend_from_slice(buffer);
                        }
                        let mut table = PropertyTable::from_raw(pairs);
                        table.finalize_with(&mut scratch);
                        (index, table)
                    })
                    .collect::<Vec<_>>()
            }
        })
        .collect();
    let built = run_tasks(pool.get(), table_tasks);

    let mut store = TripleStore::new();
    let mut finished: Vec<(usize, PropertyTable)> = built.into_iter().flatten().collect();
    // Install in ascending property order so the slot array grows once and
    // matches the sequential loader's layout.
    finished.sort_unstable_by_key(|(index, _)| *index);
    for (index, table) in finished {
        store.set_table(property_id_from_index(index), table);
    }

    Ok(LoadedDataset { dictionary, store })
}

/// Translates one chunk's local indexes through its remap table and
/// scatters its statements into per-property pair buffers.
fn bucket_chunk(chunk: &ChunkSink, remap: &[u64], num_properties: usize) -> Vec<(usize, Vec<u64>)> {
    let mut lanes: Vec<Vec<u64>> = vec![Vec::new(); num_properties];
    for [s, p, o] in &chunk.triples {
        let lane = &mut lanes[property_index(remap[*p as usize])];
        lane.push(remap[*s as usize]);
        lane.push(remap[*o as usize]);
    }
    lanes
        .into_iter()
        .enumerate()
        .filter(|(_, pairs)| !pairs.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load_ntriples, load_turtle};
    use inferray_dictionary::wellknown;
    use inferray_model::ids::is_property_id;

    fn sample_nt() -> String {
        let mut doc = String::new();
        for i in 0..200 {
            doc.push_str(&format!(
                "<http://ex/s{i}> <http://ex/p{}> <http://ex/o{}> .\n",
                i % 7,
                i % 31
            ));
            if i % 10 == 0 {
                doc.push_str(&format!(
                    "<http://ex/s{i}> <http://ex/label> \"subject {i}\"@en .\n"
                ));
            }
        }
        doc
    }

    #[test]
    fn parallel_equals_sequential_equals_legacy() {
        let doc = sample_nt();
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .ntriples(&doc)
            .unwrap();
        let legacy = load_ntriples(&doc).unwrap();
        assert_eq!(sequential, legacy);
        for threads in [2, 3, 8] {
            for chunk_bytes in [64, 700, 1 << 20] {
                let parallel = Ingest::with_options(LoaderOptions {
                    threads: Some(threads),
                    chunk_bytes: Some(chunk_bytes),
                })
                .ntriples(&doc)
                .unwrap();
                assert_eq!(
                    parallel, sequential,
                    "threads={threads} chunk_bytes={chunk_bytes}"
                );
            }
        }
    }

    #[test]
    fn promotion_across_chunks_matches_sequential() {
        // `hasPart` is used as a plain resource early (one chunk) and as a
        // predicate much later (another chunk): the merge must promote it
        // and every chunk's pairs must use the promoted id.
        let mut doc = String::from(
            "<http://ex/hasPart> <http://www.w3.org/2000/01/rdf-schema#domain> <http://ex/Whole> .\n",
        );
        for i in 0..100 {
            doc.push_str(&format!("<http://ex/s{i}> <http://ex/p> <http://ex/o> .\n"));
        }
        doc.push_str("<http://ex/Car> <http://ex/hasPart> <http://ex/Wheel> .\n");

        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .ntriples(&doc)
            .unwrap();
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(4),
            chunk_bytes: Some(256),
        })
        .ntriples(&doc)
        .unwrap();
        assert_eq!(parallel, sequential);

        let prop_id = parallel.dictionary.id_of_iri("http://ex/hasPart").unwrap();
        assert!(is_property_id(prop_id));
        let domain = parallel.store.table(wellknown::RDFS_DOMAIN).unwrap();
        assert_eq!(
            domain.iter_pairs().map(|(s, _)| s).collect::<Vec<_>>(),
            vec![prop_id]
        );
        assert_eq!(parallel.store.table(prop_id).unwrap().len(), 1);
    }

    #[test]
    fn chunked_errors_match_sequential_errors() {
        let mut doc = sample_nt();
        doc.push_str("<http://ex/broken .\n");
        doc.push_str(&sample_nt());
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .ntriples(&doc)
            .unwrap_err();
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(4),
            chunk_bytes: Some(128),
        })
        .ntriples(&doc)
        .unwrap_err();
        match (&sequential, &parallel) {
            (LoadError::Parse(a), LoadError::Parse(b)) => assert_eq!(a, b),
            other => panic!("expected parse errors, got {other:?}"),
        }
    }

    #[test]
    fn turtle_ingest_matches_legacy_loader() {
        let doc = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .
ex:hasPart rdfs:domain ex:Whole .
ex:teaches owl:inverseOf ex:taughtBy .
ex:Car ex:hasPart ex:Wheel .
ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human ; ex:age 10 ; ex:name "Bart"@en .
ex:Prof ex:taughtBy ex:Bart .
"#;
        let legacy = load_turtle(doc).unwrap();
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .turtle(doc)
            .unwrap();
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(4),
            chunk_bytes: Some(64),
        })
        .turtle(doc)
        .unwrap();
        assert_eq!(sequential, legacy);
        assert_eq!(parallel, legacy);
        assert!(is_property_id(
            legacy
                .dictionary
                .id_of_iri("http://example.org/hasPart")
                .unwrap()
        ));
    }

    #[test]
    fn turtle_directive_glued_to_terminator_stays_identical() {
        // A mid-body directive with no whitespace after the preceding '.'
        // forces the single-chunk fallback; parallel must match sequential.
        let mut doc = String::from("@prefix ex: <http://ex.org/> .\n");
        for i in 0..50 {
            doc.push_str(&format!("ex:s{i} ex:p ex:o{i} .\n"));
        }
        doc.push_str("ex:a ex:p ex:b .@prefix zz: <http://zz.org/> .\nzz:c zz:q zz:d .\n");
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .turtle(&doc)
            .unwrap();
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(4),
            chunk_bytes: Some(16),
        })
        .turtle(&doc)
        .unwrap();
        assert_eq!(parallel, sequential);
        assert!(sequential.dictionary.id_of_iri("http://zz.org/q").is_some());
    }

    #[test]
    fn empty_inputs_load_empty_datasets() {
        for input in ["", "\n\n# only comments\n"] {
            let loaded = Ingest::new().ntriples(input).unwrap();
            assert!(loaded.is_empty());
            let loaded = Ingest::new().turtle(input).unwrap();
            assert!(loaded.is_empty());
        }
    }
}
