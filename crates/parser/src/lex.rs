//! Zero-copy, chunk-splittable lexers for N-Triples and the Turtle subset.
//!
//! The seed parsers materialized a `Vec<char>` per statement and an owned
//! [`Term`] per occurrence before any encoding happened, which made the text →
//! store pipeline allocation-bound and strictly sequential. This module is the
//! parser layer of the streaming ingest subsystem (see `docs/ingest.md`):
//!
//! * [`TermRef`] / [`TripleRef`] — borrowed term forms. A term borrows its
//!   slices straight out of the input document (`Cow::Borrowed`) and only
//!   owns memory when the textual form needs normalization (escape sequences,
//!   prefixed-name expansion, base resolution, language-tag lowercasing).
//! * [`lex_ntriples_line`] — one N-Triples statement, zero-copy.
//! * [`split_ntriples`] — cuts a document into balanced chunks on line
//!   boundaries, each carrying its 1-based first line number so parse errors
//!   are identical no matter how the document was chunked.
//! * [`lex_turtle_prologue`] / [`split_turtle_body`] / [`TurtleChunkLexer`] —
//!   the same for the Turtle subset: the prologue (leading `@prefix`/`@base`
//!   directives) is lexed once, then the body is cut on *top-level statement
//!   boundaries* and every chunk is lexed against a snapshot of the prologue.
//!   Documents that declare directives after the prologue are detected by the
//!   splitter and fall back to a single chunk, where the chunk lexer handles
//!   mid-document directives itself.
//!
//! The legacy `parse_ntriples` / `parse_turtle` entry points are thin
//! wrappers over these lexers that collect owned [`Triple`]s.

use crate::ntriples::ParseError;
use crate::turtle::{has_scheme, resolve_against_base};
use inferray_model::term::{escape_ntriples, unescape_ntriples, XSD_STRING};
use inferray_model::{vocab, Term, Triple};
use std::borrow::Cow;
use std::collections::HashMap;

/// A borrowed RDF term: the zero-copy analogue of [`Term`].
///
/// Every `Cow` is `Borrowed` when the input slice already is the canonical
/// form and `Owned` only when normalization allocated (escapes, prefixed-name
/// expansion, base resolution, language lowercasing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermRef<'a> {
    /// An IRI without the angle brackets.
    Iri(Cow<'a, str>),
    /// A blank node label without the `_:` prefix.
    Blank(Cow<'a, str>),
    /// A literal, mirroring [`Term::Literal`].
    Literal {
        /// The unescaped lexical form.
        lexical: Cow<'a, str>,
        /// Datatype IRI, if any.
        datatype: Option<Cow<'a, str>>,
        /// Language tag (already lower-cased), if any.
        language: Option<Cow<'a, str>>,
    },
}

impl<'a> TermRef<'a> {
    /// `true` when the term is an IRI (the only kind valid in predicate
    /// position).
    pub fn is_iri(&self) -> bool {
        matches!(self, TermRef::Iri(_))
    }

    /// `true` when the term is a literal (invalid in subject position).
    pub fn is_literal(&self) -> bool {
        matches!(self, TermRef::Literal { .. })
    }

    /// Converts into an owned [`Term`].
    pub fn into_term(self) -> Term {
        match self {
            TermRef::Iri(iri) => Term::Iri(iri.into_owned()),
            TermRef::Blank(label) => Term::BlankNode(label.into_owned()),
            TermRef::Literal {
                lexical,
                datatype,
                language,
            } => Term::Literal {
                lexical: lexical.into_owned(),
                datatype: datatype.map(Cow::into_owned),
                language: language.map(Cow::into_owned),
            },
        }
    }

    /// Clones into an owned [`Term`].
    pub fn to_term(&self) -> Term {
        self.clone().into_term()
    }

    /// Appends the canonical N-Triples textual form — exactly what
    /// `Term::to_string()` produces, i.e. the dictionary's interning key —
    /// to `out` without allocating.
    pub fn write_key(&self, out: &mut String) {
        match self {
            TermRef::Iri(iri) => {
                out.push('<');
                out.push_str(iri);
                out.push('>');
            }
            TermRef::Blank(label) => {
                out.push_str("_:");
                out.push_str(label);
            }
            TermRef::Literal {
                lexical,
                datatype,
                language,
            } => {
                out.push('"');
                if lexical
                    .bytes()
                    .any(|b| matches!(b, b'\\' | b'"' | b'\n' | b'\r' | b'\t'))
                {
                    out.push_str(&escape_ntriples(lexical));
                } else {
                    out.push_str(lexical);
                }
                out.push('"');
                if let Some(lang) = language {
                    out.push('@');
                    out.push_str(lang);
                } else if let Some(dt) = datatype {
                    if dt != XSD_STRING {
                        out.push_str("^^<");
                        out.push_str(dt);
                        out.push('>');
                    }
                }
            }
        }
    }
}

/// A borrowed triple, the zero-copy analogue of [`Triple`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleRef<'a> {
    /// Subject term.
    pub subject: TermRef<'a>,
    /// Predicate term.
    pub predicate: TermRef<'a>,
    /// Object term.
    pub object: TermRef<'a>,
}

impl<'a> TripleRef<'a> {
    /// Converts into an owned [`Triple`].
    pub fn into_triple(self) -> Triple {
        Triple::new(
            self.subject.into_term(),
            self.predicate.into_term(),
            self.object.into_term(),
        )
    }
}

// ---------------------------------------------------------------------------
// The byte cursor
// ---------------------------------------------------------------------------

/// A byte-offset cursor over a `&str` slice that tracks 1-based line numbers
/// and the start of the current line (for error context). Unlike the seed's
/// `Vec<char>` cursor it never allocates.
pub(crate) struct Scan<'a> {
    input: &'a str,
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Scan<'a> {
    pub(crate) fn new(input: &'a str, first_line: usize) -> Self {
        Scan {
            input,
            pos: 0,
            line: first_line,
            line_start: 0,
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos >= self.input.len()
    }

    pub(crate) fn line(&self) -> usize {
        self.line
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    #[inline]
    pub(crate) fn peek(&self) -> Option<char> {
        let b = *self.input.as_bytes().get(self.pos)?;
        if b < 0x80 {
            // ASCII fast path: no UTF-8 decoding (the overwhelming majority
            // of RDF surface syntax is ASCII).
            Some(b as char)
        } else {
            self.input[self.pos..].chars().next()
        }
    }

    /// Peeks the character `offset` *characters* (not bytes) ahead.
    pub(crate) fn peek_at(&self, offset: usize) -> Option<char> {
        self.input[self.pos..].chars().nth(offset)
    }

    #[inline]
    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    pub(crate) fn skip_whitespace(&mut self) {
        let bytes = self.input.as_bytes();
        loop {
            match bytes.get(self.pos) {
                Some(b' ' | b'\t' | b'\r') => self.pos += 1,
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                Some(b) if *b >= 0x80 => {
                    // Rare non-ASCII whitespace (NBSP etc.).
                    match self.peek() {
                        Some(c) if c.is_whitespace() => {
                            self.pos += c.len_utf8();
                        }
                        _ => return,
                    }
                }
                _ => return,
            }
        }
    }

    /// Skips whitespace and `#` comments (to end of line).
    pub(crate) fn skip_trivia(&mut self) {
        loop {
            self.skip_whitespace();
            if self.peek() == Some('#') {
                while let Some(c) = self.bump() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                return;
            }
        }
    }

    pub(crate) fn expect(&mut self, expected: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            other => Err(self.error(format!("expected '{expected}', found {other:?}"))),
        }
    }

    /// `true` when the input at the cursor starts with `prefix` (byte-exact).
    pub(crate) fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    /// The text of the line the cursor currently sits on (error context).
    fn current_line_text(&self) -> &'a str {
        let rest = &self.input[self.line_start..];
        rest.lines().next().unwrap_or(rest)
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(
            self.line,
            format!("{} (in: {:?})", message.into(), self.current_line_text()),
        )
    }

    // -- term lexers --------------------------------------------------------

    /// Lexes `<iri>`, borrowing the inner slice unless it contains escapes.
    pub(crate) fn lex_iri(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.expect('<')?;
        let start = self.pos;
        let mut has_escape = false;
        let bytes = self.input.as_bytes();
        loop {
            // Byte loop: every delimiter is ASCII, and multi-byte UTF-8
            // continuation bytes (>= 0x80) can simply be skipped.
            match bytes.get(self.pos) {
                Some(b'>') => break,
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    return Err(self.error("whitespace inside IRI"));
                }
                Some(b) => {
                    if *b == b'\\' {
                        has_escape = true;
                    } else if *b >= 0xC0 {
                        // Lead byte of a multi-byte character (a char
                        // boundary, so decoding is safe): rare non-ASCII
                        // whitespace must still be rejected. Continuation
                        // bytes (0x80..0xC0) are skipped blindly.
                        if matches!(self.peek(), Some(c) if c.is_whitespace()) {
                            return Err(self.error("whitespace inside IRI"));
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated IRI")),
            }
        }
        let raw = &self.input[start..self.pos];
        self.pos += 1; // consume '>'
        if has_escape {
            match unescape_ntriples(raw) {
                Some(unescaped) => Ok(Cow::Owned(unescaped)),
                None => Err(self.error("bad escape in IRI")),
            }
        } else {
            Ok(Cow::Borrowed(raw))
        }
    }

    /// Lexes `_:label`, always borrowing.
    pub(crate) fn lex_blank(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let start = self.pos;
        loop {
            // ASCII fast path for the common label characters.
            match self.input.as_bytes().get(self.pos) {
                Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') => {
                    self.pos += 1;
                }
                Some(b) if *b >= 0x80 => match self.peek() {
                    Some(c) if c.is_alphanumeric() => {
                        self.pos += c.len_utf8();
                    }
                    _ => break,
                },
                _ => break,
            }
        }
        let mut end = self.pos;
        // A trailing '.' belongs to the statement terminator, not the label.
        while end > start && self.input.as_bytes()[end - 1] == b'.' {
            end -= 1;
            self.pos -= 1;
        }
        if end == start {
            return Err(self.error("empty blank node label"));
        }
        Ok(Cow::Borrowed(&self.input[start..end]))
    }

    /// Lexes the quoted, escaped part of a literal (`"…"`), returning the
    /// unescaped lexical form (borrowed when no escape occurs).
    pub(crate) fn lex_quoted_string(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.expect('"')?;
        let start = self.pos;
        let mut has_escape = false;
        let bytes = self.input.as_bytes();
        loop {
            // Byte loop: the delimiters (`"`, `\`) are ASCII; continuation
            // bytes of multi-byte characters pass straight through.
            match bytes.get(self.pos) {
                Some(b'\\') => {
                    has_escape = true;
                    self.pos += 1;
                    if self.bump().is_none() {
                        return Err(self.error("unterminated escape in literal"));
                    }
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.error("unterminated literal")),
            }
        }
        let raw = &self.input[start..self.pos - 1];
        if has_escape {
            match unescape_ntriples(raw) {
                Some(unescaped) => Ok(Cow::Owned(unescaped)),
                None => Err(self.error("bad escape sequence in literal")),
            }
        } else {
            Ok(Cow::Borrowed(raw))
        }
    }

    /// Lexes the `@lang` suffix after a quoted string (cursor sits on `@`).
    fn lex_language(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.bump(); // '@'
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        // The N-Triples grammar's BCP 47 shape: `[a-zA-Z]+('-'[a-zA-Z0-9]+)*`
        // — rejects the empty tag, leading digits, and leading/trailing/
        // doubled '-'.
        if !inferray_model::term::valid_language_tag(raw) {
            return Err(self.error(format!("malformed language tag '@{raw}'")));
        }
        // RDF term equality lower-cases language tags (see Term::lang_literal).
        if raw.bytes().any(|b| b.is_ascii_uppercase()) {
            Ok(Cow::Owned(raw.to_ascii_lowercase()))
        } else {
            Ok(Cow::Borrowed(raw))
        }
    }

    /// Lexes a full N-Triples literal (quoted string plus optional `@lang` or
    /// `^^<datatype>` suffix).
    pub(crate) fn lex_literal(&mut self) -> Result<TermRef<'a>, ParseError> {
        let lexical = self.lex_quoted_string()?;
        match self.peek() {
            Some('@') => {
                let language = self.lex_language()?;
                Ok(TermRef::Literal {
                    lexical,
                    datatype: None,
                    language: Some(language),
                })
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let datatype = self.lex_iri()?;
                Ok(TermRef::Literal {
                    lexical,
                    datatype: Some(datatype),
                    language: None,
                })
            }
            _ => Ok(TermRef::Literal {
                lexical,
                datatype: None,
                language: None,
            }),
        }
    }

    /// Lexes one N-Triples term.
    pub(crate) fn lex_term(&mut self) -> Result<TermRef<'a>, ParseError> {
        match self.peek() {
            Some('<') => Ok(TermRef::Iri(self.lex_iri()?)),
            Some('_') => Ok(TermRef::Blank(self.lex_blank()?)),
            Some('"') => self.lex_literal(),
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// N-Triples: statement lexer + chunk splitter
// ---------------------------------------------------------------------------

/// Lexes a single N-Triples line into a borrowed triple. Returns `Ok(None)`
/// for blank lines and comments. `line_number` is used for error reporting.
pub fn lex_ntriples_line(
    line: &str,
    line_number: usize,
) -> Result<Option<TripleRef<'_>>, ParseError> {
    let mut scan = Scan::new(line, line_number);
    scan.skip_whitespace();
    if scan.is_done() || scan.peek() == Some('#') {
        return Ok(None);
    }
    let subject = scan.lex_term()?;
    scan.skip_whitespace();
    let predicate = scan.lex_term()?;
    scan.skip_whitespace();
    let object = scan.lex_term()?;
    scan.skip_whitespace();
    scan.expect('.')?;
    scan.skip_whitespace();
    if !scan.is_done() && scan.peek() != Some('#') {
        return Err(scan.error("trailing content after '.'"));
    }
    if subject.is_literal() || !predicate.is_iri() {
        let rendered = TripleRef {
            subject,
            predicate,
            object,
        }
        .into_triple();
        return Err(ParseError::new(
            line_number,
            format!("invalid triple (check term positions): {rendered}"),
        ));
    }
    Ok(Some(TripleRef {
        subject,
        predicate,
        object,
    }))
}

/// A contiguous slice of an input document plus the 1-based line number of
/// its first line, so chunk-local errors report document-global positions.
#[derive(Debug, Clone, Copy)]
pub struct Chunk<'a> {
    /// The chunk text.
    pub text: &'a str,
    /// 1-based line number of the chunk's first line in the whole document.
    pub first_line: usize,
}

/// Splits an N-Triples document into at most `target_chunks` chunks of
/// roughly equal byte size, cutting only on line boundaries. Concatenating
/// the chunk texts reproduces the input exactly.
pub fn split_ntriples(input: &str, target_chunks: usize) -> Vec<Chunk<'_>> {
    let target_chunks = target_chunks.max(1);
    if input.is_empty() {
        return Vec::new();
    }
    let goal = (input.len() / target_chunks).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0usize;
    let mut first_line = 1usize;
    while start < input.len() {
        let tentative = (start + goal).min(input.len());
        // Extend to the end of the line containing `tentative`. Byte search:
        // `tentative` may sit inside a multi-byte character, but `\n` is
        // ASCII, so the offset after it is always a char boundary.
        let end = match input.as_bytes()[tentative..]
            .iter()
            .position(|&b| b == b'\n')
        {
            Some(offset) => tentative + offset + 1,
            None => input.len(),
        };
        let text = &input[start..end];
        chunks.push(Chunk { text, first_line });
        first_line += text.bytes().filter(|&b| b == b'\n').count();
        start = end;
    }
    chunks
}

/// Iterates the statements of one N-Triples chunk, yielding borrowed
/// triples with document-global line numbers.
pub fn lex_ntriples_chunk<'a>(
    chunk: Chunk<'a>,
    mut emit: impl FnMut(TripleRef<'a>),
) -> Result<(), ParseError> {
    for (i, line) in chunk.text.lines().enumerate() {
        if let Some(triple) = lex_ntriples_line(line, chunk.first_line + i)? {
            emit(triple);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Turtle: prologue, statement splitter, chunk lexer
// ---------------------------------------------------------------------------

/// The leading directives of a Turtle document: every `@prefix`/`PREFIX` and
/// `@base`/`BASE` declaration before the first statement.
#[derive(Debug, Clone, Default)]
pub struct TurtlePrologue {
    /// Declared prefixes (name → namespace IRI).
    pub prefixes: HashMap<String, String>,
    /// The base IRI, empty when none was declared.
    pub base: String,
    /// Byte offset of the first body statement.
    pub body_offset: usize,
    /// 1-based line number of the first body statement.
    pub body_first_line: usize,
}

/// `true` when the cursor sits on `keyword` followed by whitespace.
fn at_keyword(scan: &Scan<'_>, keyword: &str) -> bool {
    let mut probe = 0usize;
    for expected in keyword.chars() {
        match scan.peek_at(probe) {
            Some(c) if c.eq_ignore_ascii_case(&expected) => probe += 1,
            _ => return false,
        }
    }
    matches!(scan.peek_at(probe), Some(c) if c.is_whitespace())
}

fn at_directive(scan: &Scan<'_>) -> bool {
    at_keyword(scan, "@prefix")
        || at_keyword(scan, "PREFIX")
        || at_keyword(scan, "@base")
        || at_keyword(scan, "BASE")
}

fn consume_keyword(scan: &mut Scan<'_>, keyword: &str) -> Result<(), ParseError> {
    for expected in keyword.chars() {
        match scan.bump() {
            Some(c) if c.eq_ignore_ascii_case(&expected) => {}
            other => return Err(scan.error(format!("expected keyword {keyword}, found {other:?}"))),
        }
    }
    Ok(())
}

/// Lexes one directive at the cursor into `prefixes` / `base`.
fn lex_directive(
    scan: &mut Scan<'_>,
    prefixes: &mut HashMap<String, String>,
    base: &mut String,
) -> Result<(), ParseError> {
    if at_keyword(scan, "@prefix") || at_keyword(scan, "PREFIX") {
        let sparql_style = at_keyword(scan, "PREFIX");
        consume_keyword(scan, if sparql_style { "PREFIX" } else { "@prefix" })?;
        scan.skip_trivia();
        let start = scan.pos();
        while let Some(c) = scan.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(scan.error("malformed prefix name"));
            }
            scan.bump();
        }
        let name = scan.input[start..scan.pos()].to_string();
        scan.expect(':')?;
        scan.skip_trivia();
        let iri = scan.lex_iri()?.into_owned();
        scan.skip_trivia();
        if !sparql_style {
            scan.expect('.')?;
        } else if scan.peek() == Some('.') {
            scan.bump();
        }
        prefixes.insert(name, iri);
        Ok(())
    } else {
        let sparql_style = at_keyword(scan, "BASE");
        consume_keyword(scan, if sparql_style { "BASE" } else { "@base" })?;
        scan.skip_trivia();
        let iri = scan.lex_iri()?.into_owned();
        scan.skip_trivia();
        if !sparql_style {
            scan.expect('.')?;
        } else if scan.peek() == Some('.') {
            scan.bump();
        }
        *base = iri;
        Ok(())
    }
}

/// Lexes the prologue of a Turtle document: directives up to the first
/// statement (or end of input).
pub fn lex_turtle_prologue(input: &str) -> Result<TurtlePrologue, ParseError> {
    let mut scan = Scan::new(input, 1);
    let mut prologue = TurtlePrologue::default();
    loop {
        scan.skip_trivia();
        if scan.is_done() || !at_directive(&scan) {
            prologue.body_offset = scan.pos();
            prologue.body_first_line = scan.line();
            return Ok(prologue);
        }
        lex_directive(&mut scan, &mut prologue.prefixes, &mut prologue.base)?;
    }
}

/// Splits a Turtle body (everything after the prologue) into at most
/// `target_chunks` chunks, cutting only on top-level statement boundaries
/// (a `.` outside IRIs, literals and comments, followed by whitespace, a
/// comment or end of input).
///
/// Returns `None` when a directive is declared *after* the prologue — the
/// caller must then lex the body as a single chunk, whose lexer applies
/// directives in stream order.
pub fn split_turtle_body(
    body: &str,
    first_line: usize,
    target_chunks: usize,
) -> Option<Vec<Chunk<'_>>> {
    let target_chunks = target_chunks.max(1);
    if body.trim().is_empty() {
        return Some(Vec::new());
    }

    // One linear scan: collect every top-level statement end offset.
    #[derive(PartialEq)]
    enum State {
        TopLevel,
        Iri,
        Literal,
        Comment,
    }
    let bytes = body.as_bytes();
    let mut state = State::TopLevel;
    let mut boundaries: Vec<usize> = Vec::new(); // exclusive end offsets
    let mut at_statement_start = true;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Comment => {
                if b == b'\n' {
                    state = State::TopLevel;
                }
            }
            State::Iri => {
                if b == b'>' {
                    state = State::TopLevel;
                }
            }
            State::Literal => {
                if b == b'\\' {
                    i += 1; // skip the escaped byte
                } else if b == b'"' {
                    state = State::TopLevel;
                }
            }
            State::TopLevel => {
                // Mid-body directive: give up on parallel chunking.
                // Deliberately conservative — ANY top-level occurrence of a
                // directive keyword bails out, not just ones at recognized
                // statement starts, because a directive can directly follow
                // a `.` terminator that this token-free scan cannot identify
                // (e.g. `ex:a ex:p ex:b .@prefix zz: <…> .`). A false
                // positive (say, a predicate whose local name is `prefix`)
                // only costs parallelism: the single-chunk lexer is the
                // sequential semantics. `@` probes unconditionally; the
                // bare SPARQL keywords only after whitespace or `.`, so
                // names like `ex:prefix` don't disable chunking.
                let directive_start = b == b'@'
                    || (matches!(b, b'P' | b'p' | b'B' | b'b')
                        && (i == 0 || matches!(bytes[i - 1], b' ' | b'\t' | b'\r' | b'\n' | b'.')));
                if directive_start {
                    // `b` is ASCII, so `i` is a char boundary.
                    let scan = Scan::new(&body[i..], 1);
                    if at_directive(&scan) {
                        return None;
                    }
                }
                if at_statement_start && !(b as char).is_ascii_whitespace() && b != b'#' {
                    at_statement_start = false;
                }
                match b {
                    b'#' => state = State::Comment,
                    b'<' => state = State::Iri,
                    b'"' => state = State::Literal,
                    b'.' => {
                        let next = bytes.get(i + 1).copied();
                        let terminates = match next {
                            None => true,
                            Some(n) => (n as char).is_ascii_whitespace() || n == b'#',
                        };
                        if terminates && !at_statement_start {
                            boundaries.push(i + 1);
                            at_statement_start = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }

    if boundaries.is_empty() {
        // No complete statement found; hand everything to one chunk so the
        // lexer produces the error (or handles the single partial statement).
        return Some(vec![Chunk {
            text: body,
            first_line,
        }]);
    }
    // Make the final boundary cover trailing trivia (and any trailing
    // incomplete statement, which the last chunk's lexer will report).
    *boundaries.last_mut().expect("non-empty") = body.len();

    let per_chunk = boundaries.len().div_ceil(target_chunks);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0usize;
    let mut line = first_line;
    for group in boundaries.chunks(per_chunk) {
        let end = *group.last().expect("non-empty group");
        let text = &body[start..end];
        chunks.push(Chunk {
            text,
            first_line: line,
        });
        line += text.bytes().filter(|&b| b == b'\n').count();
        start = end;
    }
    Some(chunks)
}

/// `true` when `c` can continue a prefixed-name token started by a letter.
/// Used to decide whether a leading `a` is the `rdf:type` keyword or the
/// start of a name such as `a:C` or `abc:x`.
fn is_name_continuation(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '%')
}

/// A statement-at-a-time lexer over one Turtle chunk.
///
/// The lexer owns a snapshot of the prologue's prefix map and base IRI; when
/// the chunk contains further directives (only possible in single-chunk mode,
/// see [`split_turtle_body`]) they are applied in stream order.
pub struct TurtleChunkLexer<'a> {
    scan: Scan<'a>,
    prefixes: HashMap<String, String>,
    base: String,
}

impl<'a> TurtleChunkLexer<'a> {
    /// A lexer over `chunk` with the given prologue snapshot.
    pub fn new(chunk: Chunk<'a>, prefixes: HashMap<String, String>, base: String) -> Self {
        TurtleChunkLexer {
            scan: Scan::new(chunk.text, chunk.first_line),
            prefixes,
            base,
        }
    }

    /// Lexes the next statement, passing each of its triples to `emit`.
    /// Returns `Ok(false)` at end of input.
    pub fn next_statement(
        &mut self,
        mut emit: impl FnMut(TripleRef<'a>),
    ) -> Result<bool, ParseError> {
        self.scan.skip_trivia();
        if self.scan.is_done() {
            return Ok(false);
        }
        if at_directive(&self.scan) {
            lex_directive(&mut self.scan, &mut self.prefixes, &mut self.base)?;
            return Ok(true);
        }
        let subject = self.lex_node()?;
        loop {
            self.scan.skip_trivia();
            let predicate = self.lex_predicate()?;
            loop {
                self.scan.skip_trivia();
                let object = self.lex_node()?;
                if subject.is_literal() || !predicate.is_iri() {
                    let rendered = TripleRef {
                        subject,
                        predicate,
                        object,
                    }
                    .into_triple();
                    return Err(self.scan.error(format!("invalid triple: {rendered}")));
                }
                emit(TripleRef {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.scan.skip_trivia();
                match self.scan.peek() {
                    Some(',') => {
                        self.scan.bump();
                    }
                    _ => break,
                }
            }
            self.scan.skip_trivia();
            match self.scan.peek() {
                Some(';') => {
                    self.scan.bump();
                    self.scan.skip_trivia();
                    // A dangling ';' before '.' is allowed in Turtle.
                    if self.scan.peek() == Some('.') {
                        self.scan.bump();
                        return Ok(true);
                    }
                }
                Some('.') => {
                    self.scan.bump();
                    return Ok(true);
                }
                other => {
                    return Err(self
                        .scan
                        .error(format!("expected ';' or '.', found {other:?}")))
                }
            }
        }
    }

    fn lex_predicate(&mut self) -> Result<TermRef<'a>, ParseError> {
        // The `a` keyword: `a` followed by anything that cannot continue a
        // prefixed name (whitespace, `<` of an IRI, `"` of a literal, …).
        if self.scan.peek() == Some('a')
            && !matches!(self.scan.peek_at(1), Some(c) if is_name_continuation(c))
        {
            self.scan.bump();
            return Ok(TermRef::Iri(Cow::Borrowed(vocab::RDF_TYPE)));
        }
        self.lex_node()
    }

    /// Lexes an IRI, prefixed name, blank node label or literal.
    fn lex_node(&mut self) -> Result<TermRef<'a>, ParseError> {
        match self.scan.peek() {
            Some('<') => {
                let iri = self.scan.lex_iri()?;
                if !self.base.is_empty() && !has_scheme(&iri) {
                    Ok(TermRef::Iri(Cow::Owned(resolve_against_base(
                        &self.base, &iri,
                    ))))
                } else {
                    Ok(TermRef::Iri(iri))
                }
            }
            Some('_') => Ok(TermRef::Blank(self.scan.lex_blank()?)),
            Some('"') => {
                // The datatype suffix can be either `^^<iri>` or a prefixed
                // name (`^^xsd:integer`).
                let lexical = self.scan.lex_quoted_string()?;
                match self.scan.peek() {
                    Some('@') => {
                        let language = self.scan.lex_language()?;
                        Ok(TermRef::Literal {
                            lexical,
                            datatype: None,
                            language: Some(language),
                        })
                    }
                    Some('^') => {
                        self.scan.bump();
                        self.scan.expect('^')?;
                        let datatype = if self.scan.peek() == Some('<') {
                            self.scan.lex_iri()?
                        } else {
                            match self.lex_prefixed_name()? {
                                TermRef::Iri(iri) => iri,
                                _ => return Err(self.scan.error("malformed datatype annotation")),
                            }
                        };
                        Ok(TermRef::Literal {
                            lexical,
                            datatype: Some(datatype),
                            language: None,
                        })
                    }
                    _ => Ok(TermRef::Literal {
                        lexical,
                        datatype: None,
                        language: None,
                    }),
                }
            }
            Some('[') => Err(self
                .scan
                .error("anonymous blank nodes [...] are not supported by this Turtle subset")),
            Some('(') => Err(self
                .scan
                .error("collections (...) are not supported by this Turtle subset")),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.lex_numeric(),
            Some(_) => {
                if self.at_keyword_value("true") {
                    return Ok(TermRef::Literal {
                        lexical: Cow::Borrowed("true"),
                        datatype: Some(Cow::Owned(format!("{}boolean", vocab::XSD_NS))),
                        language: None,
                    });
                }
                if self.at_keyword_value("false") {
                    return Ok(TermRef::Literal {
                        lexical: Cow::Borrowed("false"),
                        datatype: Some(Cow::Owned(format!("{}boolean", vocab::XSD_NS))),
                        language: None,
                    });
                }
                self.lex_prefixed_name()
            }
            None => Err(self.scan.error("unexpected end of input")),
        }
    }

    /// Consumes `keyword` when it stands alone (followed by whitespace or a
    /// statement separator), returning whether it did.
    fn at_keyword_value(&mut self, keyword: &str) -> bool {
        if !self.scan.starts_with(keyword) {
            return false;
        }
        let boundary = self.scan.peek_at(keyword.chars().count());
        let ok = match boundary {
            None => true,
            Some(c) => c.is_whitespace() || c == '.' || c == ';' || c == ',',
        };
        if ok {
            for _ in 0..keyword.chars().count() {
                self.scan.bump();
            }
        }
        ok
    }

    fn lex_numeric(&mut self) -> Result<TermRef<'a>, ParseError> {
        let start = self.scan.pos();
        while matches!(self.scan.peek(), Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E')
        {
            // A '.' followed by whitespace/end is the statement terminator.
            if self.scan.peek() == Some('.')
                && !matches!(self.scan.peek_at(1), Some(c) if c.is_ascii_digit())
            {
                break;
            }
            self.scan.bump();
        }
        let text = &self.scan.input[start..self.scan.pos()];
        if text.is_empty() {
            return Err(self.scan.error("expected a numeric literal"));
        }
        let datatype = if text.contains(['.', 'e', 'E']) {
            format!("{}decimal", vocab::XSD_NS)
        } else {
            format!("{}integer", vocab::XSD_NS)
        };
        Ok(TermRef::Literal {
            lexical: Cow::Borrowed(text),
            datatype: Some(Cow::Owned(datatype)),
            language: None,
        })
    }

    fn lex_prefixed_name(&mut self) -> Result<TermRef<'a>, ParseError> {
        let start = self.scan.pos();
        while let Some(c) = self.scan.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() || c == ';' || c == ',' || c == '.' {
                let prefix = &self.scan.input[start..self.scan.pos()];
                return Err(self
                    .scan
                    .error(format!("expected a prefixed name, found {prefix:?}")));
            }
            self.scan.bump();
        }
        let prefix = &self.scan.input[start..self.scan.pos()];
        self.scan.expect(':')?;
        let local_start = self.scan.pos();
        while let Some(c) = self.scan.peek() {
            if c.is_whitespace() || c == ';' || c == ',' {
                break;
            }
            if c == '.' {
                // A dot ends the local name only when followed by
                // whitespace/end (statement terminator).
                match self.scan.peek_at(1) {
                    Some(next) if !next.is_whitespace() => {}
                    _ => break,
                }
            }
            self.scan.bump();
        }
        let local = &self.scan.input[local_start..self.scan.pos()];
        let namespace = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.scan.error(format!("undeclared prefix '{prefix}:'")))?;
        Ok(TermRef::Iri(Cow::Owned(format!("{namespace}{local}"))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_keys_match_term_display() {
        let doc = r#"<http://ex/a> <http://ex/p> "line1\nline2 \"x\" café"@EN-gb ."#;
        let triple = lex_ntriples_line(doc, 1).unwrap().unwrap();
        let mut key = String::new();
        for term in [&triple.subject, &triple.predicate, &triple.object] {
            key.clear();
            term.write_key(&mut key);
            assert_eq!(key, term.to_term().to_string());
        }
    }

    #[test]
    fn borrowed_when_no_escapes() {
        let triple = lex_ntriples_line("<http://ex/a> <http://ex/p> \"plain\" .", 1)
            .unwrap()
            .unwrap();
        assert!(matches!(triple.subject, TermRef::Iri(Cow::Borrowed(_))));
        assert!(matches!(
            triple.object,
            TermRef::Literal {
                lexical: Cow::Borrowed(_),
                ..
            }
        ));
    }

    #[test]
    fn malformed_language_tags_are_rejected() {
        for tag in ["", "-en", "en-", "en--us", "7up"] {
            let line = format!("<http://ex/a> <http://ex/p> \"x\"@{tag} .");
            let error = lex_ntriples_line(&line, 1).expect_err("must reject @{tag}");
            assert!(
                error.message.contains("language tag"),
                "unexpected error for @{tag}: {}",
                error.message
            );
        }
        // '_' is not a tag character: the tag ends at "en" and the stray
        // '_' makes the statement malformed.
        assert!(lex_ntriples_line("<http://ex/a> <http://ex/p> \"x\"@en_US .", 1).is_err());
        // Well-formed tags (including multi-subtag, digits after the first
        // subtag) still lex.
        for tag in ["en", "de-AT", "zh-Hans-CN", "en-1997"] {
            let line = format!("<http://ex/a> <http://ex/p> \"x\"@{tag} .");
            assert!(lex_ntriples_line(&line, 1).is_ok(), "@{tag} should lex");
        }
    }

    #[test]
    fn xsd_string_datatype_is_suppressed_in_key() {
        let line = format!("<http://a> <http://p> \"x\"^^<{XSD_STRING}> .");
        let triple = lex_ntriples_line(&line, 1).unwrap().unwrap();
        let mut key = String::new();
        triple.object.write_key(&mut key);
        assert_eq!(key, "\"x\"");
    }

    #[test]
    fn ntriples_chunks_preserve_text_and_line_numbers() {
        let doc: String = (0..100)
            .map(|i| format!("<http://ex/s{i}> <http://ex/p> <http://ex/o{i}> .\n"))
            .collect();
        for n in [1, 2, 3, 7, 100, 1000] {
            let chunks = split_ntriples(&doc, n);
            let rejoined: String = chunks.iter().map(|c| c.text).collect();
            assert_eq!(rejoined, doc);
            let mut expected_line = 1usize;
            for chunk in &chunks {
                assert_eq!(chunk.first_line, expected_line);
                expected_line += chunk.text.bytes().filter(|&b| b == b'\n').count();
            }
        }
    }

    #[test]
    fn chunk_errors_carry_global_line_numbers() {
        let mut doc: String = (0..50)
            .map(|i| format!("<http://ex/s{i}> <http://ex/p> <http://ex/o{i}> .\n"))
            .collect();
        doc.push_str("<broken\n");
        let chunks = split_ntriples(&doc, 4);
        let mut error = None;
        for chunk in chunks {
            if let Err(e) = lex_ntriples_chunk(chunk, |_| {}) {
                error = Some(e);
                break;
            }
        }
        assert_eq!(error.expect("must fail").line, 51);
    }

    #[test]
    fn turtle_prologue_and_body_split() {
        let doc = "\
@prefix ex: <http://ex.org/> . # comment
@base <http://base.org/> .

ex:a ex:p ex:b .
ex:c ex:p \"a . literal\" ;
     ex:q <http://x.org/v.2#frag> .
ex:d ex:p 1.5 .
";
        let prologue = lex_turtle_prologue(doc).unwrap();
        assert_eq!(prologue.prefixes["ex"], "http://ex.org/");
        assert_eq!(prologue.base, "http://base.org/");
        let body = &doc[prologue.body_offset..];
        assert!(body.starts_with("ex:a"));
        let chunks = split_turtle_body(body, prologue.body_first_line, 3).unwrap();
        let rejoined: String = chunks.iter().map(|c| c.text).collect();
        assert_eq!(rejoined, body);
        assert_eq!(chunks.len(), 3);
        // Statement boundaries: each chunk lexes independently.
        let mut total = 0usize;
        for chunk in chunks {
            let mut lexer =
                TurtleChunkLexer::new(chunk, prologue.prefixes.clone(), prologue.base.clone());
            while lexer.next_statement(|_| total += 1).unwrap() {}
        }
        assert_eq!(total, 4);
    }

    #[test]
    fn mid_body_directives_disable_chunking() {
        let doc = "\
@prefix ex: <http://ex.org/> .
ex:a ex:p ex:b .
@prefix other: <http://other.org/> .
ex:c ex:p other:d .
";
        let prologue = lex_turtle_prologue(doc).unwrap();
        let body = &doc[prologue.body_offset..];
        assert!(split_turtle_body(body, prologue.body_first_line, 4).is_none());
        // The single-chunk lexer still handles the directive in stream order.
        let chunk = Chunk {
            text: body,
            first_line: prologue.body_first_line,
        };
        let mut lexer = TurtleChunkLexer::new(chunk, prologue.prefixes, prologue.base);
        let mut triples = Vec::new();
        while lexer
            .next_statement(|t| triples.push(t.into_triple()))
            .unwrap()
        {}
        assert_eq!(triples.len(), 2);
        assert_eq!(
            triples[1].object,
            inferray_model::Term::iri("http://other.org/d")
        );
    }

    #[test]
    fn directives_glued_to_a_terminator_disable_chunking() {
        // The '.' before '@prefix' is not followed by whitespace, so the
        // boundary scan cannot see a statement start there — the directive
        // probe must still catch it anywhere at top level.
        for glued in [
            "ex:a ex:p ex:b .@prefix zz: <http://zz.org/> .\nzz:c zz:q zz:d .\n",
            "ex:a ex:p <http://x.org/> .@base <http://b.org/> .\n<y> ex:p ex:b .\n",
            "ex:a ex:p \"lit\" .PREFIX zz: <http://zz.org/>\nzz:c zz:q zz:d .\n",
        ] {
            assert!(
                split_turtle_body(glued, 1, 4).is_none(),
                "must fall back to a single chunk for {glued:?}"
            );
        }
        // Names merely *containing* keyword letters keep chunking enabled.
        let harmless = "ex:prefixed ex:prefix ex:base .\nex:a ex:p ex:b .\n";
        assert!(split_turtle_body(harmless, 1, 4).is_some());
    }

    #[test]
    fn dots_inside_names_literals_and_iris_do_not_split_statements() {
        let body = "ex:v1.2 ex:p \"dot . dot\" . ex:a ex:p <http://x/y.z> .";
        let chunks = split_turtle_body(body, 1, 8).unwrap();
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].text.contains("v1.2"));
        assert!(chunks[1].text.contains("y.z"));
    }

    #[test]
    fn turtle_line_numbers_track_newlines() {
        let doc = "@prefix ex: <http://ex.org/> .\n\nex:a ex:p ex:b .\nex:broken ex:p [ ] .\n";
        let prologue = lex_turtle_prologue(doc).unwrap();
        let chunk = Chunk {
            text: &doc[prologue.body_offset..],
            first_line: prologue.body_first_line,
        };
        let mut lexer = TurtleChunkLexer::new(chunk, prologue.prefixes, prologue.base);
        let mut count = 0usize;
        let error = loop {
            match lexer.next_statement(|_| count += 1) {
                Ok(true) => {}
                Ok(false) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert_eq!(count, 1);
        assert_eq!(error.line, 4, "error on the 4th document line");
        assert!(error.message.contains("not supported"));
    }
}
