//! Property-based round-trip tests: any graph the model can represent must
//! survive `write N-Triples → parse N-Triples` unchanged, including literals
//! with escapes, unicode, language tags and datatypes.

use inferray_model::{Graph, Term, Triple};
use inferray_parser::{parse_ntriples, to_ntriples_string};
use proptest::prelude::*;

/// Lexical forms that stress the escaping rules: quotes, backslashes,
/// newlines, tabs, every `\u{0}`–`\u{1F}` control character, and non-ASCII
/// text.
fn arbitrary_lexical() -> impl Strategy<Value = String> {
    prop_oneof![
        // Plain alphanumeric words.
        "[a-zA-Z0-9 ]{0,24}",
        // Strings with characters that must be escaped in N-Triples.
        prop::collection::vec(
            prop_oneof![
                Just('"'),
                Just('\\'),
                Just('\n'),
                Just('\t'),
                Just('\r'),
                Just('a'),
                Just('é'),
                Just('語'),
                Just('🦀'),
            ],
            0..12
        )
        .prop_map(|chars| chars.into_iter().collect()),
        // C0 control characters (\u{0}..=\u{1F}) interleaved with text:
        // '\n', '\r' and '\t' are written as escapes, the rest must pass
        // through the writer and the byte-oriented lexer verbatim.
        prop::collection::vec(
            prop_oneof![
                (0u32..0x20u32).prop_map(|c| char::from_u32(c).expect("C0 is valid")),
                Just('x'),
                Just('"'),
            ],
            0..16
        )
        .prop_map(|chars| chars.into_iter().collect()),
    ]
}

fn arbitrary_iri() -> impl Strategy<Value = String> {
    "[a-z]{1,8}".prop_map(|local| format!("http://example.org/{local}"))
}

/// Well-formed language tags, including multi-subtag and digit subtags —
/// the `[a-zA-Z]+('-'[a-zA-Z0-9]+)*` shape both parsers enforce.
fn arbitrary_language() -> impl Strategy<Value = String> {
    "[a-zA-Z]{1,4}(-[a-zA-Z0-9]{1,4}){0,2}"
}

fn arbitrary_object() -> impl Strategy<Value = Term> {
    prop_oneof![
        arbitrary_iri().prop_map(Term::iri),
        "[A-Za-z][A-Za-z0-9]{0,8}".prop_map(Term::blank),
        arbitrary_lexical().prop_map(Term::plain_literal),
        (arbitrary_lexical(), arbitrary_iri()).prop_map(|(lex, dt)| Term::typed_literal(lex, dt)),
        (arbitrary_lexical(), arbitrary_language())
            .prop_map(|(lex, lang)| Term::lang_literal(lex, lang)),
        any::<i64>().prop_map(Term::integer),
    ]
}

fn arbitrary_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        arbitrary_iri().prop_map(Term::iri),
        "[A-Za-z][A-Za-z0-9]{0,8}".prop_map(Term::blank),
    ]
}

fn arbitrary_triple() -> impl Strategy<Value = Triple> {
    (arbitrary_subject(), arbitrary_iri(), arbitrary_object())
        .prop_map(|(s, p, o)| Triple::new(s, Term::iri(p), o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write → parse is the identity on sets of triples.
    #[test]
    fn ntriples_roundtrip_preserves_every_triple(
        triples in prop::collection::vec(arbitrary_triple(), 0..30)
    ) {
        let mut graph = Graph::new();
        for t in &triples {
            graph.insert(t.clone());
        }
        let serialized = to_ntriples_string(graph.iter());
        let parsed = parse_ntriples(&serialized).expect("writer output must parse");
        let mut reparsed = Graph::new();
        for t in parsed {
            reparsed.insert(t);
        }
        prop_assert_eq!(reparsed, graph);
    }

    /// The writer always terminates each triple with " .\n" and escapes every
    /// double quote inside literals, so the output is line-oriented.
    #[test]
    fn writer_output_is_line_oriented(
        triples in prop::collection::vec(arbitrary_triple(), 1..20)
    ) {
        let serialized = to_ntriples_string(triples.iter());
        let lines: Vec<&str> = serialized.lines().filter(|l| !l.trim().is_empty()).collect();
        // One statement per line: escaping keeps newlines out of literals.
        prop_assert_eq!(lines.len(), triples.len());
        for line in lines {
            prop_assert!(line.trim_end().ends_with('.'), "line not terminated: {line:?}");
        }
    }

    /// escape/unescape of lexical forms is a round trip.
    #[test]
    fn escape_unescape_roundtrip(lexical in arbitrary_lexical()) {
        let escaped = inferray_model::term::escape_ntriples(&lexical);
        let unescaped = inferray_model::term::unescape_ntriples(&escaped);
        prop_assert_eq!(unescaped.as_deref(), Some(lexical.as_str()));
        // Escaped forms never contain raw newlines or unescaped quotes.
        prop_assert!(!escaped.contains('\n'));
        let mut chars = escaped.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '\\' {
                chars.next();
            } else {
                prop_assert_ne!(c, '"');
            }
        }
    }
}

#[test]
fn malformed_documents_are_rejected_with_line_numbers() {
    for (input, expect_line) in [
        ("<http://ex/s> <http://ex/p> .", 1),
        (
            "<http://ex/s> <http://ex/p> <http://ex/o> .\n<broken line",
            2,
        ),
        ("<http://ex/s> \"not a predicate\" <http://ex/o> .", 1),
        ("<http://ex/s> <http://ex/p> \"unterminated .", 1),
    ] {
        let error = parse_ntriples(input).expect_err("must be rejected");
        assert_eq!(error.line, expect_line, "wrong line for {input:?}");
    }
}

#[test]
fn every_c0_control_character_survives_a_concrete_roundtrip() {
    // All 32 C0 controls in one lexical form, across plain, typed and
    // language-tagged literals.
    let lexical: String = (0u32..0x20)
        .map(|c| char::from_u32(c).expect("C0 is valid"))
        .collect();
    let objects = [
        Term::plain_literal(lexical.as_str()),
        Term::typed_literal(lexical.as_str(), "http://example.org/dt"),
        Term::lang_literal(lexical.as_str(), "en-Latn-1a"),
    ];
    for object in objects {
        let triple = Triple::new(
            Term::iri("http://example.org/s"),
            Term::iri("http://example.org/p"),
            object,
        );
        let serialized = to_ntriples_string([&triple]);
        let parsed = parse_ntriples(&serialized).expect("writer output must parse");
        assert_eq!(parsed, vec![triple], "failed for {serialized:?}");
    }
}

#[test]
fn unicode_and_escapes_survive_a_concrete_roundtrip() {
    let tricky = Triple::new(
        Term::iri("http://example.org/s"),
        Term::iri("http://example.org/says"),
        Term::lang_literal("Grüße, \"Welt\"\n\t🦀 \\ fin", "de-at"),
    );
    let serialized = to_ntriples_string([&tricky]);
    let parsed = parse_ntriples(&serialized).unwrap();
    assert_eq!(parsed, vec![tricky]);
}
