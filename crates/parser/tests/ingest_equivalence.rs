//! The streaming-ingest determinism contract, property-tested: at any
//! thread count and any chunk size, the parallel ingest pipeline must
//! produce a dictionary and store **byte-identical** to the sequential
//! escape hatch and to the legacy one-pass loader — dense identifiers,
//! registration order, resource→property promotions, per-table pair buffers
//! and parse-error line numbers included.

use inferray_parser::{
    load_ntriples, load_turtle, Ingest, LoadError, LoadedDataset, LoaderOptions,
};
use proptest::prelude::*;

/// A small closed world of term spellings that stresses the interning key
/// (escapes, unicode, datatypes, language tags) and the promotion machinery
/// (terms used both as subjects/objects and as predicates, schema
/// predicates, property-class `rdf:type` objects).
fn arbitrary_statement() -> impl Strategy<Value = String> {
    let name = "[a-z]{1,6}";
    let entity = name.prop_map(|n| format!("<http://ex.org/{n}>"));
    let predicate = prop_oneof![
        // A tiny predicate pool: the same IRIs keep showing up as subjects
        // and objects of schema triples, so promotions fire constantly.
        "[pqr]{1,2}".prop_map(|n| format!("<http://ex.org/{n}>")),
        Just("<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>".to_string()),
        Just("<http://www.w3.org/2000/01/rdf-schema#subClassOf>".to_string()),
        Just("<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>".to_string()),
        Just("<http://www.w3.org/2000/01/rdf-schema#domain>".to_string()),
        Just("<http://www.w3.org/2000/01/rdf-schema#range>".to_string()),
        Just("<http://www.w3.org/2002/07/owl#inverseOf>".to_string()),
    ];
    let object = prop_oneof![
        entity.clone(),
        // Predicate-pool IRIs in object position (promotion bait).
        "[pqr]{1,2}".prop_map(|n| format!("<http://ex.org/{n}>")),
        Just("<http://www.w3.org/2002/07/owl#TransitiveProperty>".to_string()),
        Just("<http://www.w3.org/2002/07/owl#FunctionalProperty>".to_string()),
        "[A-Za-z0-9]{0,8}".prop_map(|l| format!("_:{}b", l)),
        // Literals with characters that exercise escaping and unicode.
        prop_oneof![
            "[a-zA-Z0-9 ]{0,16}",
            Just("line1\\nline2 \\\"q\\\" é語🦀".to_string()),
        ]
        .prop_map(|l| format!("\"{l}\"")),
        "[a-z]{1,8}".prop_map(|l| format!("\"{l}\"@en-GB")),
        "[0-9]{1,6}".prop_map(|l| format!("\"{l}\"^^<http://www.w3.org/2001/XMLSchema#integer>")),
    ];
    let subject = prop_oneof![
        entity,
        "[pqr]{1,2}".prop_map(|n| format!("<http://ex.org/{n}>")),
        "[A-Za-z0-9]{0,8}".prop_map(|l| format!("_:{}b", l)),
    ];
    (subject, predicate, object).prop_map(|(s, p, o)| format!("{s} {p} {o} ."))
}

fn arbitrary_document() -> impl Strategy<Value = String> {
    prop::collection::vec(arbitrary_statement(), 0..60).prop_map(|statements| {
        let mut doc = String::new();
        for (i, statement) in statements.iter().enumerate() {
            if i % 9 == 0 {
                doc.push_str("# comment line\n\n");
            }
            doc.push_str(statement);
            doc.push('\n');
        }
        doc
    })
}

fn assert_datasets_identical(expected: &LoadedDataset, actual: &LoadedDataset, label: &str) {
    // `LoadedDataset` equality is structural over the dictionary maps, the
    // dense term tables and every per-property pair buffer; spell out the
    // most diagnostic pieces first so failures read well.
    assert_eq!(
        expected.dictionary.num_properties(),
        actual.dictionary.num_properties(),
        "{label}: property count diverged"
    );
    assert_eq!(
        expected.dictionary.num_resources(),
        actual.dictionary.num_resources(),
        "{label}: resource count diverged"
    );
    for ((id_a, term_a), (id_b, term_b)) in expected.dictionary.iter().zip(actual.dictionary.iter())
    {
        assert_eq!(
            (id_a, term_a),
            (id_b, term_b),
            "{label}: dictionary diverged"
        );
    }
    for (p, table) in expected.store.iter_tables() {
        let other = actual
            .store
            .table(p)
            .unwrap_or_else(|| panic!("{label}: table {p} missing"));
        assert_eq!(table.pairs(), other.pairs(), "{label}: table {p} diverged");
    }
    assert_eq!(expected, actual, "{label}: datasets diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parallel ingest == sequential ingest == legacy loader, for every
    /// thread count × chunk size combination thrown at it.
    #[test]
    fn parallel_ingest_is_byte_identical(
        doc in arbitrary_document(),
        threads in 2usize..6,
        chunk_bytes in 16usize..2048,
    ) {
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .ntriples(&doc)
            .expect("generated documents are valid");
        let legacy = load_ntriples(&doc).expect("generated documents are valid");
        assert_datasets_identical(&legacy, &sequential, "sequential-vs-legacy");

        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(threads),
            chunk_bytes: Some(chunk_bytes),
        })
        .ntriples(&doc)
        .expect("generated documents are valid");
        assert_datasets_identical(&sequential, &parallel, "parallel-vs-sequential");
    }

    /// A malformed line reports the same 1-based line number and message no
    /// matter where the chunk boundaries fall.
    #[test]
    fn parse_errors_are_identical_across_chunk_boundaries(
        prefix in arbitrary_document(),
        suffix in arbitrary_document(),
        threads in 2usize..6,
        chunk_bytes in 16usize..512,
    ) {
        let doc = format!("{prefix}<http://ex.org/broken\n{suffix}");
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .ntriples(&doc)
            .expect_err("the injected line is malformed");
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(threads),
            chunk_bytes: Some(chunk_bytes),
        })
        .ntriples(&doc)
        .expect_err("the injected line is malformed");
        match (&sequential, &parallel) {
            (LoadError::Parse(a), LoadError::Parse(b)) => {
                prop_assert_eq!(a.line, b.line);
                prop_assert_eq!(&a.message, &b.message);
            }
            other => panic!("expected parse errors, got {other:?}"),
        }
    }

    /// Turtle: statement-boundary chunking (predicate/object lists, shared
    /// prefixes, promotions) is invisible in the result.
    #[test]
    fn turtle_ingest_is_byte_identical(
        locals in prop::collection::vec("[a-z]{1,5}", 1..25),
        threads in 2usize..6,
        chunk_bytes in 16usize..512,
    ) {
        let mut doc = String::from(
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             @prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
             @prefix ex: <http://ex.org/> .\n",
        );
        for (i, local) in locals.iter().enumerate() {
            match i % 5 {
                // Schema statements that promote instance-position terms.
                0 => doc.push_str(&format!("ex:{local} rdfs:domain ex:Dom{i} .\n")),
                1 => doc.push_str(&format!("ex:{local} owl:inverseOf ex:inv{local} .\n")),
                2 => doc.push_str(&format!(
                    "ex:s{i} ex:{local} ex:o{i} , ex:o{} ; a ex:C{} .\n",
                    i + 1,
                    i % 3
                )),
                3 => doc.push_str(&format!(
                    "ex:s{i} ex:age {i} ; ex:name \"n{local}\"@en .\n"
                )),
                _ => doc.push_str(&format!("ex:{local} a owl:TransitiveProperty .\n")),
            }
        }
        let legacy = load_turtle(&doc).expect("generated turtle is valid");
        let sequential = Ingest::with_options(LoaderOptions::sequential())
            .turtle(&doc)
            .expect("generated turtle is valid");
        assert_datasets_identical(&legacy, &sequential, "turtle-sequential-vs-legacy");
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(threads),
            chunk_bytes: Some(chunk_bytes),
        })
        .turtle(&doc)
        .expect("generated turtle is valid");
        assert_datasets_identical(&sequential, &parallel, "turtle-parallel-vs-sequential");
    }
}

/// Promotion chains crossing many chunk boundaries in both directions:
/// property-before-resource and resource-before-property, interleaved with
/// filler so every chunking splits them differently.
#[test]
fn promotion_stress_across_chunkings() {
    let mut doc = String::new();
    for i in 0..40 {
        doc.push_str(&format!(
            "<http://ex.org/prop{i}> <http://www.w3.org/2000/01/rdf-schema#domain> <http://ex.org/C{i}> .\n"
        ));
        for j in 0..5 {
            doc.push_str(&format!(
                "<http://ex.org/s{i}x{j}> <http://ex.org/filler{j}> <http://ex.org/prop{}> .\n",
                (i + 7) % 40
            ));
        }
        doc.push_str(&format!(
            "<http://ex.org/a{i}> <http://ex.org/prop{}> <http://ex.org/b{i}> .\n",
            39 - i
        ));
    }
    let sequential = Ingest::with_options(LoaderOptions::sequential())
        .ntriples(&doc)
        .unwrap();
    let legacy = load_ntriples(&doc).unwrap();
    assert_datasets_identical(&legacy, &sequential, "sequential-vs-legacy");
    for chunk_bytes in [32, 257, 1024, 1 << 16] {
        let parallel = Ingest::with_options(LoaderOptions {
            threads: Some(4),
            chunk_bytes: Some(chunk_bytes),
        })
        .ntriples(&doc)
        .unwrap();
        assert_datasets_identical(&sequential, &parallel, "parallel-vs-sequential");
    }
}

/// The global-pool default path (threads: None) is exercised too.
#[test]
fn default_options_use_the_global_pool_and_stay_identical() {
    let doc: String = (0..500)
        .map(|i| {
            format!(
                "<http://ex.org/s{}> <http://ex.org/p{}> \"v{i}\" .\n",
                i % 100,
                i % 11
            )
        })
        .collect();
    let sequential = Ingest::with_options(LoaderOptions::sequential())
        .ntriples(&doc)
        .unwrap();
    let parallel = Ingest::new().ntriples(&doc).unwrap();
    assert_datasets_identical(&sequential, &parallel, "global-pool");
}
