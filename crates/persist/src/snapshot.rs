//! The snapshot image: dictionary + base + materialized pair tables +
//! epoch, serialized as a length-prefixed, CRC-checked, mmap-able file.
//!
//! ## File layout (all integers little-endian)
//!
//! ```text
//! magic      "IFRYSNP1"                      8 bytes
//! header_len u32 · header_crc u32            CRC over the header payload
//! header     version u32 = 1
//!            epoch u64 · last_seq u64
//!            fragment_len u32 · fragment     UTF-8 fragment name
//!            section_count u32 = 3
//! section ×3 tag [u8;4] · len u64 · crc u32 · payload
//! ```
//!
//! Sections appear in order `DICT`, `BASE`, `MATL`. Each pair table inside
//! a store section is the store's flat sorted `[s0,o0,s1,o1,…]` array
//! written verbatim as little-endian `u64`s — 8-byte aligned and
//! contiguous, so an `mmap` implementation could point table slices
//! straight into the file. This crate forbids `unsafe`, so recovery
//! instead does the next-best thing: one `chunks_exact(8)` pass per table
//! (a single copy into a fresh `Vec<u64>`), after the section CRC has been
//! verified.
//!
//! The store sections preserve the **exact slot layout** of the in-memory
//! `TripleStore` — `None` slots versus allocated-but-empty tables — because
//! the crash-recovery suite asserts recovered stores equal their pre-crash
//! originals under `PartialEq`, which observes that difference.
//!
//! `last_seq` is the WAL sequence number the image covers: replay skips
//! records at or below it, which is what makes "checkpoint, then crash
//! before truncating the log" safe.

use crate::crc::crc32;
use inferray_dictionary::Dictionary;
use inferray_model::Term;
use inferray_store::{PropertyTable, TripleStore};
use std::fmt;

/// File magic: "Inferray snapshot, format 1".
pub const MAGIC: &[u8; 8] = b"IFRYSNP1";
/// Current format version.
pub const VERSION: u32 = 1;

const TAG_DICT: &[u8; 4] = b"DICT";
const TAG_BASE: &[u8; 4] = b"BASE";
const TAG_MATL: &[u8; 4] = b"MATL";

const TERM_IRI: u8 = 0;
const TERM_BLANK: u8 = 1;
const TERM_LITERAL: u8 = 2;

const FLAG_DATATYPE: u8 = 1;
const FLAG_LANGUAGE: u8 = 2;

/// Why an image failed to decode. Every variant means "this file is not a
/// valid snapshot" — recovery falls back to the next-older image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file ends before the structure it promises.
    Truncated,
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// A format version this build does not understand.
    BadVersion(u32),
    /// A section (or the header) failed its CRC.
    ChecksumMismatch(&'static str),
    /// A structural invariant does not hold (unknown tag, unsorted pairs,
    /// invalid UTF-8, …).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch(section) => {
                write!(f, "checksum mismatch in {section} section")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded snapshot image — everything needed to resume serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotImage {
    /// Epoch of the published store the image captured.
    pub epoch: u64,
    /// Last WAL sequence number folded into the image.
    pub last_seq: u64,
    /// Display name of the inference fragment the store was materialized
    /// under; recovery refuses to resume under a different one.
    pub fragment: String,
    /// The term dictionary.
    pub dictionary: Dictionary,
    /// The explicit (asserted) store — input to delete–rederive.
    pub base: TripleStore,
    /// The materialized store (explicit + inferred).
    pub materialized: TripleStore,
}

/// File name of the snapshot covering `epoch` (zero-padded so that
/// lexicographic order is numeric order).
pub fn snapshot_file_name(epoch: u64) -> String {
    format!("snapshot-{epoch:020}.img")
}

/// Parses an epoch back out of a [`snapshot_file_name`]-shaped file name.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".img")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(TERM_IRI);
            put_str(out, iri);
        }
        Term::BlankNode(label) => {
            out.push(TERM_BLANK);
            put_str(out, label);
        }
        Term::Literal {
            lexical,
            datatype,
            language,
        } => {
            out.push(TERM_LITERAL);
            put_str(out, lexical);
            let mut flags = 0u8;
            if datatype.is_some() {
                flags |= FLAG_DATATYPE;
            }
            if language.is_some() {
                flags |= FLAG_LANGUAGE;
            }
            out.push(flags);
            if let Some(dt) = datatype {
                put_str(out, dt);
            }
            if let Some(lang) = language {
                put_str(out, lang);
            }
        }
    }
}

fn encode_dictionary(dictionary: &Dictionary) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, dictionary.num_properties() as u64);
    put_u64(&mut out, dictionary.num_resources() as u64);
    // `iter()` yields properties then resources, each in dense id order —
    // exactly the order `Dictionary::from_dense_terms` rebuilds from.
    for (_, term) in dictionary.iter() {
        put_term(&mut out, term);
    }
    out
}

fn encode_store(store: &TripleStore) -> Vec<u8> {
    let slots = store.slot_tables();
    let bytes_needed: usize = 8 + slots
        .iter()
        .map(|slot| match slot {
            None => 1,
            Some(table) => 1 + 8 + table.pairs().len() * 8,
        })
        .sum::<usize>();
    let mut out = Vec::with_capacity(bytes_needed);
    put_u64(&mut out, slots.len() as u64);
    for slot in slots {
        match slot {
            None => out.push(0),
            Some(table) => {
                out.push(1);
                let pairs = table.pairs();
                put_u64(&mut out, (pairs.len() / 2) as u64);
                for &value in pairs {
                    put_u64(&mut out, value);
                }
            }
        }
    }
    out
}

fn put_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8], crc: u32) {
    out.extend_from_slice(tag);
    put_u64(out, payload.len() as u64);
    put_u32(out, crc);
    out.extend_from_slice(payload);
}

/// Serializes a complete snapshot image.
///
/// The stores must be finalized (sorted, duplicate-free) — they always are
/// by the time they are observable through
/// `ServingDataset::persistable_state`. The three sections (and their
/// CRCs) are produced in parallel — at LUBM scale they are megabytes each
/// and independent, and the checkpoint runs under the dataset's write
/// lock, so its wall time is paid by the update that crossed the WAL
/// threshold.
pub fn encode_image(
    dictionary: &Dictionary,
    base: &TripleStore,
    materialized: &TripleStore,
    epoch: u64,
    last_seq: u64,
    fragment: &str,
) -> Vec<u8> {
    let mut header = Vec::new();
    put_u32(&mut header, VERSION);
    put_u64(&mut header, epoch);
    put_u64(&mut header, last_seq);
    put_str(&mut header, fragment);
    put_u32(&mut header, 3);

    type EncodeTask<'a> = Box<dyn FnOnce() -> (Vec<u8>, u32) + Send + 'a>;
    let with_crc = |payload: Vec<u8>| {
        let crc = crc32(&payload);
        (payload, crc)
    };
    let sections = inferray_parallel::global().run_ordered(vec![
        Box::new(|| with_crc(encode_dictionary(dictionary))) as EncodeTask<'_>,
        Box::new(|| with_crc(encode_store(base))),
        Box::new(|| with_crc(encode_store(materialized))),
    ]);

    let total: usize = sections.iter().map(|(payload, _)| payload.len() + 16).sum();
    let mut out = Vec::with_capacity(8 + 8 + header.len() + total);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, header.len() as u32);
    put_u32(&mut out, crc32(&header));
    out.extend_from_slice(&header);
    for (tag, (payload, crc)) in [TAG_DICT, TAG_BASE, TAG_MATL].iter().zip(&sections) {
        put_section(&mut out, tag, payload, *crc);
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let arr: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| SnapshotError::Malformed("short u32"))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let arr: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| SnapshotError::Malformed("short u64"))?;
        Ok(u64::from_le_bytes(arr))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed("non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_term(r: &mut Reader<'_>) -> Result<Term, SnapshotError> {
    match r.u8()? {
        TERM_IRI => Ok(Term::Iri(r.str()?)),
        TERM_BLANK => Ok(Term::BlankNode(r.str()?)),
        TERM_LITERAL => {
            let lexical = r.str()?;
            let flags = r.u8()?;
            if flags & !(FLAG_DATATYPE | FLAG_LANGUAGE) != 0 {
                return Err(SnapshotError::Malformed("unknown literal flags"));
            }
            let datatype = if flags & FLAG_DATATYPE != 0 {
                Some(r.str()?)
            } else {
                None
            };
            let language = if flags & FLAG_LANGUAGE != 0 {
                Some(r.str()?)
            } else {
                None
            };
            Ok(Term::Literal {
                lexical,
                datatype,
                language,
            })
        }
        _ => Err(SnapshotError::Malformed("unknown term tag")),
    }
}

fn decode_dictionary(payload: &[u8]) -> Result<Dictionary, SnapshotError> {
    let mut r = Reader::new(payload);
    let num_properties = r.u64()? as usize;
    let num_resources = r.u64()? as usize;
    let mut properties = Vec::with_capacity(num_properties);
    for _ in 0..num_properties {
        properties.push(decode_term(&mut r)?);
    }
    let mut resources = Vec::with_capacity(num_resources);
    for _ in 0..num_resources {
        resources.push(decode_term(&mut r)?);
    }
    if !r.done() {
        return Err(SnapshotError::Malformed("trailing bytes in DICT section"));
    }
    Ok(Dictionary::from_dense_terms(properties, resources))
}

fn decode_store(payload: &[u8]) -> Result<TripleStore, SnapshotError> {
    let mut r = Reader::new(payload);
    let slot_count = r.u64()? as usize;
    let mut slots: Vec<Option<PropertyTable>> = Vec::with_capacity(slot_count.min(1 << 20));
    for _ in 0..slot_count {
        match r.u8()? {
            0 => slots.push(None),
            1 => {
                let pair_count = r.u64()? as usize;
                let byte_len = pair_count
                    .checked_mul(16)
                    .ok_or(SnapshotError::Malformed("pair count overflow"))?;
                let raw = r.take(byte_len)?;
                // The one copy of "single-memcpy reconstruction": the
                // file's little-endian u64 run becomes the table's backing
                // Vec in a single pass.
                let pairs: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|c| {
                        <[u8; 8]>::try_from(c)
                            .map(u64::from_le_bytes)
                            .map_err(|_| SnapshotError::Malformed("short pair word"))
                    })
                    .collect::<Result<_, _>>()?;
                // Defend the store's sort invariant even against a file
                // that passes its CRC: ⟨s,o⟩ strictly increasing.
                let mut prev: Option<(u64, u64)> = None;
                for chunk in pairs.chunks_exact(2) {
                    let cur = (chunk[0], chunk[1]);
                    if prev.is_some_and(|p| p >= cur) {
                        return Err(SnapshotError::Malformed("unsorted pair table"));
                    }
                    prev = Some(cur);
                }
                let mut table = PropertyTable::new();
                table.replace_with_sorted(pairs);
                slots.push(Some(table));
            }
            _ => return Err(SnapshotError::Malformed("unknown slot marker")),
        }
    }
    if !r.done() {
        return Err(SnapshotError::Malformed("trailing bytes in store section"));
    }
    Ok(TripleStore::from_slot_tables(slots))
}

fn read_section<'a>(
    r: &mut Reader<'a>,
    expect_tag: &'static [u8; 4],
) -> Result<(&'a [u8], u32), SnapshotError> {
    let tag = r.take(4)?;
    if tag != expect_tag {
        return Err(SnapshotError::Malformed("unexpected section tag"));
    }
    let len = r.u64()? as usize;
    let crc = r.u32()?;
    let payload = r.take(len)?;
    Ok((payload, crc))
}

fn check_crc(payload: &[u8], expected: u32, name: &'static str) -> Result<(), SnapshotError> {
    if crc32(payload) != expected {
        return Err(SnapshotError::ChecksumMismatch(name));
    }
    Ok(())
}

/// A decoded section, before reassembly into a [`SnapshotImage`].
enum Section {
    Dict(Dictionary),
    Store(TripleStore),
}

/// Validates and decodes a snapshot image.
///
/// The three sections validate (CRC-32) and decode in parallel: this is
/// the cold-start critical path, and the dictionary rebuild does not need
/// to wait on two multi-megabyte pair-table passes (or vice versa).
pub fn decode_image(bytes: &[u8]) -> Result<SnapshotImage, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let header_len = r.u32()? as usize;
    let header_crc = r.u32()?;
    let header_bytes = r.take(header_len)?;
    if crc32(header_bytes) != header_crc {
        return Err(SnapshotError::ChecksumMismatch("header"));
    }
    let mut h = Reader::new(header_bytes);
    let version = h.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let epoch = h.u64()?;
    let last_seq = h.u64()?;
    let fragment = h.str()?;
    let section_count = h.u32()?;
    if section_count != 3 || !h.done() {
        return Err(SnapshotError::Malformed("bad header"));
    }

    let (dict_payload, dict_crc) = read_section(&mut r, TAG_DICT)?;
    let (base_payload, base_crc) = read_section(&mut r, TAG_BASE)?;
    let (matl_payload, matl_crc) = read_section(&mut r, TAG_MATL)?;
    if !r.done() {
        return Err(SnapshotError::Malformed("trailing bytes after sections"));
    }

    type DecodeTask<'a> = Box<dyn FnOnce() -> Result<Section, SnapshotError> + Send + 'a>;
    let mut sections = inferray_parallel::global().run_ordered(vec![
        Box::new(move || {
            check_crc(dict_payload, dict_crc, "DICT")?;
            decode_dictionary(dict_payload).map(Section::Dict)
        }) as DecodeTask<'_>,
        Box::new(move || {
            check_crc(base_payload, base_crc, "BASE")?;
            decode_store(base_payload).map(Section::Store)
        }),
        Box::new(move || {
            check_crc(matl_payload, matl_crc, "MATL")?;
            decode_store(matl_payload).map(Section::Store)
        }),
    ]);
    // run_ordered returns exactly as many results as tasks, in order; a
    // mismatch (or a task yielding the wrong section kind) is reported as
    // a malformed image rather than panicking mid-recovery.
    let mut pop_section = |label: &'static str| -> Result<Section, SnapshotError> {
        sections
            .pop()
            .ok_or(SnapshotError::Malformed(label))
            .and_then(|r| r)
    };
    let Section::Store(materialized) = pop_section("missing MATL section")? else {
        return Err(SnapshotError::Malformed("MATL section is not a store"));
    };
    let Section::Store(base) = pop_section("missing BASE section")? else {
        return Err(SnapshotError::Malformed("BASE section is not a store"));
    };
    let Section::Dict(dictionary) = pop_section("missing DICT section")? else {
        return Err(SnapshotError::Malformed("DICT section is not a dictionary"));
    };
    Ok(SnapshotImage {
        epoch,
        last_seq,
        fragment,
        dictionary,
        base,
        materialized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::Triple;

    fn sample() -> (Dictionary, TripleStore, TripleStore) {
        let mut dictionary = Dictionary::new();
        let triples = [
            Triple::iris("http://ex/a", "http://ex/p", "http://ex/b"),
            Triple::iris("http://ex/b", "http://ex/p", "http://ex/c"),
            Triple::new(
                Term::Iri("http://ex/a".into()),
                Term::Iri("http://ex/label".into()),
                Term::Literal {
                    lexical: "chat".into(),
                    datatype: None,
                    language: Some("fr".into()),
                },
            ),
        ];
        let mut base = TripleStore::new();
        for t in &triples {
            base.add_triple(dictionary.encode_triple(t).unwrap());
        }
        base.finalize();
        let materialized = base.clone();
        (dictionary, base, materialized)
    }

    #[test]
    fn round_trips_byte_identically() {
        let (dictionary, base, materialized) = sample();
        let bytes = encode_image(&dictionary, &base, &materialized, 7, 42, "RDFS-default");
        let image = decode_image(&bytes).unwrap();
        assert_eq!(image.epoch, 7);
        assert_eq!(image.last_seq, 42);
        assert_eq!(image.fragment, "RDFS-default");
        assert_eq!(image.dictionary, dictionary);
        assert_eq!(image.base, base);
        assert_eq!(image.materialized, materialized);
    }

    #[test]
    fn preserves_none_versus_empty_slots() {
        let (dictionary, mut base, _) = sample();
        // Empty a table without removing its slot: the recovered store must
        // reproduce Some(empty), not None.
        let p = dictionary.id_of_iri("http://ex/p").unwrap();
        let pairs: Vec<u64> = base.table(p).unwrap().pairs().to_vec();
        base.remove_pairs(p, &pairs);
        assert!(base.table(p).is_some());
        let bytes = encode_image(&dictionary, &base, &base, 1, 0, "f");
        let image = decode_image(&bytes).unwrap();
        assert_eq!(image.base, base);
        assert!(image.base.table(p).is_some());
        assert!(image.base.table(p).unwrap().is_empty());
    }

    #[test]
    fn every_single_byte_corruption_is_caught_or_harmless() {
        let (dictionary, base, materialized) = sample();
        let bytes = encode_image(&dictionary, &base, &materialized, 3, 9, "rho-df");
        let clean = decode_image(&bytes).unwrap();
        for offset in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x01;
            // Either the decoder rejects the image, or (never, for a
            // one-bit flip under CRC-32 per section) it decodes to the
            // same value.
            if let Ok(image) = decode_image(&corrupt) {
                assert_eq!(image, clean, "undetected corruption at byte {offset}");
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let (dictionary, base, materialized) = sample();
        let bytes = encode_image(&dictionary, &base, &materialized, 3, 9, "rho-df");
        for cut in 0..bytes.len() {
            assert!(decode_image(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_names_round_trip_and_sort_numerically() {
        assert_eq!(parse_snapshot_file_name(&snapshot_file_name(0)), Some(0));
        assert_eq!(
            parse_snapshot_file_name(&snapshot_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert!(snapshot_file_name(9) < snapshot_file_name(10));
        assert_eq!(parse_snapshot_file_name("wal.log"), None);
        assert_eq!(parse_snapshot_file_name("snapshot-1.img"), None);
    }
}
