//! The write-ahead log: length-prefixed, CRC-checked records of
//! assert/retract batches, fsync'd before the in-memory publish.
//!
//! ## Record layout (all integers little-endian)
//!
//! ```text
//! ┌──────────┬──────────┬──────────────────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload (len bytes)                      │
//! └──────────┴──────────┴──────────────────────────────────────────┘
//! payload = seq: u64 | kind: u8 (1 = assert, 2 = retract) | body…
//! ```
//!
//! `body` is the batch itself as canonical N-Triples text — the exact bytes
//! the server accepted — so replay goes through the same
//! parse → encode → materialize/retract path as the original write and
//! lands on a byte-identical store. `seq` is a monotonically increasing
//! record number that spans checkpoints; the snapshot image remembers the
//! last sequence it covers, which makes replay idempotent (records at or
//! below it are skipped).
//!
//! [`scan`] tolerates a *torn tail*: a crash mid-append leaves a prefix of
//! the final record, which fails the length or CRC check and simply ends
//! the scan. Anything before the tear is trusted (each record carries its
//! own CRC); anything after it is discarded.

use crate::crc::crc32;

/// File name of the log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Upper bound on a single record's payload — a defence against reading a
/// garbage length field and allocating gigabytes. One update batch is one
/// HTTP body, and the server bounds those far below this.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// Fixed bytes in front of every payload: length + CRC.
const RECORD_HEADER: usize = 8;
/// Minimum payload: sequence number + kind byte.
const MIN_PAYLOAD: usize = 9;

/// What a WAL record does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalKind {
    /// Assert the batch (materialize the delta).
    Assert,
    /// Retract the batch (delete–rederive).
    Retract,
}

impl WalKind {
    fn to_byte(self) -> u8 {
        match self {
            WalKind::Assert => 1,
            WalKind::Retract => 2,
        }
    }

    fn from_byte(byte: u8) -> Option<WalKind> {
        match byte {
            1 => Some(WalKind::Assert),
            2 => Some(WalKind::Retract),
            _ => None,
        }
    }
}

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic record number (spans checkpoints).
    pub seq: u64,
    /// Assert or retract.
    pub kind: WalKind,
    /// The batch as N-Triples text.
    pub body: String,
}

/// Result of scanning a log image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The records of the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Length of that valid prefix in bytes. Appending must resume here —
    /// the caller truncates any torn tail before accepting new writes.
    pub valid_bytes: usize,
    /// `true` when bytes beyond the valid prefix were discarded.
    pub torn_tail: bool,
}

/// Encodes one record (header + payload) ready for a durable append.
pub fn encode_record(seq: u64, kind: WalKind, body: &str) -> Vec<u8> {
    let payload_len = 8 + 1 + body.len();
    let mut out = Vec::with_capacity(RECORD_HEADER + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // CRC patched below.
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind.to_byte());
    out.extend_from_slice(body.as_bytes());
    let crc = crc32(&out[RECORD_HEADER..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Little-endian u32 at `at`, or `None` when the slice is too short.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Little-endian u64 at `at`, or `None` when the slice is too short.
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let arr: [u8; 8] = bytes.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(arr))
}

/// Scans a log image, stopping (without error) at the first sign of a torn
/// or corrupt tail: truncated header, oversized or undersized length,
/// CRC mismatch, unknown kind, non-UTF-8 body, or a non-increasing
/// sequence number.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut last_seq = 0u64;
    loop {
        let remaining = &bytes[offset..];
        if remaining.len() < RECORD_HEADER {
            break;
        }
        // A short read here is impossible after the length check, but the
        // scan's contract is "stop at the first malformed byte, never
        // panic", so the conversions bail like every other torn-tail case.
        let Some(len) = le_u32(remaining, 0) else {
            break;
        };
        let len = len as usize;
        if len < MIN_PAYLOAD || len > MAX_RECORD_LEN as usize {
            break;
        }
        if remaining.len() < RECORD_HEADER + len {
            break;
        }
        let Some(crc) = le_u32(remaining, 4) else {
            break;
        };
        let payload = &remaining[RECORD_HEADER..RECORD_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(seq) = le_u64(payload, 0) else {
            break;
        };
        let Some(kind) = WalKind::from_byte(payload[8]) else {
            break;
        };
        let Ok(body) = std::str::from_utf8(&payload[9..]) else {
            break;
        };
        if records.is_empty() || seq > last_seq {
            last_seq = seq;
        } else {
            break;
        }
        records.push(WalRecord {
            seq,
            kind,
            body: body.to_string(),
        });
        offset += RECORD_HEADER + len;
    }
    WalScan {
        records,
        valid_bytes: offset,
        torn_tail: offset < bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> (Vec<u8>, Vec<WalRecord>) {
        let records = vec![
            WalRecord {
                seq: 1,
                kind: WalKind::Assert,
                body: "<a> <b> <c> .\n".to_string(),
            },
            WalRecord {
                seq: 2,
                kind: WalKind::Retract,
                body: "<a> <b> <c> .\n".to_string(),
            },
            WalRecord {
                seq: 5,
                kind: WalKind::Assert,
                body: String::new(),
            },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r.seq, r.kind, &r.body));
        }
        (bytes, records)
    }

    #[test]
    fn round_trips_a_clean_log() {
        let (bytes, records) = sample_log();
        let scan = scan(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_bytes, bytes.len());
        assert!(!scan.torn_tail);
    }

    #[test]
    fn tolerates_a_torn_tail_at_every_cut_point() {
        let (bytes, records) = sample_log();
        let second_record_end = bytes.len() - (RECORD_HEADER + 8 + 1); // last record is header + seq + kind
        for cut in second_record_end + 1..bytes.len() {
            let scan = scan(&bytes[..cut]);
            assert_eq!(scan.records, records[..2], "cut at {cut}");
            assert_eq!(scan.valid_bytes, second_record_end);
            assert!(scan.torn_tail, "cut at {cut}");
        }
    }

    #[test]
    fn a_bit_flip_ends_the_scan_at_the_previous_record() {
        let (bytes, records) = sample_log();
        let first_len = RECORD_HEADER + 8 + 1 + records[0].body.len();
        for offset in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x40;
            let scan = scan(&corrupt);
            // Corruption can only ever *shorten* the accepted prefix, and
            // records before the flipped byte survive intact.
            assert!(scan.records.len() <= records.len(), "offset {offset}");
            if offset >= first_len {
                assert!(
                    !scan.records.is_empty() && scan.records[0] == records[0],
                    "offset {offset}"
                );
            }
        }
    }

    #[test]
    fn non_increasing_sequence_numbers_end_the_scan() {
        let mut bytes = encode_record(7, WalKind::Assert, "x");
        bytes.extend_from_slice(&encode_record(7, WalKind::Assert, "y"));
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = scan(b"");
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_bytes, 0);
        assert!(!scan.torn_tail);
    }
}
