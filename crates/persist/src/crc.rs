//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every snapshot section and WAL record.
//!
//! Hand-rolled because the workspace builds offline. The kernel is the
//! *slicing-by-8* form (Kounavis & Berry): eight 256-entry tables computed
//! at compile time, eight input bytes folded per iteration. A snapshot
//! section is checksummed once on write and once on open, and at LUBM
//! scale the sections are tens of megabytes — the byte-at-a-time loop was
//! the single largest line item in a cold start, so the 8-way kernel
//! directly buys recovery time.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing tables: `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` advances the CRC of byte `b` through `k` additional zero
/// bytes, so eight table lookups absorb eight input bytes at once.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 of `data` (initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` —
/// the same parameters as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = TABLES[0][((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic one-byte-at-a-time form, kept as the reference the
    /// sliced kernel must agree with.
    fn crc32_reference(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &byte in data {
            let index = ((crc ^ byte as u32) & 0xFF) as usize;
            crc = TABLES[0][index] ^ (crc >> 8);
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn matches_the_published_check_value() {
        // The canonical CRC-32 check: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_kernel_agrees_with_the_reference_at_every_length() {
        // Lengths 0..=64 cover every remainder class around the 8-byte
        // stride; the pseudo-random fill exercises all table lanes.
        let data: Vec<u8> = (0u32..64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 24) as u8)
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
