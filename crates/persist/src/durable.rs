//! [`DurableDataset`]: a [`ServingDataset`] whose writes survive crashes.
//!
//! Every assert/retract batch is appended to the WAL and fsync'd **before**
//! the in-memory materialization publishes (write-ahead discipline);
//! threshold-triggered checkpoints serialize the full store into a
//! [snapshot image](crate::snapshot) and truncate the log. Recovery is the
//! composition: newest valid image + replay of the WAL suffix through the
//! exact same `extend`/`retract` code path the original writes took, which
//! is what makes the recovered store *byte-identical* (the engine is
//! deterministic for a given input sequence).
//!
//! ## Degradation, not panic
//!
//! A failed WAL append means the next write cannot be made durable, so the
//! dataset flips to **read-only**: writes return
//! [`DurableError::ReadOnly`], reads keep serving the last published
//! epoch. A failed *checkpoint* is softer — the WAL simply keeps growing
//! and the error is surfaced through [`DurabilityStatus`] — because the
//! log alone is still a complete durability story.
//!
//! Failure atomicity is the standard fsync contract: when an append
//! reports failure the record may or may not have reached the platter.
//! Both outcomes are safe — the record is either absent after recovery
//! (client saw an error, write lost: correct) or present and replayed
//! (client saw an error, write survived: the same anomaly a real
//! filesystem permits, and the store is still consistent because the
//! record is internally complete or it fails its CRC).

use crate::io::IoBackend;
use crate::snapshot::{self, SnapshotImage};
use crate::wal::{self, WalKind, WAL_FILE};
use inferray_core::{Fragment, InferenceStats, InferrayOptions, RetractionStats, ServingDataset};
use inferray_parser::{parse_ntriples, LoadedDataset};
use inferray_store::unpoison;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// When to fold the WAL into a fresh snapshot image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many records accumulated since the last one.
    pub wal_record_limit: Option<u64>,
    /// Checkpoint once the log grew past this many bytes.
    pub wal_byte_limit: Option<u64>,
    /// How many snapshot images to keep (older ones are pruned). At least
    /// one is always kept.
    pub snapshots_to_keep: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            wal_record_limit: Some(1024),
            wal_byte_limit: Some(64 << 20),
            snapshots_to_keep: 2,
        }
    }
}

impl CheckpointPolicy {
    /// A policy that never checkpoints on its own (tests drive checkpoints
    /// explicitly).
    pub fn manual() -> Self {
        CheckpointPolicy {
            wal_record_limit: None,
            wal_byte_limit: None,
            snapshots_to_keep: 2,
        }
    }

    fn triggered(&self, wal_records: u64, wal_bytes: u64) -> bool {
        self.wal_record_limit
            .is_some_and(|limit| wal_records >= limit)
            || self.wal_byte_limit.is_some_and(|limit| wal_bytes >= limit)
    }
}

/// Why a durable operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The dataset is degraded to read-only after an unrecoverable WAL
    /// failure; reads keep serving.
    ReadOnly {
        /// What flipped the dataset read-only.
        reason: String,
    },
    /// The request itself is invalid (parse/encode error) — nothing was
    /// logged or applied.
    Rejected {
        /// Parser/encoder diagnostic.
        message: String,
    },
    /// An I/O operation outside the write path failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        message: String,
    },
    /// Recovery found state it cannot trust (an acknowledged WAL record
    /// that no longer parses, or no decodable snapshot among existing
    /// files).
    Corrupt {
        /// Diagnostic.
        message: String,
    },
    /// The snapshot was written under a different inference fragment.
    FragmentMismatch {
        /// Fragment name stored in the image.
        stored: String,
        /// Fragment the caller asked to resume under.
        requested: String,
    },
    /// The data directory holds no snapshot image at all.
    NoSnapshot,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::ReadOnly { reason } => {
                write!(f, "dataset is read-only: {reason}")
            }
            DurableError::Rejected { message } => write!(f, "rejected: {message}"),
            DurableError::Io { context, message } => write!(f, "{context}: {message}"),
            DurableError::Corrupt { message } => write!(f, "corrupt state: {message}"),
            DurableError::FragmentMismatch { stored, requested } => write!(
                f,
                "snapshot was materialized under fragment {stored}, not {requested}"
            ),
            DurableError::NoSnapshot => write!(f, "no snapshot image in data directory"),
        }
    }
}

impl std::error::Error for DurableError {}

/// Operator-visible durability state (surfaced through `GET /status`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// `true` once the dataset degraded to read-only.
    pub read_only: bool,
    /// The newest snapshot image, if one was written or recovered.
    pub snapshot_path: Option<PathBuf>,
    /// Epoch covered by that image.
    pub snapshot_epoch: u64,
    /// Last WAL sequence number folded into that image.
    pub last_checkpoint_seq: u64,
    /// Last WAL sequence number acknowledged.
    pub last_seq: u64,
    /// Records appended since the last checkpoint.
    pub wal_records: u64,
    /// Bytes appended since the last checkpoint.
    pub wal_bytes: u64,
    /// The most recent persistence error, if any.
    pub last_error: Option<String>,
}

impl DurabilityStatus {
    /// The status as a JSON object (the server splices this into
    /// `GET /status`).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"read_only\":{}", self.read_only));
        out.push_str(",\"snapshot_path\":");
        match &self.snapshot_path {
            Some(path) => out.push_str(&json_string(&path.display().to_string())),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"snapshot_epoch\":{},\"last_checkpoint_seq\":{},\"last_seq\":{},\
             \"wal_records\":{},\"wal_bytes\":{}",
            self.snapshot_epoch,
            self.last_checkpoint_seq,
            self.last_seq,
            self.wal_records,
            self.wal_bytes
        ));
        out.push_str(",\"last_error\":");
        match &self.last_error {
            Some(error) => out.push_str(&json_string(error)),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What [`DurableDataset::open`] did to get back to a serving state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The image recovery restored from.
    pub snapshot_path: PathBuf,
    /// Epoch of that image.
    pub snapshot_epoch: u64,
    /// Newer snapshot files that failed validation and were skipped.
    pub invalid_snapshots: usize,
    /// WAL records replayed on top of the image.
    pub replayed_records: usize,
    /// WAL records skipped because the image already covered them.
    pub skipped_records: usize,
    /// Bytes of torn/corrupt WAL tail that were discarded.
    pub torn_tail_bytes: usize,
    /// Epoch the dataset resumed serving at.
    pub epoch: u64,
    /// Triples in the resumed (materialized) store.
    pub triples: usize,
}

#[derive(Debug)]
struct DurableState {
    last_seq: u64,
    wal_records: u64,
    wal_bytes: u64,
    snapshot_epoch: u64,
    snapshot_seq: u64,
    snapshot_path: Option<PathBuf>,
    last_error: Option<String>,
}

/// A crash-safe [`ServingDataset`]: WAL + snapshot images behind an
/// [`IoBackend`].
#[derive(Debug)]
pub struct DurableDataset {
    inner: Arc<ServingDataset>,
    backend: Arc<dyn IoBackend>,
    dir: PathBuf,
    fragment_name: String,
    policy: CheckpointPolicy,
    read_only: AtomicBool,
    state: Mutex<DurableState>,
    /// Leaf mutex (last in the lock order) holding a pre-built copy of the
    /// operator status. Refreshed at the end of every state transition —
    /// still under the state lock — so `GET /status` never waits behind a
    /// WAL append, materialization, or checkpoint in flight.
    status_mirror: Mutex<DurabilityStatus>,
}

impl DurableDataset {
    /// Materializes a freshly loaded dataset and writes its initial
    /// snapshot image — the creation is only reported successful once the
    /// dataset is durable.
    pub fn create(
        loaded: LoadedDataset,
        fragment: Fragment,
        options: InferrayOptions,
        dir: impl Into<PathBuf>,
        backend: Arc<dyn IoBackend>,
        policy: CheckpointPolicy,
    ) -> Result<(Self, InferenceStats), DurableError> {
        let dir = dir.into();
        backend.create_dir_all(&dir).map_err(|e| DurableError::Io {
            context: format!("creating data directory {}", dir.display()),
            message: e.to_string(),
        })?;
        let (dataset, stats) = ServingDataset::materialize(loaded, fragment, options);
        let durable = DurableDataset {
            inner: Arc::new(dataset),
            backend,
            dir,
            fragment_name: fragment.to_string(),
            policy,
            read_only: AtomicBool::new(false),
            state: Mutex::new(DurableState {
                last_seq: 0,
                wal_records: 0,
                wal_bytes: 0,
                snapshot_epoch: 0,
                snapshot_seq: 0,
                snapshot_path: None,
                last_error: None,
            }),
            status_mirror: Mutex::new(DurabilityStatus::default()),
        };
        durable.checkpoint()?;
        Ok((durable, stats))
    }

    /// Recovers from a data directory: newest valid snapshot image + WAL
    /// replay, tolerating invalid newer images and a torn log tail.
    pub fn open(
        dir: impl Into<PathBuf>,
        fragment: Fragment,
        options: InferrayOptions,
        backend: Arc<dyn IoBackend>,
        policy: CheckpointPolicy,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let dir = dir.into();
        let (image, snapshot_path, invalid_snapshots) =
            DurableDataset::newest_valid_image(backend.as_ref(), &dir)?;
        let requested = fragment.to_string();
        if image.fragment != requested {
            return Err(DurableError::FragmentMismatch {
                stored: image.fragment,
                requested,
            });
        }
        let SnapshotImage {
            epoch,
            last_seq: snapshot_seq,
            dictionary,
            base,
            materialized,
            ..
        } = image;
        let inner =
            ServingDataset::from_parts(dictionary, base, materialized, epoch, fragment, options);

        // Replay the WAL suffix through the live write path.
        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = match backend.read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(DurableError::Io {
                    context: format!("reading {}", wal_path.display()),
                    message: e.to_string(),
                })
            }
        };
        let scan = wal::scan(&wal_bytes);
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        let mut last_seq = snapshot_seq;
        for record in &scan.records {
            if record.seq <= snapshot_seq {
                skipped += 1;
                continue;
            }
            let triples = parse_ntriples(&record.body).map_err(|e| DurableError::Corrupt {
                message: format!(
                    "WAL record {} passed its checksum but does not parse: {e}",
                    record.seq
                ),
            })?;
            match record.kind {
                WalKind::Assert => {
                    inner.extend(triples).map_err(|e| DurableError::Corrupt {
                        message: format!("replaying WAL record {}: {e}", record.seq),
                    })?;
                }
                WalKind::Retract => {
                    inner.retract(triples).map_err(|e| DurableError::Corrupt {
                        message: format!("replaying WAL record {}: {e}", record.seq),
                    })?;
                }
            }
            replayed += 1;
            last_seq = record.seq;
        }

        // A torn tail must be cut before new appends, or the garbage bytes
        // would permanently corrupt every future scan. Failing to cut it is
        // not fatal — but the dataset must then refuse writes.
        let mut read_only_reason = None;
        if scan.torn_tail {
            if let Err(e) = backend.write_atomic(&wal_path, &wal_bytes[..scan.valid_bytes]) {
                read_only_reason = Some(format!(
                    "could not truncate torn WAL tail of {}: {e}",
                    wal_path.display()
                ));
            }
        }

        let (snapshot, _) = inner.snapshot();
        let report = RecoveryReport {
            snapshot_path: snapshot_path.clone(),
            snapshot_epoch: epoch,
            invalid_snapshots,
            replayed_records: replayed,
            skipped_records: skipped,
            torn_tail_bytes: wal_bytes.len() - scan.valid_bytes,
            epoch: snapshot.epoch(),
            triples: snapshot.store().len(),
        };
        let durable = DurableDataset {
            inner: Arc::new(inner),
            backend,
            dir,
            fragment_name: requested,
            policy,
            read_only: AtomicBool::new(read_only_reason.is_some()),
            state: Mutex::new(DurableState {
                last_seq,
                wal_records: scan.records.len() as u64,
                wal_bytes: scan.valid_bytes as u64,
                snapshot_epoch: epoch,
                snapshot_seq,
                snapshot_path: Some(snapshot_path),
                last_error: read_only_reason,
            }),
            status_mirror: Mutex::new(DurabilityStatus::default()),
        };
        {
            let state = durable.lock_state();
            durable.refresh_status_mirror(&state);
        }
        Ok((durable, report))
    }

    fn newest_valid_image(
        backend: &dyn IoBackend,
        dir: &Path,
    ) -> Result<(SnapshotImage, PathBuf, usize), DurableError> {
        let files = backend.list(dir).map_err(|e| DurableError::Io {
            context: format!("listing {}", dir.display()),
            message: e.to_string(),
        })?;
        let mut candidates: Vec<(u64, PathBuf)> = files
            .into_iter()
            .filter_map(|path| {
                let name = path.file_name()?.to_str()?;
                Some((snapshot::parse_snapshot_file_name(name)?, path.clone()))
            })
            .collect();
        if candidates.is_empty() {
            return Err(DurableError::NoSnapshot);
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        let total = candidates.len();
        let mut invalid = 0usize;
        for (_, path) in candidates {
            let Ok(bytes) = backend.read(&path) else {
                invalid += 1;
                continue;
            };
            match snapshot::decode_image(&bytes) {
                Ok(image) => return Ok((image, path, invalid)),
                Err(_) => invalid += 1,
            }
        }
        Err(DurableError::Corrupt {
            message: format!("all {total} snapshot images failed validation"),
        })
    }

    /// The underlying dataset, for query engines and status endpoints.
    /// Reads stay available even when the dataset is read-only.
    pub fn dataset(&self) -> &Arc<ServingDataset> {
        &self.inner
    }

    /// `true` once an unrecoverable WAL failure degraded writes.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Current durability state for operators. Reads only the status
    /// mirror — a leaf mutex held for a field copy — so the endpoint stays
    /// responsive while a write holds the state lock across WAL append,
    /// materialization, and checkpointing.
    pub fn status(&self) -> DurabilityStatus {
        unpoison(self.status_mirror.lock()).clone()
    }

    /// Rebuilds the operator-visible mirror from the authoritative state.
    /// Called at the end of every state transition, still under the state
    /// lock (lock order: persist state → status mirror, the leaf).
    fn refresh_status_mirror(&self, state: &DurableState) {
        let status = DurabilityStatus {
            read_only: self.read_only.load(Ordering::Acquire),
            snapshot_path: state.snapshot_path.clone(),
            snapshot_epoch: state.snapshot_epoch,
            last_checkpoint_seq: state.snapshot_seq,
            last_seq: state.last_seq,
            wal_records: state.wal_records,
            wal_bytes: state.wal_bytes,
            last_error: state.last_error.clone(),
        };
        *unpoison(self.status_mirror.lock()) = status;
    }

    /// Durably asserts an N-Triples batch: WAL append + fsync, then
    /// incremental materialization and publish.
    pub fn extend_ntriples(&self, body: &str) -> Result<InferenceStats, DurableError> {
        let triples = parse_ntriples(body).map_err(|e| DurableError::Rejected {
            message: e.to_string(),
        })?;
        let mut state = self.log_record(WalKind::Assert, body)?;
        match self.inner.extend(triples) {
            Ok(stats) => {
                self.maybe_checkpoint(&mut state);
                self.refresh_status_mirror(&state);
                Ok(stats)
            }
            Err(e) => {
                // The record is durable but was not applied — the in-memory
                // and on-disk histories have diverged, which only read-only
                // mode keeps safe (recovery will replay the record).
                let reason = format!("logged write failed to apply: {e}");
                state.last_error = Some(reason.clone());
                self.read_only.store(true, Ordering::Release);
                self.refresh_status_mirror(&state);
                Err(DurableError::ReadOnly { reason })
            }
        }
    }

    /// Durably retracts an N-Triples batch (delete–rederive), returning the
    /// stats and the epoch serving the result.
    pub fn retract_ntriples(&self, body: &str) -> Result<(RetractionStats, u64), DurableError> {
        let triples = parse_ntriples(body).map_err(|e| DurableError::Rejected {
            message: e.to_string(),
        })?;
        let mut state = self.log_record(WalKind::Retract, body)?;
        match self.inner.retract(triples) {
            Ok((stats, epoch)) => {
                self.maybe_checkpoint(&mut state);
                self.refresh_status_mirror(&state);
                Ok((stats, epoch))
            }
            Err(e) => {
                // Unreachable today — a durable dataset never has a shape
                // gate (the CLI forbids `--shapes` with `--data-dir`, see
                // docs/shapes.md) — but if a refusal ever did happen here
                // the record is already durable while memory refused it:
                // the same divergence as a failed extend, handled the same.
                let reason = format!("logged write failed to apply: {e}");
                state.last_error = Some(reason.clone());
                self.read_only.store(true, Ordering::Release);
                self.refresh_status_mirror(&state);
                Err(DurableError::ReadOnly { reason })
            }
        }
    }

    /// Writes a snapshot image of the current state and truncates the WAL.
    pub fn checkpoint(&self) -> Result<PathBuf, DurableError> {
        let mut state = self.lock_state();
        let result = self.checkpoint_locked(&mut state);
        self.refresh_status_mirror(&state);
        result
    }

    fn lock_state(&self) -> MutexGuard<'_, DurableState> {
        unpoison(self.state.lock())
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Appends one record durably; flips read-only on failure. Returns the
    /// held state lock so the caller applies and (maybe) checkpoints under
    /// the same critical section — WAL order equals apply order.
    fn log_record(
        &self,
        kind: WalKind,
        body: &str,
    ) -> Result<MutexGuard<'_, DurableState>, DurableError> {
        if self.is_read_only() {
            return Err(self.read_only_error());
        }
        let mut state = self.lock_state();
        if self.is_read_only() {
            drop(state);
            return Err(self.read_only_error());
        }
        let seq = state.last_seq + 1;
        let record = wal::encode_record(seq, kind, body);
        if let Err(e) = self.backend.append_durable(&self.wal_path(), &record) {
            let reason = format!("WAL append failed: {e}");
            state.last_error = Some(reason.clone());
            self.read_only.store(true, Ordering::Release);
            self.refresh_status_mirror(&state);
            drop(state);
            return Err(DurableError::ReadOnly { reason });
        }
        state.last_seq = seq;
        state.wal_records += 1;
        state.wal_bytes += record.len() as u64;
        Ok(state)
    }

    fn read_only_error(&self) -> DurableError {
        let reason = self
            .lock_state()
            .last_error
            .clone()
            .unwrap_or_else(|| "degraded to read-only".to_string());
        DurableError::ReadOnly { reason }
    }

    fn maybe_checkpoint(&self, state: &mut DurableState) {
        if !self.policy.triggered(state.wal_records, state.wal_bytes) {
            return;
        }
        // A failed checkpoint is not fatal: the WAL alone still carries
        // every acknowledged write. Record the error and keep serving.
        if let Err(e) = self.checkpoint_locked(state) {
            state.last_error = Some(format!("checkpoint failed: {e}"));
        }
    }

    fn checkpoint_locked(&self, state: &mut DurableState) -> Result<PathBuf, DurableError> {
        let (dictionary, base, snapshot) = self.inner.persistable_state();
        let image = snapshot::encode_image(
            &dictionary,
            &base,
            snapshot.store(),
            snapshot.epoch(),
            state.last_seq,
            &self.fragment_name,
        );
        let path = self
            .dir
            .join(snapshot::snapshot_file_name(snapshot.epoch()));
        self.backend
            .write_atomic(&path, &image)
            .map_err(|e| DurableError::Io {
                context: format!("writing snapshot {}", path.display()),
                message: e.to_string(),
            })?;
        // Every record at or below last_seq is now covered by the image;
        // truncate the log. If the truncation fails the stale records are
        // merely redundant — replay skips them by sequence number.
        match self.backend.write_atomic(&self.wal_path(), &[]) {
            Ok(()) => {
                state.wal_records = 0;
                state.wal_bytes = 0;
            }
            Err(e) => {
                state.last_error = Some(format!("WAL truncation failed: {e}"));
            }
        }
        state.snapshot_epoch = snapshot.epoch();
        state.snapshot_seq = state.last_seq;
        state.snapshot_path = Some(path.clone());
        self.prune_snapshots(&path);
        Ok(path)
    }

    /// Removes all but the newest [`CheckpointPolicy::snapshots_to_keep`]
    /// images (best-effort; the newest one is never removed).
    fn prune_snapshots(&self, newest: &Path) {
        let keep = self.policy.snapshots_to_keep.max(1);
        let Ok(files) = self.backend.list(&self.dir) else {
            return;
        };
        let mut images: Vec<(u64, PathBuf)> = files
            .into_iter()
            .filter_map(|path| {
                let name = path.file_name()?.to_str()?;
                Some((snapshot::parse_snapshot_file_name(name)?, path.clone()))
            })
            .collect();
        images.sort_by_key(|i| std::cmp::Reverse(i.0));
        for (_, path) in images.into_iter().skip(keep) {
            if path != newest {
                let _ = self.backend.remove(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{Fault, MemFs};
    use inferray_parser::load_ntriples;

    const DATA: &str = "<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
         <http://ex/mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/animal> .\n\
         <http://ex/bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n";

    fn boot(backend: Arc<MemFs>) -> DurableDataset {
        let loaded = load_ntriples(DATA).unwrap();
        let (durable, _) = DurableDataset::create(
            loaded,
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            "data",
            backend,
            CheckpointPolicy::manual(),
        )
        .unwrap();
        durable
    }

    #[test]
    fn create_then_open_resumes_the_same_store() {
        let fs = Arc::new(MemFs::new());
        let original = boot(Arc::clone(&fs));
        original
            .extend_ntriples(
                "<http://ex/lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();

        let rebooted = Arc::new(MemFs::from_view(fs.durable_view()));
        let (recovered, report) = DurableDataset::open(
            "data",
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            rebooted,
            CheckpointPolicy::manual(),
        )
        .unwrap();

        assert_eq!(report.replayed_records, 1);
        let (live, live_dict) = original.dataset().snapshot();
        let (back, back_dict) = recovered.dataset().snapshot();
        assert_eq!(live.epoch(), back.epoch());
        assert_eq!(live.store(), back.store());
        assert_eq!(*live_dict, *back_dict);
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_is_skipped_on_replay() {
        let fs = Arc::new(MemFs::new());
        let durable = boot(Arc::clone(&fs));
        durable
            .extend_ntriples(
                "<http://ex/lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();
        durable.checkpoint().unwrap();
        assert_eq!(fs.read(Path::new("data/wal.log")).unwrap(), b"");

        let rebooted = Arc::new(MemFs::from_view(fs.durable_view()));
        let (_, report) = DurableDataset::open(
            "data",
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            rebooted,
            CheckpointPolicy::manual(),
        )
        .unwrap();
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.skipped_records, 0);
    }

    #[test]
    fn failed_fsync_degrades_to_read_only_without_applying() {
        let fs = Arc::new(MemFs::new());
        let durable = boot(Arc::clone(&fs));
        let epoch_before = durable.dataset().epoch();
        fs.inject(Fault::FailSync);
        let err = durable
            .extend_ntriples(
                "<http://ex/lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap_err();
        assert!(matches!(err, DurableError::ReadOnly { .. }));
        assert!(durable.is_read_only());
        // The failed write never published.
        assert_eq!(durable.dataset().epoch(), epoch_before);
        // Subsequent writes are refused outright…
        assert!(matches!(
            durable.extend_ntriples("<http://ex/a> <http://ex/p> <http://ex/b> .\n"),
            Err(DurableError::ReadOnly { .. })
        ));
        // …and the status says so.
        let status = durable.status();
        assert!(status.read_only);
        assert!(status.last_error.is_some());
        assert!(status.json().contains("\"read_only\":true"));
    }

    #[test]
    fn open_refuses_a_fragment_mismatch() {
        let fs = Arc::new(MemFs::new());
        let _ = boot(Arc::clone(&fs));
        let err = DurableDataset::open(
            "data",
            Fragment::RhoDf,
            InferrayOptions::default(),
            fs,
            CheckpointPolicy::manual(),
        )
        .unwrap_err();
        assert!(matches!(err, DurableError::FragmentMismatch { .. }));
    }

    #[test]
    fn open_on_an_empty_directory_reports_no_snapshot() {
        let err = DurableDataset::open(
            "data",
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            Arc::new(MemFs::new()),
            CheckpointPolicy::manual(),
        )
        .unwrap_err();
        assert_eq!(err, DurableError::NoSnapshot);
    }

    #[test]
    fn a_corrupt_newest_snapshot_falls_back_to_the_previous_one() {
        let fs = Arc::new(MemFs::new());
        let durable = boot(Arc::clone(&fs));
        // Write a second image at a later epoch, then corrupt it.
        durable
            .extend_ntriples(
                "<http://ex/lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();
        let newest = durable.checkpoint().unwrap();
        fs.corrupt_byte(&newest, 40, 0xFF);

        let rebooted = Arc::new(MemFs::from_view(fs.durable_view()));
        let (recovered, report) = DurableDataset::open(
            "data",
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            rebooted,
            CheckpointPolicy::manual(),
        )
        .unwrap();
        assert_eq!(report.invalid_snapshots, 1);
        // Bit rot in the newest image after its WAL was truncated is the
        // one scenario where recovery legitimately resumes at an *older*
        // state (docs/persistence.md): the older image is intact, the rot
        // is detected, and the server still comes up serving.
        assert_eq!(recovered.dataset().epoch(), report.epoch);
        assert_eq!(report.snapshot_epoch, 0);
    }

    #[test]
    fn record_limit_triggers_automatic_checkpoints() {
        let fs = Arc::new(MemFs::new());
        let loaded = load_ntriples(DATA).unwrap();
        let (durable, _) = DurableDataset::create(
            loaded,
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            "data",
            Arc::clone(&fs) as Arc<dyn IoBackend>,
            CheckpointPolicy {
                wal_record_limit: Some(2),
                wal_byte_limit: None,
                snapshots_to_keep: 2,
            },
        )
        .unwrap();
        durable
            .extend_ntriples("<http://ex/a> <http://ex/p> <http://ex/b> .\n")
            .unwrap();
        assert!(!fs.read(Path::new("data/wal.log")).unwrap().is_empty());
        durable
            .extend_ntriples("<http://ex/c> <http://ex/p> <http://ex/d> .\n")
            .unwrap();
        // Second record crossed the limit: checkpoint + truncation.
        assert!(fs.read(Path::new("data/wal.log")).unwrap().is_empty());
        assert_eq!(durable.status().last_checkpoint_seq, 2);
    }
}
