//! The I/O seam: every byte the persistence layer writes goes through an
//! [`IoBackend`], so tests can substitute a deterministic in-memory
//! filesystem ([`MemFs`]) that injects torn writes, failed fsyncs and
//! power loss at exact record boundaries.
//!
//! The trait deliberately exposes *durability-shaped* primitives rather
//! than POSIX calls: [`IoBackend::append_durable`] is "append these bytes
//! and do not return success until they are on stable storage" (the WAL
//! primitive), [`IoBackend::write_atomic`] is "replace this file's contents
//! all-or-nothing" (the checkpoint primitive, tmp-file + fsync + rename on
//! a real filesystem).

use inferray_store::unpoison;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Abstract durable storage. Implementations must be safe to share across
/// threads; the callers serialize writers themselves.
pub trait IoBackend: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Appends `data` to `path` (creating it if absent) and flushes it to
    /// stable storage before returning. On error the file may hold a
    /// *prefix* of `data` (a torn write) — callers must tolerate that.
    fn append_durable(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Replaces the contents of `path` with `data` atomically: after a
    /// crash the file holds either its old contents or all of `data`,
    /// never a mix.
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Removes a file. Missing files are an error (callers check first).
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// The files directly inside `dir`, in sorted order. A missing
    /// directory reads as empty.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Whether `path` exists as a file.
    fn exists(&self, path: &Path) -> bool;
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The production backend: `std::fs` with explicit `sync_all` calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl StdFs {
    /// Best-effort fsync of a directory so a rename/create inside it is
    /// itself durable. Ignored on platforms where opening a directory
    /// fails — the rename is still atomic, only its durability timing is
    /// weakened.
    fn sync_dir(dir: &Path) {
        if let Ok(handle) = fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
}

impl IoBackend for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn append_durable(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(data)?;
        file.sync_all()
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = match (path.parent(), path.file_name()) {
            (Some(dir), Some(name)) => {
                let mut tmp_name = name.to_os_string();
                tmp_name.push(".tmp");
                dir.join(tmp_name)
            }
            _ => return Err(io::Error::new(io::ErrorKind::InvalidInput, "bad path")),
        };
        let mut file = fs::File::create(&tmp)?;
        file.write_all(data)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            StdFs::sync_dir(dir);
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault-injected in-memory filesystem
// ---------------------------------------------------------------------------

/// A fault to inject into a [`MemFs`]. Faults are queued with
/// [`MemFs::inject`] and each is consumed by the next operation of the
/// matching kind, so a test can place a failure at an exact write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next [`IoBackend::append_durable`] writes only the first `keep`
    /// bytes of its record (a torn/short write that *did* reach the
    /// platter) and reports failure.
    TornAppend {
        /// How many bytes of the record survive on disk.
        keep: usize,
    },
    /// The next `append_durable` writes its bytes into the OS cache but the
    /// fsync fails: the call reports failure, and the appended bytes are
    /// lost at the next power cut (they never became durable).
    FailSync,
    /// The next [`IoBackend::write_atomic`] fails before the rename,
    /// leaving the previous file contents untouched.
    FailAtomicWrite,
    /// The volume disappears: every subsequent operation fails (sticky).
    Offline,
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    /// Full contents, including bytes not yet flushed.
    data: Vec<u8>,
    /// Length of the durable prefix — what survives a power cut.
    synced_len: usize,
}

#[derive(Debug, Default)]
struct MemFsState {
    files: BTreeMap<PathBuf, MemFile>,
    faults: Vec<Fault>,
    offline: bool,
}

/// An in-memory [`IoBackend`] with a power-loss model: each file tracks a
/// durable prefix ([`MemFile::synced_len`]), [`MemFs::durable_view`]
/// snapshots exactly what a crash would leave behind, and queued
/// [`Fault`]s fail specific operations deterministically.
#[derive(Debug, Default)]
pub struct MemFs {
    state: Mutex<MemFsState>,
}

/// What a crash leaves on disk: path → durable bytes.
pub type DurableView = BTreeMap<PathBuf, Vec<u8>>;

impl MemFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Reconstructs a filesystem from a crash image, as if the machine
    /// rebooted: every surviving byte is durable.
    pub fn from_view(view: DurableView) -> Self {
        let files = view
            .into_iter()
            .map(|(path, data)| {
                let synced_len = data.len();
                (path, MemFile { data, synced_len })
            })
            .collect();
        MemFs {
            state: Mutex::new(MemFsState {
                files,
                faults: Vec::new(),
                offline: false,
            }),
        }
    }

    /// Queues a fault for the next matching operation. `Fault::Offline`
    /// takes effect immediately and is sticky.
    pub fn inject(&self, fault: Fault) {
        let mut state = self.lock();
        if fault == Fault::Offline {
            state.offline = true;
        } else {
            state.faults.push(fault);
        }
    }

    /// Snapshot of what a power cut *right now* would leave behind: each
    /// file truncated to its durable prefix.
    pub fn durable_view(&self) -> DurableView {
        self.lock()
            .files
            .iter()
            .map(|(path, file)| (path.clone(), file.data[..file.synced_len].to_vec()))
            .collect()
    }

    /// The full (possibly not-yet-durable) contents of a file.
    pub fn raw(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|f| f.data.clone())
    }

    /// XORs `mask` into the byte at `offset` (bit-flip injection).
    /// Panics if the file or offset does not exist — corruption tests
    /// address bytes they know are there.
    pub fn corrupt_byte(&self, path: &Path, offset: usize, mask: u8) {
        let mut state = self.lock();
        let file = state
            .files
            .get_mut(path)
            .expect("corrupt_byte: no such file");
        file.data[offset] ^= mask;
        file.synced_len = file.synced_len.max(offset + 1);
    }

    /// Truncates a file to `len` bytes (both content and durable prefix).
    pub fn truncate(&self, path: &Path, len: usize) {
        let mut state = self.lock();
        let file = state.files.get_mut(path).expect("truncate: no such file");
        file.data.truncate(len);
        file.synced_len = file.synced_len.min(len);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemFsState> {
        unpoison(self.state.lock())
    }

    fn take_fault(state: &mut MemFsState, matches: impl Fn(Fault) -> bool) -> Option<Fault> {
        let index = state.faults.iter().position(|&f| matches(f))?;
        Some(state.faults.remove(index))
    }

    fn offline_err() -> io::Error {
        io::Error::other("injected fault: volume offline")
    }
}

impl IoBackend for MemFs {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        if self.lock().offline {
            return Err(MemFs::offline_err());
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock();
        if state.offline {
            return Err(MemFs::offline_err());
        }
        state
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn append_durable(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        if state.offline {
            return Err(MemFs::offline_err());
        }
        let fault = MemFs::take_fault(&mut state, |f| {
            matches!(f, Fault::TornAppend { .. } | Fault::FailSync)
        });
        let file = state.files.entry(path.to_path_buf()).or_default();
        match fault {
            None => {
                file.data.extend_from_slice(data);
                file.synced_len = file.data.len();
                Ok(())
            }
            Some(Fault::TornAppend { keep }) => {
                let keep = keep.min(data.len());
                file.data.extend_from_slice(&data[..keep]);
                // The torn prefix reached the platter before the failure.
                file.synced_len = file.data.len();
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "injected fault: torn append ({keep} of {} bytes)",
                        data.len()
                    ),
                ))
            }
            Some(Fault::FailSync) => {
                // The bytes sit in the page cache but never reach stable
                // storage: visible to reads now, gone after a power cut.
                file.data.extend_from_slice(data);
                Err(io::Error::other("injected fault: fsync failed"))
            }
            // take_fault only hands this path TornAppend/FailSync today;
            // treat any future fault kind as a failed sync rather than
            // panicking inside the I/O layer.
            Some(_) => {
                file.data.extend_from_slice(data);
                Err(io::Error::other(
                    "injected fault: unrecognized, treated as fsync failure",
                ))
            }
        }
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        if state.offline {
            return Err(MemFs::offline_err());
        }
        if MemFs::take_fault(&mut state, |f| f == Fault::FailAtomicWrite).is_some() {
            return Err(io::Error::other("injected fault: atomic write failed"));
        }
        state.files.insert(
            path.to_path_buf(),
            MemFile {
                synced_len: data.len(),
                data: data.to_vec(),
            },
        );
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if state.offline {
            return Err(MemFs::offline_err());
        }
        state
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let state = self.lock();
        if state.offline {
            return Err(MemFs::offline_err());
        }
        Ok(state
            .files
            .keys()
            .filter(|path| path.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_durable_and_survive_the_view_round_trip() {
        let fs = MemFs::new();
        let path = Path::new("d/wal.log");
        fs.append_durable(path, b"hello ").unwrap();
        fs.append_durable(path, b"world").unwrap();
        let rebooted = MemFs::from_view(fs.durable_view());
        assert_eq!(rebooted.read(path).unwrap(), b"hello world");
    }

    #[test]
    fn torn_append_keeps_a_prefix_and_reports_failure() {
        let fs = MemFs::new();
        let path = Path::new("d/wal.log");
        fs.append_durable(path, b"aaaa").unwrap();
        fs.inject(Fault::TornAppend { keep: 2 });
        assert!(fs.append_durable(path, b"bbbb").is_err());
        assert_eq!(fs.durable_view()[path], b"aaaabb");
    }

    #[test]
    fn failed_sync_loses_the_bytes_at_the_next_crash() {
        let fs = MemFs::new();
        let path = Path::new("d/wal.log");
        fs.append_durable(path, b"safe").unwrap();
        fs.inject(Fault::FailSync);
        assert!(fs.append_durable(path, b"lost").is_err());
        // Visible before the crash…
        assert_eq!(fs.read(path).unwrap(), b"safelost");
        // …gone after it.
        assert_eq!(fs.durable_view()[path], b"safe");
    }

    #[test]
    fn failed_atomic_write_preserves_the_old_contents() {
        let fs = MemFs::new();
        let path = Path::new("d/snap.img");
        fs.write_atomic(path, b"old").unwrap();
        fs.inject(Fault::FailAtomicWrite);
        assert!(fs.write_atomic(path, b"new").is_err());
        assert_eq!(fs.read(path).unwrap(), b"old");
    }

    #[test]
    fn offline_is_sticky() {
        let fs = MemFs::new();
        fs.inject(Fault::Offline);
        assert!(fs.append_durable(Path::new("x"), b"y").is_err());
        assert!(fs.read(Path::new("x")).is_err());
    }

    #[test]
    fn list_returns_only_direct_children_sorted() {
        let fs = MemFs::new();
        fs.write_atomic(Path::new("d/b"), b"").unwrap();
        fs.write_atomic(Path::new("d/a"), b"").unwrap();
        fs.write_atomic(Path::new("d/sub/c"), b"").unwrap();
        let listed = fs.list(Path::new("d")).unwrap();
        assert_eq!(listed, vec![PathBuf::from("d/a"), PathBuf::from("d/b")]);
    }

    #[test]
    fn std_fs_round_trips_under_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("inferray-persist-io-{}", std::process::id()));
        let fs = StdFs;
        fs.create_dir_all(&dir).unwrap();
        let wal = dir.join("wal.log");
        fs.append_durable(&wal, b"abc").unwrap();
        fs.append_durable(&wal, b"def").unwrap();
        assert_eq!(fs.read(&wal).unwrap(), b"abcdef");
        fs.write_atomic(&wal, b"reset").unwrap();
        assert_eq!(fs.read(&wal).unwrap(), b"reset");
        assert!(fs.exists(&wal));
        assert_eq!(fs.list(&dir).unwrap(), vec![wal.clone()]);
        fs.remove(&wal).unwrap();
        assert!(!fs.exists(&wal));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
