//! # inferray-persist
//!
//! Durable storage for the Inferray serving layer (docs/persistence.md):
//!
//! - [`snapshot`] — the checksummed, mmap-able snapshot image: dictionary +
//!   pair tables + epoch, length-prefixed with a CRC-32 per section;
//! - [`wal`] — the write-ahead log of assert/retract batches, fsync'd
//!   before the in-memory publish, tolerant of a torn tail record;
//! - [`io`] — the [`IoBackend`] seam between the formats and the disk,
//!   with a production `std::fs` backend ([`StdFs`]) and a deterministic
//!   fault-injecting in-memory backend ([`MemFs`]) that models power loss,
//!   torn writes and failed fsyncs for the crash-recovery test suite;
//! - [`durable`] — [`DurableDataset`], the crash-safe
//!   [`ServingDataset`](inferray_core::ServingDataset): WAL-then-publish
//!   writes, threshold-triggered checkpoints, recovery by image + replay,
//!   and graceful read-only degradation when the log cannot be appended.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod durable;
pub mod io;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use durable::{
    CheckpointPolicy, DurabilityStatus, DurableDataset, DurableError, RecoveryReport,
};
pub use io::{DurableView, Fault, IoBackend, MemFs, StdFs};
pub use snapshot::{
    decode_image, encode_image, parse_snapshot_file_name, snapshot_file_name, SnapshotError,
    SnapshotImage,
};
pub use wal::{WalKind, WalRecord, WalScan, WAL_FILE};
