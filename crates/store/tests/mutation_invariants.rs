//! Property-based invariant suite over every public store mutation path:
//! after any sequence of merges, removals, retractions and id remaps, the
//! store passes `debug_validate` (sorted, deduplicated, even-length pair
//! arrays) and every table's ⟨o,s⟩ cache is either invalidated or
//! byte-identical to a rebuild from the current ⟨s,o⟩ pairs.

use inferray_model::ids::{PROPERTY_BASE, RESOURCE_BASE};
use inferray_model::IdTriple;
use inferray_sort::sort_pairs_auto_dedup;
use inferray_store::TripleStore;
use proptest::prelude::*;
use std::collections::HashMap;

// Small dense windows of the paper's split id space: properties count
// downwards from 2³², resources upwards from 2³² + 1.
const P_RANGE: u64 = 4;
const ID_RANGE: u64 = 24;

fn prop_id() -> impl Strategy<Value = u64> {
    (0u64..P_RANGE).prop_map(|k| PROPERTY_BASE - k)
}

fn resource_id() -> impl Strategy<Value = u64> {
    (0u64..ID_RANGE).prop_map(|k| RESOURCE_BASE + k)
}

/// One step drawn from the store's public mutation surface.
#[derive(Debug, Clone)]
enum Mutation {
    /// `TripleStore::merge_property` with a (possibly unsorted) delta.
    Merge { p: u64, delta: Vec<u64> },
    /// `TripleStore::remove_pairs` on one property.
    RemovePairs { p: u64, victims: Vec<u64> },
    /// `TripleStore::retract` across properties.
    Retract { triples: Vec<(u64, u64, u64)> },
    /// `TripleStore::remap_ids` — the blank-node promotion path.
    Remap { from: Vec<u64>, to: Vec<u64> },
    /// `TripleStore::add_pair` + `finalize` — the ingest path.
    Add { triples: Vec<(u64, u64, u64)> },
}

fn arbitrary_pairs(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(resource_id(), 0..max_len).prop_map(|mut v| {
        if v.len() % 2 == 1 {
            v.pop();
        }
        v
    })
}

fn arbitrary_triples(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((prop_id(), resource_id(), resource_id()), 0..max_len)
}

fn arbitrary_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (prop_id(), arbitrary_pairs(24)).prop_map(|(p, delta)| Mutation::Merge { p, delta }),
        (prop_id(), arbitrary_pairs(16))
            .prop_map(|(p, victims)| Mutation::RemovePairs { p, victims }),
        arbitrary_triples(12).prop_map(|triples| Mutation::Retract { triples }),
        (
            proptest::collection::vec(resource_id(), 0..6),
            proptest::collection::vec(resource_id(), 0..6)
        )
            .prop_map(|(from, to)| Mutation::Remap { from, to }),
        arbitrary_triples(12).prop_map(|triples| Mutation::Add { triples }),
    ]
}

fn apply(store: &mut TripleStore, mutation: &Mutation) {
    match mutation {
        Mutation::Merge { p, delta } => {
            let mut sorted = delta.clone();
            sort_pairs_auto_dedup(&mut sorted);
            let (merged, _) = store.merge_property(*p, sorted);
            store.set_table(*p, merged);
        }
        Mutation::RemovePairs { p, victims } => {
            store.remove_pairs(*p, victims);
        }
        Mutation::Retract { triples } => {
            store.retract(triples.iter().map(|&(p, s, o)| IdTriple::new(s, p, o)));
        }
        Mutation::Remap { from, to } => {
            let remap: HashMap<u64, u64> = from
                .iter()
                .zip(to.iter())
                .filter(|(f, t)| f != t)
                .map(|(&f, &t)| (f, t))
                .collect();
            store.remap_ids(&remap);
            // The remap path intentionally leaves tables dirty (promotions
            // run mid-load); the loader finalizes afterwards, and so do we.
            store.finalize();
        }
        Mutation::Add { triples } => {
            for &(p, s, o) in triples {
                store.add_pair(p, s, o);
            }
            store.finalize();
        }
    }
}

/// Every table's ⟨o,s⟩ cache is invalidated or identical to a rebuild.
/// (`debug_validate` checks the same equality, but only for clean tables —
/// this asserts the dichotomy explicitly for every slot, then validates.)
fn assert_cache_coherent(store: &TripleStore) {
    for p in store.property_ids() {
        let Some(table) = store.table(p) else {
            continue;
        };
        if let Some(os) = table.os_pairs() {
            let mut rebuilt: Vec<u64> = table.iter_pairs().flat_map(|(s, o)| [o, s]).collect();
            sort_pairs_auto_dedup(&mut rebuilt);
            assert_eq!(os, &rebuilt[..], "stale ⟨o,s⟩ cache for property {p}");
        }
    }
    if let Err(violation) = store.debug_validate() {
        panic!("debug_validate after mutation: {violation}");
    }
}

proptest! {
    #[test]
    fn mutations_preserve_store_invariants(
        base in arbitrary_triples(40),
        mutations in proptest::collection::vec(arbitrary_mutation(), 1..8),
        ensure_between in proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 8),
    ) {
        let mut store = TripleStore::from_triples(
            base.iter().map(|&(p, s, o)| IdTriple::new(s, p, o)),
        );
        store.ensure_all_os();
        assert_cache_coherent(&store);
        for (i, mutation) in mutations.iter().enumerate() {
            apply(&mut store, mutation);
            assert_cache_coherent(&store);
            // Interleave cache rebuilds so later mutations hit tables both
            // with and without a live ⟨o,s⟩ cache.
            if ensure_between[i % ensure_between.len()] {
                store.ensure_all_os();
                assert_cache_coherent(&store);
            }
        }
        // The publish boundary: finalize + full rebuild must validate.
        store.finalize();
        store.ensure_all_os();
        assert_cache_coherent(&store);
    }
}
