//! Triple-pattern matching over the vertically partitioned store.
//!
//! The paper positions Inferray as the inference layer of a triple store, so
//! the store exposes the basic lookup primitive such a store needs: matching
//! a `(subject?, predicate?, object?)` pattern, where `None` is a wildcard.
//! Bound-predicate patterns resolve to one property table and run as binary
//! searches / contiguous scans over the sorted arrays; unbound-predicate
//! patterns scan every table (the vertical-partitioning trade-off the
//! original vertical-partitioning paper acknowledges).

use crate::triple_store::TripleStore;
use inferray_model::IdTriple;

/// A `(subject?, predicate?, object?)` pattern; `None` is a wildcard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<u64>,
    /// Predicate constraint.
    pub p: Option<u64>,
    /// Object constraint.
    pub o: Option<u64>,
}

impl TriplePattern {
    /// A fully wildcard pattern.
    pub fn any() -> Self {
        TriplePattern::default()
    }

    /// Pattern with a bound subject.
    pub fn with_s(mut self, s: u64) -> Self {
        self.s = Some(s);
        self
    }

    /// Pattern with a bound predicate.
    pub fn with_p(mut self, p: u64) -> Self {
        self.p = Some(p);
        self
    }

    /// Pattern with a bound object.
    pub fn with_o(mut self, o: u64) -> Self {
        self.o = Some(o);
        self
    }

    /// `true` when `triple` matches this pattern.
    pub fn matches(&self, triple: &IdTriple) -> bool {
        self.s.is_none_or(|s| s == triple.s)
            && self.p.is_none_or(|p| p == triple.p)
            && self.o.is_none_or(|o| o == triple.o)
    }
}

impl TripleStore {
    /// Returns every triple matching the pattern, in ⟨p, s, o⟩ order for
    /// bound-predicate patterns and table order otherwise.
    ///
    /// Bound-predicate lookups touch a single property table:
    ///
    /// * `(s, p, o)` — one binary search;
    /// * `(s, p, ?)` — one binary search plus a contiguous scan;
    /// * `(?, p, o)` — uses the ⟨o,s⟩ cache when materialized, otherwise a
    ///   linear scan of the table;
    /// * `(?, p, ?)` — a full scan of that table.
    ///
    /// Unbound-predicate patterns scan every non-empty table.
    pub fn match_pattern(&self, pattern: TriplePattern) -> Vec<IdTriple> {
        let mut out = Vec::new();
        match pattern.p {
            Some(p) => {
                if let Some(table) = self.table(p) {
                    match_in_table(table, p, pattern, &mut out);
                }
            }
            None => {
                for (p, table) in self.iter_tables() {
                    match_in_table(table, p, pattern, &mut out);
                }
            }
        }
        out
    }

    /// Number of triples matching the pattern (no materialization of the
    /// result vector beyond what the lookup itself needs).
    pub fn count_pattern(&self, pattern: TriplePattern) -> usize {
        self.match_pattern(pattern).len()
    }
}

fn match_in_table(
    table: &crate::property_table::PropertyTable,
    p: u64,
    pattern: TriplePattern,
    out: &mut Vec<IdTriple>,
) {
    match (pattern.s, pattern.o) {
        (Some(s), Some(o)) => {
            if table.contains_pair(s, o) {
                out.push(IdTriple::new(s, p, o));
            }
        }
        (Some(s), None) => {
            for o in table.objects_of(s) {
                out.push(IdTriple::new(s, p, o));
            }
        }
        (None, Some(o)) => {
            if table.os_pairs().is_some() {
                for s in table.subjects_of(o) {
                    out.push(IdTriple::new(s, p, o));
                }
            } else {
                for (s, obj) in table.iter_pairs() {
                    if obj == o {
                        out.push(IdTriple::new(s, p, o));
                    }
                }
            }
        }
        (None, None) => {
            for (s, o) in table.iter_pairs() {
                out.push(IdTriple::new(s, p, o));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let p1 = 1u64 << 32;
        let p2 = p1 - 1;
        TripleStore::from_triples([
            IdTriple::new(10, p1, 20),
            IdTriple::new(10, p1, 21),
            IdTriple::new(11, p1, 20),
            IdTriple::new(10, p2, 30),
        ])
    }

    #[test]
    fn fully_bound_pattern_is_a_membership_test() {
        let s = store();
        let p1 = 1u64 << 32;
        let hit = TriplePattern::any().with_s(10).with_p(p1).with_o(21);
        assert_eq!(s.match_pattern(hit), vec![IdTriple::new(10, p1, 21)]);
        let miss = TriplePattern::any().with_s(11).with_p(p1).with_o(21);
        assert!(s.match_pattern(miss).is_empty());
    }

    #[test]
    fn subject_predicate_pattern_scans_one_run() {
        let s = store();
        let p1 = 1u64 << 32;
        let result = s.match_pattern(TriplePattern::any().with_s(10).with_p(p1));
        assert_eq!(result.len(), 2);
        assert!(result.iter().all(|t| t.s == 10 && t.p == p1));
    }

    #[test]
    fn object_predicate_pattern_with_and_without_cache() {
        let mut s = store();
        let p1 = 1u64 << 32;
        let pattern = TriplePattern::any().with_p(p1).with_o(20);
        let without_cache = s.match_pattern(pattern);
        s.ensure_all_os();
        let with_cache = s.match_pattern(pattern);
        assert_eq!(without_cache.len(), 2);
        let mut a = without_cache;
        let mut b = with_cache;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn unbound_predicate_scans_every_table() {
        let s = store();
        let all = s.match_pattern(TriplePattern::any());
        assert_eq!(all.len(), 4);
        let subject10 = s.match_pattern(TriplePattern::any().with_s(10));
        assert_eq!(subject10.len(), 3);
        let object30 = s.match_pattern(TriplePattern::any().with_o(30));
        assert_eq!(object30.len(), 1);
    }

    #[test]
    fn missing_table_and_counts() {
        let s = store();
        let unknown_p = (1u64 << 32) - 5;
        assert!(s
            .match_pattern(TriplePattern::any().with_p(unknown_p))
            .is_empty());
        assert_eq!(s.count_pattern(TriplePattern::any()), 4);
        assert_eq!(s.count_pattern(TriplePattern::any().with_s(99)), 0);
    }

    #[test]
    fn pattern_matches_predicate() {
        let t = IdTriple::new(1, 2, 3);
        assert!(TriplePattern::any().matches(&t));
        assert!(TriplePattern::any().with_s(1).with_o(3).matches(&t));
        assert!(!TriplePattern::any().with_p(9).matches(&t));
    }
}
