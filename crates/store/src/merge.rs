//! The per-iteration property-table update of Figure 5.
//!
//! After all rules have fired, every property table that received inferred
//! pairs is updated in two linear steps:
//!
//! 1. the inferred pairs are sorted on ⟨s,o⟩ and deduplicated (one call to
//!    the low-entropy kernels of `inferray-sort`);
//! 2. *main* and *inferred* are merged list-wise: pairs already in *main*
//!    are skipped (second layer of duplicate elimination), pairs that are
//!    genuinely new are appended both to the updated *main* and to *new*,
//!    which seeds the next fixed-point iteration.
//!
//! "The time complexity of the whole process is linear as both lists are
//! sorted."
//!
//! ## Adaptivity
//!
//! Linear is the right *complexity*, but the seed implementation always
//! rebuilt the whole merged vector — O(|main|) allocation and copying even
//! when the delta was a handful of pairs. After the second fixed-point
//! iteration that is the dominant regime: the frontier shrinks every round
//! while *main* keeps growing. [`merge_new_pairs_with`] therefore picks a
//! strategy per call (reported in [`MergeOutcome::strategy`]):
//!
//! * [`MergeStrategy::TailAppend`] — every inferred pair sorts after the
//!   last pair of *main*: extend in place, no merge at all;
//! * [`MergeStrategy::GallopSplice`] — the delta is small relative to
//!   *main* (`|delta| · 8 ≤ |main|`): find each pair's position by a
//!   galloping (exponential + binary) search from the previous position,
//!   drop duplicates, and splice the survivors into *main* with one
//!   backward in-place merge pass — no rebuild, no allocation beyond the
//!   vector's amortized growth;
//! * within the galloping path, a **fully duplicate** delta short-circuits:
//!   *main* is untouched and its ⟨o,s⟩ cache survives;
//! * [`MergeStrategy::Rebuild`] — comparable sizes (the first iterations):
//!   the seed's linear rebuild, which is optimal there.
//!
//! Sorting scratch comes from a caller-provided
//! [`SortScratch`](inferray_sort::SortScratch), so the steady state
//! performs zero sort allocations (see `inferray-sort`).

use crate::property_table::PropertyTable;
use inferray_sort::{sort_pairs_auto_dedup_with, SortScratch};

/// A delta this many times smaller than *main* takes the galloping splice
/// path instead of the linear rebuild.
const GALLOP_FACTOR: usize = 8;

/// How one merge was executed (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Nothing to merge (empty delta after dedup) or fully duplicate delta.
    #[default]
    NoOp,
    /// *main* was empty; the delta became the table.
    Bootstrap,
    /// Delta appended after the last pair of *main*.
    TailAppend,
    /// Galloping duplicate scan + backward in-place splice.
    GallopSplice,
    /// Classic full rebuild of the merged vector (the seed path).
    Rebuild,
}

/// Counters describing one merge (used by the access profile and the tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Pairs handed in by the rule executors, before any deduplication.
    pub inferred_raw: usize,
    /// Duplicates removed by the sort-dedup of the inferred buffer (step 1).
    pub duplicates_within_inferred: usize,
    /// Inferred pairs skipped because they were already in *main* (step 2).
    pub duplicates_against_main: usize,
    /// Genuinely new pairs added to *main* and *new*.
    pub new_pairs: usize,
    /// The execution strategy the adaptive merge chose.
    pub strategy: MergeStrategy,
}

/// Merges raw inferred pairs into `main` with a throwaway sort scratch.
/// Prefer [`merge_new_pairs_with`] on hot paths.
pub fn merge_new_pairs(
    main: &mut PropertyTable,
    inferred: Vec<u64>,
) -> (PropertyTable, MergeOutcome) {
    merge_new_pairs_with(main, inferred, &mut SortScratch::new())
}

/// Merges raw inferred pairs into `main`, returning the *new* table (the
/// pairs that were not previously in `main`) and the merge counters.
///
/// `main` must be finalized (sorted, duplicate-free); it is updated in place
/// and its ⟨o,s⟩ cache is invalidated when new pairs arrive, as required by
/// §4.2 ("in the case of receiving new triples in a property table, the
/// possibly existing ⟨o,s⟩ sorted cache is invalidated"). A merge that adds
/// nothing leaves `main` — and its cache — untouched.
pub fn merge_new_pairs_with(
    main: &mut PropertyTable,
    mut inferred: Vec<u64>,
    scratch: &mut SortScratch,
) -> (PropertyTable, MergeOutcome) {
    assert!(
        inferred.len().is_multiple_of(2),
        "pair array must have even length"
    );
    let mut outcome = MergeOutcome {
        inferred_raw: inferred.len() / 2,
        ..MergeOutcome::default()
    };

    // Step 1: sort and deduplicate the inferred pairs (reused scratch).
    sort_pairs_auto_dedup_with(&mut inferred, scratch);
    outcome.duplicates_within_inferred = outcome.inferred_raw - inferred.len() / 2;

    if inferred.is_empty() {
        return (PropertyTable::new(), outcome);
    }

    // Step 2: pick the cheapest correct merge strategy.
    enum Path {
        Bootstrap,
        TailAppend,
        Gallop,
        Rebuild,
    }
    let path = {
        let old = main.pairs();
        if old.is_empty() {
            Path::Bootstrap
        } else if (inferred[0], inferred[1]) > (old[old.len() - 2], old[old.len() - 1]) {
            Path::TailAppend
        } else if inferred.len() * GALLOP_FACTOR <= old.len() {
            Path::Gallop
        } else {
            Path::Rebuild
        }
    };

    match path {
        Path::Bootstrap => {
            outcome.new_pairs = inferred.len() / 2;
            outcome.strategy = MergeStrategy::Bootstrap;
            main.replace_with_sorted(inferred.clone());
            let mut new_table = PropertyTable::new();
            new_table.replace_with_sorted(inferred);
            (new_table, outcome)
        }
        Path::TailAppend => {
            outcome.new_pairs = inferred.len() / 2;
            outcome.strategy = MergeStrategy::TailAppend;
            main.append_sorted_suffix(&inferred);
            let mut new_table = PropertyTable::new();
            new_table.replace_with_sorted(inferred);
            (new_table, outcome)
        }
        Path::Gallop => {
            // Pass 1: classify each inferred pair by galloping through
            // `main` from the previous match position, compacting the
            // genuinely new pairs to the front of `inferred` in place.
            let mut write = 0usize;
            {
                let old = main.pairs();
                let n_old = old.len() / 2;
                let mut cursor = 0usize;
                let mut read = 0usize;
                while read < inferred.len() {
                    let key = (inferred[read], inferred[read + 1]);
                    cursor = gallop_lower_bound(old, cursor, key);
                    if cursor < n_old && old[2 * cursor] == key.0 && old[2 * cursor + 1] == key.1 {
                        outcome.duplicates_against_main += 1;
                    } else {
                        inferred[write] = key.0;
                        inferred[write + 1] = key.1;
                        write += 2;
                    }
                    read += 2;
                }
            }
            inferred.truncate(write);
            outcome.new_pairs = write / 2;
            if write == 0 {
                // Fully duplicate delta: nothing changes, cache survives.
                outcome.strategy = MergeStrategy::NoOp;
                return (PropertyTable::new(), outcome);
            }
            outcome.strategy = MergeStrategy::GallopSplice;
            // Pass 2: one backward in-place merge of the survivors.
            main.splice_in_sorted(&inferred);
            let mut new_table = PropertyTable::new();
            new_table.replace_with_sorted(inferred);
            (new_table, outcome)
        }
        Path::Rebuild => {
            let (new_table, rebuild) = rebuild_merge(main, &inferred);
            outcome.duplicates_against_main = rebuild.duplicates_against_main;
            outcome.new_pairs = rebuild.new_pairs;
            outcome.strategy = MergeStrategy::Rebuild;
            (new_table, outcome)
        }
    }
}

/// The seed's always-rebuild merge, kept as the reference/baseline
/// implementation for the `table_update` benchmark and the adaptive-merge
/// property tests. Takes raw pairs like [`merge_new_pairs`]: the input is
/// sorted and deduplicated internally (with a throwaway, allocating
/// scratch — exactly the seed's behavior).
pub fn merge_new_pairs_rebuild(
    main: &mut PropertyTable,
    mut inferred: Vec<u64>,
) -> (PropertyTable, MergeOutcome) {
    assert!(
        inferred.len().is_multiple_of(2),
        "pair array must have even length"
    );
    let mut outcome = MergeOutcome {
        inferred_raw: inferred.len() / 2,
        ..MergeOutcome::default()
    };
    inferray_sort::sort_pairs_auto_dedup(&mut inferred);
    outcome.duplicates_within_inferred = outcome.inferred_raw - inferred.len() / 2;
    if inferred.is_empty() {
        return (PropertyTable::new(), outcome);
    }
    let (new_table, rebuild) = rebuild_merge(main, &inferred);
    outcome.duplicates_against_main = rebuild.duplicates_against_main;
    outcome.new_pairs = rebuild.new_pairs;
    outcome.strategy = MergeStrategy::Rebuild;
    (new_table, outcome)
}

struct RebuildCounters {
    duplicates_against_main: usize,
    new_pairs: usize,
}

/// Linear merge of sorted `inferred` into `main`, rebuilding the merged
/// vector (optimal when the two sides have comparable sizes).
fn rebuild_merge(main: &mut PropertyTable, inferred: &[u64]) -> (PropertyTable, RebuildCounters) {
    let old = main.pairs();
    let mut merged: Vec<u64> = Vec::with_capacity(old.len() + inferred.len());
    let mut fresh: Vec<u64> = Vec::new();
    let mut duplicates_against_main = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < inferred.len() {
        let a = (old[i], old[i + 1]);
        let b = (inferred[j], inferred[j + 1]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => {
                merged.extend_from_slice(&[a.0, a.1]);
                i += 2;
            }
            std::cmp::Ordering::Greater => {
                merged.extend_from_slice(&[b.0, b.1]);
                fresh.extend_from_slice(&[b.0, b.1]);
                j += 2;
            }
            std::cmp::Ordering::Equal => {
                // Already known: keep one copy in main, skip in new.
                merged.extend_from_slice(&[a.0, a.1]);
                duplicates_against_main += 1;
                i += 2;
                j += 2;
            }
        }
    }
    if i < old.len() {
        merged.extend_from_slice(&old[i..]);
    }
    while j < inferred.len() {
        merged.extend_from_slice(&inferred[j..j + 2]);
        fresh.extend_from_slice(&inferred[j..j + 2]);
        j += 2;
    }

    let counters = RebuildCounters {
        duplicates_against_main,
        new_pairs: fresh.len() / 2,
    };
    if counters.new_pairs > 0 {
        main.replace_with_sorted(merged);
    }
    let mut new_table = PropertyTable::new();
    new_table.replace_with_sorted(fresh);
    (new_table, counters)
}

/// First pair index `>= lo` whose pair is `>= key`, assuming `pairs` is
/// sorted; exponential probe from `lo` followed by a binary search of the
/// bracketed range. `lo` is the result of the previous search, which makes a
/// whole ascending delta scan O(Σ log(gap)) instead of O(n).
fn gallop_lower_bound(pairs: &[u64], mut lo: usize, key: (u64, u64)) -> usize {
    let n = pairs.len() / 2;
    let at = |i: usize| (pairs[2 * i], pairs[2 * i + 1]);
    if lo >= n || at(lo) >= key {
        return lo.min(n);
    }
    // Invariant from here on: at(lo) < key <= at(hi) (hi may be n).
    let mut step = 1usize;
    let mut hi;
    loop {
        let probe = lo + step;
        if probe >= n {
            hi = n;
            break;
        }
        if at(probe) < key {
            lo = probe;
            step *= 2;
        } else {
            hi = probe;
            break;
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if at(mid) < key {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_sort::is_sorted_pairs;
    use proptest::prelude::*;

    #[test]
    fn paper_figure5_example() {
        // Main: (1,1) (1,8) (9,6) — Inferred: (4,3) (7,3) (2,1) (1,1) (1,2) (1,1)
        // After sort+dedup of inferred: (1,1) (1,2) (2,1) (4,3) (7,3)
        // New: everything except (1,1), which is already in main.
        let mut main = PropertyTable::from_pairs(vec![1, 1, 1, 8, 9, 6]);
        let inferred = vec![4, 3, 7, 3, 2, 1, 1, 1, 1, 2, 1, 1];
        let (new, outcome) = merge_new_pairs(&mut main, inferred);
        assert_eq!(new.pairs(), &[1, 2, 2, 1, 4, 3, 7, 3]);
        assert_eq!(main.pairs(), &[1, 1, 1, 2, 1, 8, 2, 1, 4, 3, 7, 3, 9, 6]);
        assert_eq!(outcome.inferred_raw, 6);
        assert_eq!(outcome.duplicates_within_inferred, 1);
        assert_eq!(outcome.duplicates_against_main, 1);
        assert_eq!(outcome.new_pairs, 4);
        assert_eq!(outcome.strategy, MergeStrategy::Rebuild);
    }

    #[test]
    fn empty_inferred_changes_nothing() {
        let mut main = PropertyTable::from_pairs(vec![3, 3]);
        let before = main.pairs().to_vec();
        let (new, outcome) = merge_new_pairs(&mut main, vec![]);
        assert!(new.is_empty());
        assert_eq!(
            outcome,
            MergeOutcome {
                inferred_raw: 0,
                ..Default::default()
            }
        );
        assert_eq!(main.pairs(), &before[..]);
    }

    #[test]
    fn all_duplicates_produce_empty_new() {
        let mut main = PropertyTable::from_pairs(vec![1, 2, 3, 4]);
        let (new, outcome) = merge_new_pairs(&mut main, vec![3, 4, 1, 2, 1, 2]);
        assert!(new.is_empty());
        assert_eq!(outcome.new_pairs, 0);
        assert_eq!(outcome.duplicates_within_inferred, 1);
        assert_eq!(outcome.duplicates_against_main, 2);
        assert_eq!(main.len(), 2);
    }

    #[test]
    fn merge_into_empty_main() {
        let mut main = PropertyTable::new();
        let (new, outcome) = merge_new_pairs(&mut main, vec![5, 6, 1, 2]);
        assert_eq!(main.pairs(), &[1, 2, 5, 6]);
        assert_eq!(new.pairs(), &[1, 2, 5, 6]);
        assert_eq!(outcome.new_pairs, 2);
        assert_eq!(outcome.strategy, MergeStrategy::Bootstrap);
    }

    #[test]
    fn os_cache_is_invalidated_when_new_pairs_arrive() {
        let mut main = PropertyTable::from_pairs(vec![1, 2]);
        main.ensure_os();
        assert!(main.has_os_cache());
        let (_, outcome) = merge_new_pairs(&mut main, vec![9, 9]);
        assert_eq!(outcome.new_pairs, 1);
        assert!(!main.has_os_cache());
    }

    #[test]
    fn os_cache_survives_a_no_op_merge() {
        let mut main = PropertyTable::from_pairs(vec![1, 2]);
        main.ensure_os();
        let (_, outcome) = merge_new_pairs(&mut main, vec![1, 2]);
        assert_eq!(outcome.new_pairs, 0);
        assert!(main.has_os_cache(), "no new pair ⇒ cache can be kept");
    }

    // -- adaptive-path behaviour ------------------------------------------

    /// A 256-pair main table: (i, 10·i) for i in 0..256.
    fn big_main() -> PropertyTable {
        PropertyTable::from_pairs((0..256u64).flat_map(|i| [i, 10 * i]).collect())
    }

    #[test]
    fn small_fresh_delta_takes_the_gallop_splice_path() {
        let mut main = big_main();
        main.ensure_os();
        let (new, outcome) = merge_new_pairs(&mut main, vec![7, 5, 200, 1]);
        assert_eq!(outcome.strategy, MergeStrategy::GallopSplice);
        assert!(
            !main.has_os_cache(),
            "a splice adds pairs: the ⟨o,s⟩ cache must be invalidated"
        );
        assert_eq!(outcome.new_pairs, 2);
        assert_eq!(new.pairs(), &[7, 5, 200, 1]);
        assert_eq!(main.len(), 258);
        assert!(is_sorted_pairs(main.pairs()));
        assert!(main.contains_pair(7, 5));
        assert!(main.contains_pair(200, 1));
        assert!(main.contains_pair(7, 70), "pre-existing pairs survive");
    }

    #[test]
    fn fully_duplicate_small_delta_short_circuits() {
        let mut main = big_main();
        main.ensure_os();
        let before = main.pairs().to_vec();
        let (new, outcome) = merge_new_pairs(&mut main, vec![3, 30, 100, 1000, 3, 30]);
        assert_eq!(outcome.strategy, MergeStrategy::NoOp);
        assert_eq!(outcome.duplicates_against_main, 2);
        assert_eq!(outcome.duplicates_within_inferred, 1);
        assert!(new.is_empty());
        assert_eq!(main.pairs(), &before[..]);
        assert!(
            main.has_os_cache(),
            "short-circuit must keep the ⟨o,s⟩ cache"
        );
    }

    #[test]
    fn delta_past_the_end_takes_the_tail_append_path() {
        let mut main = big_main();
        main.ensure_os();
        let (new, outcome) = merge_new_pairs(&mut main, vec![999, 1, 500, 2]);
        assert_eq!(outcome.strategy, MergeStrategy::TailAppend);
        assert!(
            !main.has_os_cache(),
            "a tail append adds pairs: the ⟨o,s⟩ cache must be invalidated"
        );
        assert_eq!(outcome.new_pairs, 2);
        assert_eq!(new.pairs(), &[500, 2, 999, 1]);
        assert!(is_sorted_pairs(main.pairs()));
        assert_eq!(main.len(), 258);
    }

    #[test]
    fn gallop_lower_bound_agrees_with_linear_scan() {
        let pairs: Vec<u64> = (0..64u64).flat_map(|i| [i / 2, i % 5]).collect();
        let mut sorted = pairs.clone();
        inferray_sort::sort_pairs_auto(&mut sorted);
        let n = sorted.len() / 2;
        for lo in 0..=n {
            for key in [(0u64, 0u64), (3, 1), (15, 4), (31, 2), (99, 0)] {
                let expected = (lo..n)
                    .find(|&i| (sorted[2 * i], sorted[2 * i + 1]) >= key)
                    .unwrap_or(n)
                    .max(lo);
                assert_eq!(
                    gallop_lower_bound(&sorted, lo, key),
                    expected,
                    "lo = {lo}, key = {key:?}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_merge_semantics(
            main_pairs in proptest::collection::vec(0u64..30, 0..60),
            mut inferred in proptest::collection::vec(0u64..30, 0..60),
        ) {
            let mut main_pairs = main_pairs;
            if main_pairs.len() % 2 == 1 { main_pairs.pop(); }
            if inferred.len() % 2 == 1 { inferred.pop(); }

            let mut main = PropertyTable::from_pairs(main_pairs.clone());
            let before: std::collections::BTreeSet<(u64, u64)> = main.iter_pairs().collect();
            let inferred_set: std::collections::BTreeSet<(u64, u64)> =
                inferred.chunks_exact(2).map(|p| (p[0], p[1])).collect();

            let (new, outcome) = merge_new_pairs(&mut main, inferred);

            let after: std::collections::BTreeSet<(u64, u64)> = main.iter_pairs().collect();
            let new_set: std::collections::BTreeSet<(u64, u64)> = new.iter_pairs().collect();

            // main' = main ∪ inferred, new = inferred \ main, all sorted/deduped.
            let expected_after: std::collections::BTreeSet<(u64, u64)> =
                before.union(&inferred_set).copied().collect();
            let expected_new: std::collections::BTreeSet<(u64, u64)> =
                inferred_set.difference(&before).copied().collect();
            prop_assert_eq!(&after, &expected_after);
            prop_assert_eq!(&new_set, &expected_new);
            prop_assert!(is_sorted_pairs(main.pairs()));
            prop_assert!(is_sorted_pairs(new.pairs()));
            prop_assert_eq!(outcome.new_pairs, expected_new.len());
        }

        /// The adaptive merge must be observationally identical to the seed
        /// rebuild merge — same updated main, same new table, same counters
        /// — across delta-to-main size ratios that hit every strategy.
        #[test]
        fn prop_adaptive_equals_rebuild(
            main_pairs in proptest::collection::vec((0u64..200, 0u64..8), 0..120),
            delta in proptest::collection::vec((0u64..260, 0u64..8), 0..12),
        ) {
            let flat_main: Vec<u64> = main_pairs.iter().flat_map(|&(s, o)| [s, o]).collect();
            let flat_delta: Vec<u64> = delta.iter().flat_map(|&(s, o)| [s, o]).collect();

            let mut adaptive_main = PropertyTable::from_pairs(flat_main.clone());
            let mut rebuild_main = PropertyTable::from_pairs(flat_main);

            let mut scratch = SortScratch::new();
            let (adaptive_new, adaptive_outcome) =
                merge_new_pairs_with(&mut adaptive_main, flat_delta.clone(), &mut scratch);
            let (rebuild_new, rebuild_outcome) =
                merge_new_pairs_rebuild(&mut rebuild_main, flat_delta);

            prop_assert_eq!(adaptive_main.pairs(), rebuild_main.pairs());
            prop_assert_eq!(adaptive_new.pairs(), rebuild_new.pairs());
            prop_assert_eq!(adaptive_outcome.inferred_raw, rebuild_outcome.inferred_raw);
            prop_assert_eq!(
                adaptive_outcome.duplicates_within_inferred,
                rebuild_outcome.duplicates_within_inferred
            );
            prop_assert_eq!(
                adaptive_outcome.duplicates_against_main,
                rebuild_outcome.duplicates_against_main
            );
            prop_assert_eq!(adaptive_outcome.new_pairs, rebuild_outcome.new_pairs);
        }
    }
}
