//! The per-iteration property-table update of Figure 5.
//!
//! After all rules have fired, every property table that received inferred
//! pairs is updated in two linear steps:
//!
//! 1. the inferred pairs are sorted on ⟨s,o⟩ and deduplicated (one call to
//!    the low-entropy kernels of `inferray-sort`);
//! 2. *main* and *inferred* are merged list-wise: pairs already in *main*
//!    are skipped (second layer of duplicate elimination), pairs that are
//!    genuinely new are appended both to the updated *main* and to *new*,
//!    which seeds the next fixed-point iteration.
//!
//! "The time complexity of the whole process is linear as both lists are
//! sorted."

use crate::property_table::PropertyTable;
use inferray_sort::sort_pairs_auto_dedup;

/// Counters describing one merge (used by the access profile and the tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Pairs handed in by the rule executors, before any deduplication.
    pub inferred_raw: usize,
    /// Duplicates removed by the sort-dedup of the inferred buffer (step 1).
    pub duplicates_within_inferred: usize,
    /// Inferred pairs skipped because they were already in *main* (step 2).
    pub duplicates_against_main: usize,
    /// Genuinely new pairs added to *main* and *new*.
    pub new_pairs: usize,
}

/// Merges raw inferred pairs into `main`, returning the *new* table (the
/// pairs that were not previously in `main`) and the merge counters.
///
/// `main` must be finalized (sorted, duplicate-free); it is updated in place
/// and its ⟨o,s⟩ cache is invalidated when new pairs arrive, as required by
/// §4.2 ("in the case of receiving new triples in a property table, the
/// possibly existing ⟨o,s⟩ sorted cache is invalidated").
pub fn merge_new_pairs(main: &mut PropertyTable, mut inferred: Vec<u64>) -> (PropertyTable, MergeOutcome) {
    assert!(inferred.len() % 2 == 0, "pair array must have even length");
    let mut outcome = MergeOutcome {
        inferred_raw: inferred.len() / 2,
        ..MergeOutcome::default()
    };

    // Step 1: sort and deduplicate the inferred pairs.
    sort_pairs_auto_dedup(&mut inferred);
    outcome.duplicates_within_inferred = outcome.inferred_raw - inferred.len() / 2;

    if inferred.is_empty() {
        return (PropertyTable::new(), outcome);
    }

    // Step 2: linear merge of the two sorted lists.
    let old = main.pairs();
    let mut merged: Vec<u64> = Vec::with_capacity(old.len() + inferred.len());
    let mut fresh: Vec<u64> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < inferred.len() {
        let a = (old[i], old[i + 1]);
        let b = (inferred[j], inferred[j + 1]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => {
                merged.extend_from_slice(&[a.0, a.1]);
                i += 2;
            }
            std::cmp::Ordering::Greater => {
                merged.extend_from_slice(&[b.0, b.1]);
                fresh.extend_from_slice(&[b.0, b.1]);
                j += 2;
            }
            std::cmp::Ordering::Equal => {
                // Already known: keep one copy in main, skip in new.
                merged.extend_from_slice(&[a.0, a.1]);
                outcome.duplicates_against_main += 1;
                i += 2;
                j += 2;
            }
        }
    }
    if i < old.len() {
        merged.extend_from_slice(&old[i..]);
    }
    while j < inferred.len() {
        merged.extend_from_slice(&inferred[j..j + 2]);
        fresh.extend_from_slice(&inferred[j..j + 2]);
        j += 2;
    }

    outcome.new_pairs = fresh.len() / 2;
    if outcome.new_pairs > 0 {
        main.replace_with_sorted(merged);
    }
    let mut new_table = PropertyTable::new();
    new_table.replace_with_sorted(fresh);
    (new_table, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_sort::is_sorted_pairs;
    use proptest::prelude::*;

    #[test]
    fn paper_figure5_example() {
        // Main: (1,1) (1,8) (9,6) — Inferred: (4,3) (7,3) (2,1) (1,1) (1,2) (1,1)
        // After sort+dedup of inferred: (1,1) (1,2) (2,1) (4,3) (7,3)
        // New: everything except (1,1), which is already in main.
        let mut main = PropertyTable::from_pairs(vec![1, 1, 1, 8, 9, 6]);
        let inferred = vec![4, 3, 7, 3, 2, 1, 1, 1, 1, 2, 1, 1];
        let (new, outcome) = merge_new_pairs(&mut main, inferred);
        assert_eq!(new.pairs(), &[1, 2, 2, 1, 4, 3, 7, 3]);
        assert_eq!(main.pairs(), &[1, 1, 1, 2, 1, 8, 2, 1, 4, 3, 7, 3, 9, 6]);
        assert_eq!(outcome.inferred_raw, 6);
        assert_eq!(outcome.duplicates_within_inferred, 1);
        assert_eq!(outcome.duplicates_against_main, 1);
        assert_eq!(outcome.new_pairs, 4);
    }

    #[test]
    fn empty_inferred_changes_nothing() {
        let mut main = PropertyTable::from_pairs(vec![3, 3]);
        let before = main.pairs().to_vec();
        let (new, outcome) = merge_new_pairs(&mut main, vec![]);
        assert!(new.is_empty());
        assert_eq!(outcome, MergeOutcome { inferred_raw: 0, ..Default::default() });
        assert_eq!(main.pairs(), &before[..]);
    }

    #[test]
    fn all_duplicates_produce_empty_new() {
        let mut main = PropertyTable::from_pairs(vec![1, 2, 3, 4]);
        let (new, outcome) = merge_new_pairs(&mut main, vec![3, 4, 1, 2, 1, 2]);
        assert!(new.is_empty());
        assert_eq!(outcome.new_pairs, 0);
        assert_eq!(outcome.duplicates_within_inferred, 1);
        assert_eq!(outcome.duplicates_against_main, 2);
        assert_eq!(main.len(), 2);
    }

    #[test]
    fn merge_into_empty_main() {
        let mut main = PropertyTable::new();
        let (new, outcome) = merge_new_pairs(&mut main, vec![5, 6, 1, 2]);
        assert_eq!(main.pairs(), &[1, 2, 5, 6]);
        assert_eq!(new.pairs(), &[1, 2, 5, 6]);
        assert_eq!(outcome.new_pairs, 2);
    }

    #[test]
    fn os_cache_is_invalidated_when_new_pairs_arrive() {
        let mut main = PropertyTable::from_pairs(vec![1, 2]);
        main.ensure_os();
        assert!(main.has_os_cache());
        let (_, outcome) = merge_new_pairs(&mut main, vec![9, 9]);
        assert_eq!(outcome.new_pairs, 1);
        assert!(!main.has_os_cache());
    }

    #[test]
    fn os_cache_survives_a_no_op_merge() {
        let mut main = PropertyTable::from_pairs(vec![1, 2]);
        main.ensure_os();
        let (_, outcome) = merge_new_pairs(&mut main, vec![1, 2]);
        assert_eq!(outcome.new_pairs, 0);
        assert!(main.has_os_cache(), "no new pair ⇒ cache can be kept");
    }

    proptest! {
        #[test]
        fn prop_merge_semantics(
            main_pairs in proptest::collection::vec(0u64..30, 0..60),
            mut inferred in proptest::collection::vec(0u64..30, 0..60),
        ) {
            let mut main_pairs = main_pairs;
            if main_pairs.len() % 2 == 1 { main_pairs.pop(); }
            if inferred.len() % 2 == 1 { inferred.pop(); }

            let mut main = PropertyTable::from_pairs(main_pairs.clone());
            let before: std::collections::BTreeSet<(u64, u64)> = main.iter_pairs().collect();
            let inferred_set: std::collections::BTreeSet<(u64, u64)> =
                inferred.chunks_exact(2).map(|p| (p[0], p[1])).collect();

            let (new, outcome) = merge_new_pairs(&mut main, inferred);

            let after: std::collections::BTreeSet<(u64, u64)> = main.iter_pairs().collect();
            let new_set: std::collections::BTreeSet<(u64, u64)> = new.iter_pairs().collect();

            // main' = main ∪ inferred, new = inferred \ main, all sorted/deduped.
            let expected_after: std::collections::BTreeSet<(u64, u64)> =
                before.union(&inferred_set).copied().collect();
            let expected_new: std::collections::BTreeSet<(u64, u64)> =
                inferred_set.difference(&before).copied().collect();
            prop_assert_eq!(&after, &expected_after);
            prop_assert_eq!(&new_set, &expected_new);
            prop_assert!(is_sorted_pairs(main.pairs()));
            prop_assert!(is_sorted_pairs(new.pairs()));
            prop_assert_eq!(outcome.new_pairs, expected_new.len());
        }
    }
}
