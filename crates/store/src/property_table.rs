//! A single property table: the `⟨s,o⟩` pairs of one predicate.
//!
//! "Property tables are stored in dynamic arrays sorted on ⟨s,o⟩, along with
//! a cached version sorted on ⟨o,s⟩. The cached ⟨o,s⟩ sorted index is
//! computed lazily upon need." (paper §4.2). The ⟨o,s⟩ cache is invalidated
//! whenever new pairs reach the table.

use inferray_sort::{sort_pairs_auto_dedup, sort_pairs_auto_dedup_with, swap_pairs, SortScratch};

/// The sorted pair array of one predicate, with its lazy object-sorted cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertyTable {
    /// Flat `[s0, o0, s1, o1, …]`, sorted on ⟨s,o⟩ and duplicate-free when
    /// `dirty` is false.
    so: Vec<u64>,
    /// Cache of the same pairs *swapped and* sorted on ⟨o,s⟩, stored as flat
    /// `[o0, s0, o1, s1, …]`. `None` until requested.
    os: Option<Vec<u64>>,
    /// `true` when unsorted pairs have been appended since the last
    /// [`PropertyTable::finalize`].
    dirty: bool,
}

impl PropertyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PropertyTable::default()
    }

    /// Drops the ⟨o,s⟩ cache because the ⟨s,o⟩ pairs are about to change
    /// (or just changed). Every mutation of `so` must reach this method —
    /// the repo lint (`inferray-verify-lint`, rule IL003) walks the call
    /// graph of this file and rejects mutators that do not.
    fn invalidate_os_cache(&mut self) {
        self.os = None;
    }

    /// Creates a table from raw (possibly unsorted, possibly duplicated)
    /// pairs and finalizes it.
    pub fn from_pairs(pairs: Vec<u64>) -> Self {
        let mut table = PropertyTable::from_raw(pairs);
        table.finalize();
        table
    }

    /// Creates a table from raw pairs **without** finalizing it, so the
    /// caller can finalize against its own reusable
    /// [`SortScratch`](inferray_sort::SortScratch) (the parallel ingest
    /// path builds one table per lane this way).
    pub fn from_raw(pairs: Vec<u64>) -> Self {
        assert!(
            pairs.len().is_multiple_of(2),
            "pair array must have even length"
        );
        PropertyTable {
            so: pairs,
            os: None,
            dirty: true,
        }
    }

    /// Number of pairs currently stored (including not-yet-finalized ones).
    pub fn len(&self) -> usize {
        self.so.len() / 2
    }

    /// `true` when the table holds no pair.
    pub fn is_empty(&self) -> bool {
        self.so.is_empty()
    }

    /// `true` when pairs have been appended since the last finalize.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Appends a pair; the table becomes dirty and its ⟨o,s⟩ cache is
    /// dropped.
    pub fn add_pair(&mut self, s: u64, o: u64) {
        self.so.push(s);
        self.so.push(o);
        self.dirty = true;
        self.invalidate_os_cache();
    }

    /// Appends many pairs from a flat slice.
    pub fn add_pairs(&mut self, pairs: &[u64]) {
        assert!(
            pairs.len().is_multiple_of(2),
            "pair array must have even length"
        );
        if pairs.is_empty() {
            return;
        }
        self.so.extend_from_slice(pairs);
        self.dirty = true;
        self.invalidate_os_cache();
    }

    /// Sorts on ⟨s,o⟩ and removes duplicate pairs. Idempotent.
    pub fn finalize(&mut self) {
        if self.dirty {
            sort_pairs_auto_dedup(&mut self.so);
            self.dirty = false;
            self.invalidate_os_cache();
        }
    }

    /// [`PropertyTable::finalize`] against a reusable sort scratch.
    pub fn finalize_with(&mut self, scratch: &mut SortScratch) {
        if self.dirty {
            sort_pairs_auto_dedup_with(&mut self.so, scratch);
            self.dirty = false;
            self.invalidate_os_cache();
        }
    }

    /// The ⟨s,o⟩-sorted flat pair array.
    ///
    /// # Panics
    /// Debug-asserts that the table has been finalized.
    pub fn pairs(&self) -> &[u64] {
        debug_assert!(!self.dirty, "property table read while dirty");
        &self.so
    }

    /// Iterates over the pairs as `(s, o)` tuples, in ⟨s,o⟩ order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pairs().chunks_exact(2).map(|p| (p[0], p[1]))
    }

    /// Mutable access to the raw flat pair buffer, for in-place identifier
    /// patching (the loader's promotion rewrite). The table is marked dirty —
    /// patched values may violate the sort order — and the ⟨o,s⟩ cache is
    /// dropped; callers re-[`finalize`](PropertyTable::finalize) afterwards.
    pub fn pairs_mut(&mut self) -> &mut [u64] {
        self.dirty = true;
        self.invalidate_os_cache();
        &mut self.so
    }

    /// Builds (if needed) the ⟨o,s⟩-sorted cache. Returns the number of
    /// pairs actually re-sorted: `0` when the cache was still valid.
    pub fn ensure_os(&mut self) -> usize {
        self.ensure_os_with(&mut SortScratch::new())
    }

    /// [`PropertyTable::ensure_os`] against a reusable sort scratch.
    pub fn ensure_os_with(&mut self, scratch: &mut SortScratch) -> usize {
        debug_assert!(!self.dirty, "ensure_os on a dirty table");
        if self.dirty {
            // Release-mode safety net: building the cache from unsorted
            // pairs would make `subjects_of` binary-search garbage and
            // silently drop or duplicate `(?, p, o)` answers. Finalize
            // first so the cache is always derived from sorted,
            // duplicate-free pairs.
            self.finalize_with(scratch);
        } else if self.os.is_some() {
            return 0;
        }
        let mut swapped = swap_pairs(&self.so);
        sort_pairs_auto_dedup_with(&mut swapped, scratch);
        self.os = Some(swapped);
        self.len()
    }

    /// The ⟨o,s⟩-sorted flat array (`[o, s, o, s, …]`), when the cache has
    /// been built with [`PropertyTable::ensure_os`].
    pub fn os_pairs(&self) -> Option<&[u64]> {
        self.os.as_deref()
    }

    /// `true` when the ⟨o,s⟩ cache is materialized.
    pub fn has_os_cache(&self) -> bool {
        self.os.is_some()
    }

    /// Drops the ⟨o,s⟩ cache ("this cache may be cleared at runtime if
    /// memory is exhausted").
    pub fn clear_os_cache(&mut self) {
        self.invalidate_os_cache();
    }

    /// Iterates over the objects associated with subject `s` (⟨s,o⟩ order).
    pub fn objects_of(&self, s: u64) -> impl Iterator<Item = u64> + '_ {
        let range = key_range(self.pairs(), s);
        self.pairs()[range].chunks_exact(2).map(|p| p[1])
    }

    /// Iterates over the subjects associated with object `o`. Requires the
    /// ⟨o,s⟩ cache (panics otherwise) — callers ensure it before read-only
    /// parallel phases.
    pub fn subjects_of(&self, o: u64) -> impl Iterator<Item = u64> + '_ {
        let os = self
            .os_pairs()
            .expect("subjects_of requires the ⟨o,s⟩ cache (call ensure_os first)");
        let range = key_range(os, o);
        os[range].chunks_exact(2).map(|p| p[1])
    }

    /// Binary-searches for an exact pair.
    pub fn contains_pair(&self, s: u64, o: u64) -> bool {
        pair_binary_search(self.pairs(), s, o).is_ok()
    }

    /// Replaces the table contents with already-sorted, duplicate-free pairs.
    /// Used by the merge step and by the closure stage.
    pub fn replace_with_sorted(&mut self, pairs: Vec<u64>) {
        debug_assert!(inferray_sort::is_sorted_pairs(&pairs));
        self.so = pairs;
        self.invalidate_os_cache();
        self.dirty = false;
    }

    /// Appends already-sorted pairs that all sort strictly after the current
    /// last pair — the adaptive merge's tail-append strategy. The table
    /// stays finalized; the ⟨o,s⟩ cache is invalidated.
    pub fn append_sorted_suffix(&mut self, pairs: &[u64]) {
        debug_assert!(!self.dirty, "append_sorted_suffix on a dirty table");
        debug_assert!(inferray_sort::is_sorted_pairs(pairs));
        debug_assert!(
            self.so.is_empty()
                || pairs.is_empty()
                || (self.so[self.so.len() - 2], self.so[self.so.len() - 1]) < (pairs[0], pairs[1]),
            "suffix must sort after the whole table"
        );
        if pairs.is_empty() {
            return;
        }
        self.so.extend_from_slice(pairs);
        self.invalidate_os_cache();
    }

    /// Splices already-sorted, duplicate-free pairs **known to be absent**
    /// from the table into place with one backward in-place merge pass — the
    /// adaptive merge's small-delta strategy. No rebuild allocation: the
    /// vector grows by `fresh.len()`, and the existing pairs between
    /// insertion points move as whole blocks (`copy_within`, i.e. memmove)
    /// rather than pair by pair, so the shift runs at copy bandwidth.
    pub fn splice_in_sorted(&mut self, fresh: &[u64]) {
        debug_assert!(!self.dirty, "splice_in_sorted on a dirty table");
        debug_assert!(fresh.len().is_multiple_of(2));
        debug_assert!(inferray_sort::is_sorted_pairs(fresh));
        if fresh.is_empty() {
            return;
        }
        let old_len = self.so.len();
        self.so.resize(old_len + fresh.len(), 0);
        let so = &mut self.so;
        let mut read_end = old_len; // exclusive end of the unmoved old region
        let mut write_end = so.len(); // exclusive end of the write region
        let mut take = fresh.len();
        while take > 0 {
            let key = (fresh[take - 2], fresh[take - 1]);
            // Everything in the old region strictly greater than `key`
            // belongs after it: move that block in one memmove. (`key` is
            // absent from the table, so lower bound == upper bound.)
            let boundary = 2 * pair_binary_search(&so[..read_end], key.0, key.1)
                .unwrap_or_else(|insertion| insertion);
            let block = read_end - boundary;
            if block > 0 {
                so.copy_within(boundary..read_end, write_end - block);
                write_end -= block;
                read_end = boundary;
            }
            so[write_end - 2] = key.0;
            so[write_end - 1] = key.1;
            write_end -= 2;
            take -= 2;
        }
        // The remaining old prefix is already in place.
        self.invalidate_os_cache();
    }

    /// Removes the given pairs from the table **in place**, preserving the
    /// ⟨s,o⟩ sort order, and returns how many pairs were actually removed.
    ///
    /// `remove` is a flat `[s, o, …]` array in any order; pairs not present
    /// in the table are ignored. The table stays finalized — deletion never
    /// perturbs the order of the surviving pairs — but the ⟨o,s⟩ cache is
    /// dropped whenever something was removed (the same invariant the merge
    /// paths of the update stage maintain: a table whose ⟨s,o⟩ pairs changed
    /// must never serve a stale object-sorted view).
    ///
    /// The compaction is a single forward pass: surviving pairs between two
    /// removal points move as whole blocks (`copy_within`), mirroring
    /// [`PropertyTable::splice_in_sorted`] in reverse.
    pub fn remove_pairs(&mut self, remove: &[u64]) -> usize {
        debug_assert!(!self.dirty, "remove_pairs on a dirty table");
        debug_assert!(
            remove.len().is_multiple_of(2),
            "pair array must have even length"
        );
        if remove.is_empty() || self.so.is_empty() {
            return 0;
        }
        // Sort (and dedup) the victims so both sides can be walked in one
        // coordinated pass.
        let mut victims = remove.to_vec();
        inferray_sort::sort_pairs_auto_dedup(&mut victims);

        let so = &mut self.so;
        let mut write = 0usize; // exclusive end of the compacted prefix
        let mut read = 0usize; // start of the unexamined region
        for victim in victims.chunks_exact(2) {
            let key = (victim[0], victim[1]);
            // Locate the victim among the not-yet-examined pairs.
            let Ok(hit) = pair_binary_search(&so[read..], key.0, key.1) else {
                continue; // not present: nothing to remove
            };
            let hit = read + 2 * hit;
            // Retain the block of survivors before it in one memmove.
            let block = hit - read;
            if block > 0 && write != read {
                so.copy_within(read..hit, write);
            }
            write += block;
            read = hit + 2; // skip the removed pair
        }
        let removed = (read - write) / 2;
        if removed == 0 {
            return 0;
        }
        // Retain the tail after the last removal.
        let tail = so.len() - read;
        if tail > 0 {
            so.copy_within(read.., write);
        }
        so.truncate(write + tail);
        self.invalidate_os_cache();
        removed
    }

    /// Removes a single pair; returns `true` when it was present.
    pub fn remove_pair(&mut self, s: u64, o: u64) -> bool {
        self.remove_pairs(&[s, o]) == 1
    }

    /// Consumes the table and returns its raw sorted pair vector.
    pub fn into_pairs(mut self) -> Vec<u64> {
        self.finalize();
        self.so
    }

    /// The pairs as `(s, o)` tuples collected into a vector (convenience for
    /// the closure stage, which wants tuple edges).
    pub fn to_tuple_pairs(&self) -> Vec<(u64, u64)> {
        self.iter_pairs().collect()
    }

    /// Rewrites every subject/object identifier through `remap` in place
    /// (identifiers absent from the map are left untouched). This is the
    /// dictionary-promotion patch: remapped values may violate the sort
    /// order, so the table becomes dirty and the caller re-finalizes.
    /// Returns the number of values actually rewritten.
    pub fn remap_values(&mut self, remap: &std::collections::HashMap<u64, u64>) -> usize {
        if remap.is_empty() {
            return 0;
        }
        let mut rewritten = 0usize;
        for value in self.pairs_mut() {
            if let Some(&mapped) = remap.get(value) {
                *value = mapped;
                rewritten += 1;
            }
        }
        rewritten
    }

    /// Exact-or-bounded count of distinct **subjects**, derived from the
    /// ⟨s,o⟩ layout: subjects form contiguous runs, so the count gallops
    /// from run to run with one binary search each. At most `budget` runs
    /// are probed — tables with that many subjects or fewer get an exact
    /// count, larger ones a linear extrapolation over the scanned prefix.
    ///
    /// Cost is `O(budget · log n)` on the frozen array: cheap enough for
    /// the query planner to call per pattern, with no cached state to
    /// invalidate on mutation.
    pub fn distinct_subjects(&self, budget: usize) -> DistinctCount {
        distinct_keys_bounded(self.pairs(), budget)
    }

    /// Exact-or-bounded count of distinct **objects**, from the ⟨o,s⟩
    /// cache (`None` when the cache is not materialized — published
    /// snapshots always have it). Same contract as
    /// [`PropertyTable::distinct_subjects`].
    pub fn distinct_objects(&self, budget: usize) -> Option<DistinctCount> {
        self.os_pairs().map(|os| distinct_keys_bounded(os, budget))
    }

    /// Checks the table's structural invariants, returning a description of
    /// the first violation found:
    ///
    /// * a finalized table is sorted on ⟨s,o⟩ with no duplicate pair;
    /// * the pair array has even length;
    /// * the ⟨o,s⟩ cache, when materialized, is byte-identical to a fresh
    ///   swap-and-sort rebuild of the current pairs (cache coherence).
    ///
    /// This is the runtime counterpart of the lint's static IL003 rule; the
    /// `strict-invariants` feature calls it at every publish boundary.
    pub fn debug_validate(&self) -> Result<(), String> {
        if !self.so.len().is_multiple_of(2) {
            return Err(format!("pair array has odd length {}", self.so.len()));
        }
        if self.dirty {
            // A dirty table is mid-mutation; only the shape is checkable.
            return Ok(());
        }
        if !inferray_sort::is_sorted_pairs(&self.so) {
            return Err("finalized table is not sorted on ⟨s,o⟩".to_string());
        }
        for w in self.so.chunks_exact(2).collect::<Vec<_>>().windows(2) {
            if w[0] == w[1] {
                return Err(format!("duplicate pair ({}, {})", w[0][0], w[0][1]));
            }
        }
        if let Some(os) = self.os.as_deref() {
            let mut rebuilt = swap_pairs(&self.so);
            sort_pairs_auto_dedup(&mut rebuilt);
            if os != rebuilt.as_slice() {
                return Err(
                    "⟨o,s⟩ cache is stale: differs from a fresh rebuild of the pairs".to_string(),
                );
            }
        }
        Ok(())
    }
}

/// An exact-or-estimated distinct-key count (see
/// [`PropertyTable::distinct_subjects`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistinctCount {
    /// Number of distinct keys (exact, or a bounded estimate).
    pub count: usize,
    /// `true` when the full array was walked within the probe budget.
    pub exact: bool,
}

/// Counts distinct first components of a flat sorted pair array by
/// galloping across runs; extrapolates once `budget` runs were probed.
fn distinct_keys_bounded(pairs: &[u64], budget: usize) -> DistinctCount {
    let n = pairs.len() / 2;
    let budget = budget.max(1);
    let mut runs = 0usize;
    let mut idx = 0usize; // pair index of the next unexamined run
    while idx < n {
        if runs == budget {
            // Estimate: runs seen across the scanned prefix, scaled to the
            // whole array. At least one more run exists (we stopped on it).
            let scaled = runs.saturating_mul(n) / idx;
            return DistinctCount {
                count: scaled.clamp(runs + 1, n),
                exact: false,
            };
        }
        // Skip the run: upper bound of this subject within [idx, n).
        let key = pairs[2 * idx];
        let mut lo = idx + 1;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pairs[2 * mid] <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        idx = lo;
        runs += 1;
    }
    DistinctCount {
        count: runs,
        exact: true,
    }
}

/// Binary search over a flat pair array sorted on its (first, second)
/// components; `Ok(pair_index)` on exact match, `Err(insertion_pair_index)`
/// otherwise.
fn pair_binary_search(pairs: &[u64], first: u64, second: u64) -> Result<usize, usize> {
    let n = pairs.len() / 2;
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let key = (pairs[2 * mid], pairs[2 * mid + 1]);
        match key.cmp(&(first, second)) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// The element range (even offsets) of all pairs whose first component
/// equals `key` in a flat sorted pair array.
fn key_range(pairs: &[u64], key: u64) -> std::ops::Range<usize> {
    let n = pairs.len() / 2;
    // Lower bound: first pair with first component >= key.
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pairs[2 * mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let start = lo;
    // Upper bound: first pair with first component > key.
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pairs[2 * mid] <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (2 * start)..(2 * lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PropertyTable {
        // (5,2) (1,9) (1,3) (5,2) (2,7)
        PropertyTable::from_pairs(vec![5, 2, 1, 9, 1, 3, 5, 2, 2, 7])
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.pairs(), &[1, 3, 1, 9, 2, 7, 5, 2]);
        assert!(!t.is_dirty());
    }

    #[test]
    fn add_pair_marks_dirty_and_finalize_restores_order() {
        let mut t = table();
        t.add_pair(0, 1);
        assert!(t.is_dirty());
        t.finalize();
        assert_eq!(t.pairs()[..2], [0, 1]);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut t = table();
        let before = t.pairs().to_vec();
        t.finalize();
        t.finalize();
        assert_eq!(t.pairs(), &before[..]);
    }

    #[test]
    fn os_cache_is_lazy_and_sorted_by_object() {
        let mut t = table();
        assert!(!t.has_os_cache());
        assert!(t.os_pairs().is_none());
        t.ensure_os();
        assert!(t.has_os_cache());
        assert_eq!(t.os_pairs().unwrap(), &[2, 5, 3, 1, 7, 2, 9, 1]);
        t.clear_os_cache();
        assert!(!t.has_os_cache());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn ensure_os_on_a_dirty_table_self_heals_in_release() {
        // In release builds the dirty debug_assert does not fire; the cache
        // must still never be built from unsorted pairs.
        let mut t = PropertyTable::new();
        t.add_pair(9, 1);
        t.add_pair(2, 7);
        t.add_pair(9, 1);
        assert!(t.is_dirty());
        t.ensure_os();
        assert!(!t.is_dirty(), "self-heal finalizes first");
        assert_eq!(t.pairs(), &[2, 7, 9, 1]);
        assert_eq!(t.subjects_of(1).collect::<Vec<_>>(), vec![9]);
        assert_eq!(t.subjects_of(7).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn adding_pairs_invalidates_os_cache() {
        let mut t = table();
        t.ensure_os();
        t.add_pair(9, 9);
        assert!(!t.has_os_cache());
    }

    #[test]
    fn objects_of_returns_contiguous_run() {
        let t = PropertyTable::from_pairs(vec![1, 5, 1, 3, 2, 9, 1, 4]);
        assert_eq!(t.objects_of(1).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(t.objects_of(2).collect::<Vec<_>>(), vec![9]);
        assert_eq!(t.objects_of(42).count(), 0);
    }

    #[test]
    fn subjects_of_uses_os_cache() {
        let mut t = PropertyTable::from_pairs(vec![1, 7, 2, 7, 3, 8]);
        t.ensure_os();
        assert_eq!(t.subjects_of(7).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(t.subjects_of(8).collect::<Vec<_>>(), vec![3]);
        assert_eq!(t.subjects_of(9).count(), 0);
    }

    #[test]
    #[should_panic(expected = "requires the")]
    fn subjects_of_without_cache_panics() {
        let t = table();
        let _ = t.subjects_of(2).count();
    }

    #[test]
    fn contains_pair_binary_search() {
        let t = table();
        assert!(t.contains_pair(1, 9));
        assert!(t.contains_pair(5, 2));
        assert!(!t.contains_pair(1, 4));
        assert!(!t.contains_pair(6, 0));
    }

    #[test]
    fn empty_table_behaviour() {
        let t = PropertyTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(!t.contains_pair(1, 1));
        assert_eq!(t.iter_pairs().count(), 0);
        assert_eq!(t.objects_of(3).count(), 0);
    }

    #[test]
    fn replace_with_sorted_and_into_pairs() {
        let mut t = table();
        t.replace_with_sorted(vec![1, 1, 2, 2]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.into_pairs(), vec![1, 1, 2, 2]);
    }

    #[test]
    fn to_tuple_pairs_round_trip() {
        let t = table();
        let tuples = t.to_tuple_pairs();
        assert_eq!(tuples, vec![(1, 3), (1, 9), (2, 7), (5, 2)]);
    }

    #[test]
    fn remove_pairs_preserves_order_and_reports_count() {
        let mut t = table(); // [1,3, 1,9, 2,7, 5,2]
                             // One absent pair, two present ones, in scrambled input order.
        let removed = t.remove_pairs(&[5, 2, 4, 4, 1, 3]);
        assert_eq!(removed, 2);
        assert_eq!(t.pairs(), &[1, 9, 2, 7]);
        assert!(!t.is_dirty(), "deletion keeps the table finalized");
        // Removing the rest empties the table.
        assert_eq!(t.remove_pairs(&[1, 9, 2, 7]), 2);
        assert!(t.is_empty());
        assert_eq!(t.remove_pairs(&[1, 9]), 0, "already gone");
    }

    #[test]
    fn remove_pairs_invalidates_os_cache_only_when_something_was_removed() {
        let mut t = table();
        t.ensure_os();
        assert_eq!(t.remove_pairs(&[6, 6]), 0);
        assert!(t.has_os_cache(), "no-op removal keeps the cache");
        assert_eq!(t.remove_pairs(&[2, 7]), 1);
        assert!(!t.has_os_cache(), "real removal drops the cache");
        t.ensure_os();
        assert_eq!(t.os_pairs().unwrap(), &[2, 5, 3, 1, 9, 1]);
    }

    #[test]
    fn remove_pairs_handles_duplicate_victims_and_runs() {
        // Consecutive victims force block moves of every size, including
        // zero-length blocks between adjacent removals.
        let mut t = PropertyTable::from_pairs(vec![1, 1, 1, 2, 1, 3, 2, 1, 3, 1, 3, 2]);
        let removed = t.remove_pairs(&[1, 2, 1, 3, 1, 2, 3, 2]);
        assert_eq!(removed, 3, "duplicate victims count once");
        assert_eq!(t.pairs(), &[1, 1, 2, 1, 3, 1]);
    }

    #[test]
    fn remove_pair_single() {
        let mut t = table();
        assert!(t.remove_pair(1, 9));
        assert!(!t.remove_pair(1, 9));
        assert!(!t.contains_pair(1, 9));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_everything_then_refill() {
        let mut t = PropertyTable::from_pairs(vec![7, 8]);
        assert_eq!(t.remove_pairs(&[7, 8]), 1);
        assert!(t.is_empty());
        t.add_pair(9, 9);
        t.finalize();
        assert_eq!(t.pairs(), &[9, 9]);
    }

    #[test]
    fn distinct_counts_are_exact_within_budget() {
        let mut t = PropertyTable::from_pairs(vec![1, 3, 1, 9, 2, 7, 5, 2, 5, 4, 5, 9]);
        assert_eq!(
            t.distinct_subjects(16),
            DistinctCount {
                count: 3,
                exact: true
            }
        );
        assert!(t.distinct_objects(16).is_none(), "no ⟨o,s⟩ cache yet");
        t.ensure_os();
        // Objects: {2, 3, 4, 7, 9} — 9 appears under two subjects.
        assert_eq!(
            t.distinct_objects(16),
            Some(DistinctCount {
                count: 5,
                exact: true
            })
        );
    }

    #[test]
    fn distinct_counts_estimate_past_the_budget() {
        // 100 distinct subjects, one pair each: a budget of 10 scans the
        // first 10 runs and extrapolates 10 * 100 / 10 = 100 exactly here
        // (uniform runs), flagged inexact.
        let pairs: Vec<u64> = (0..100u64).flat_map(|s| [s, s + 1000]).collect();
        let t = PropertyTable::from_pairs(pairs);
        let est = t.distinct_subjects(10);
        assert!(!est.exact);
        assert_eq!(est.count, 100);
        // Skew: one subject owns half the table; the estimate is bounded
        // by the real array size and at least the runs actually seen.
        let mut skew: Vec<u64> = (0..50u64).flat_map(|o| [7, o]).collect();
        skew.extend((100..150u64).flat_map(|s| [s, 1]));
        let t = PropertyTable::from_pairs(skew);
        let est = t.distinct_subjects(4);
        assert!(!est.exact);
        assert!(est.count >= 5 && est.count <= 100, "got {}", est.count);
        // Exact when the budget covers everything.
        assert_eq!(
            t.distinct_subjects(64),
            DistinctCount {
                count: 51,
                exact: true
            }
        );
    }

    #[test]
    fn distinct_counts_on_empty_table() {
        let t = PropertyTable::new();
        assert_eq!(
            t.distinct_subjects(8),
            DistinctCount {
                count: 0,
                exact: true
            }
        );
    }

    #[test]
    fn key_range_bounds() {
        let pairs = vec![1, 1, 1, 2, 3, 0, 3, 9, 7, 7];
        assert_eq!(key_range(&pairs, 1), 0..4);
        assert_eq!(key_range(&pairs, 3), 4..8);
        assert_eq!(key_range(&pairs, 7), 8..10);
        assert_eq!(key_range(&pairs, 0), 0..0);
        assert_eq!(key_range(&pairs, 2), 4..4);
        assert_eq!(key_range(&pairs, 9), 10..10);
    }
}
