//! The [`TripleStore`]: an array of property tables addressed by dense
//! property index.
//!
//! "The principle of vertical partitioning is to store a list of triples
//! ⟨s, p, o⟩ into *n* two-column tables where *n* is the number of unique
//! properties" (§4.2). Because the dictionary numbers properties densely
//! downwards from 2³², translating a property identifier to a slot in the
//! table array is a single subtraction ([`inferray_model::ids::property_index`]).

use crate::merge::{merge_new_pairs, MergeOutcome};
use crate::property_table::PropertyTable;
use inferray_model::ids::{is_property_id, property_id_from_index, property_index};
use inferray_model::IdTriple;

/// A vertically partitioned triple store: one [`PropertyTable`] per
/// predicate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripleStore {
    /// Slot `i` holds the table of the property with dense index `i`.
    tables: Vec<Option<PropertyTable>>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// Builds a store from encoded triples and finalizes it.
    pub fn from_triples(triples: impl IntoIterator<Item = IdTriple>) -> Self {
        let mut store = TripleStore::new();
        for t in triples {
            store.add_triple(t);
        }
        store.finalize();
        store
    }

    /// Adds an encoded triple (the affected table becomes dirty).
    pub fn add_triple(&mut self, triple: IdTriple) {
        self.add_pair(triple.p, triple.s, triple.o);
    }

    /// Adds a ⟨s,o⟩ pair to the table of property `p`.
    pub fn add_pair(&mut self, p: u64, s: u64, o: u64) {
        self.table_or_create(p).add_pair(s, o);
    }

    /// Sorts and deduplicates every dirty table.
    pub fn finalize(&mut self) {
        for table in self.tables.iter_mut().flatten() {
            table.finalize();
        }
    }

    /// The table of property `p`, if any triples with that predicate exist.
    pub fn table(&self, p: u64) -> Option<&PropertyTable> {
        debug_assert!(is_property_id(p), "not a property id: {p}");
        self.tables.get(property_index(p)).and_then(|t| t.as_ref())
    }

    /// Mutable access to the table of property `p`, if it exists.
    pub fn table_mut(&mut self, p: u64) -> Option<&mut PropertyTable> {
        debug_assert!(is_property_id(p), "not a property id: {p}");
        self.tables
            .get_mut(property_index(p))
            .and_then(|t| t.as_mut())
    }

    /// The table of property `p`, created empty if absent.
    pub fn table_or_create(&mut self, p: u64) -> &mut PropertyTable {
        debug_assert!(is_property_id(p), "not a property id: {p}");
        let index = property_index(p);
        if index >= self.tables.len() {
            self.tables.resize_with(index + 1, || None);
        }
        self.tables[index].get_or_insert_with(PropertyTable::new)
    }

    /// Builds the ⟨o,s⟩ cache of the table of `p`, if the table exists.
    /// Returns the number of pairs re-sorted (`0` when the cache was valid).
    pub fn ensure_os(&mut self, p: u64) -> usize {
        self.table_mut(p).map_or(0, |table| table.ensure_os())
    }

    /// Builds the ⟨o,s⟩ cache of every non-empty table. Returns the total
    /// number of pairs actually re-sorted — only the tables whose caches the
    /// preceding merges invalidated contribute, so steady-state iterations
    /// (where most tables are untouched) report a small count.
    pub fn ensure_all_os(&mut self) -> usize {
        self.ensure_all_os_with(&mut inferray_sort::SortScratch::new())
    }

    /// [`TripleStore::ensure_all_os`] against a reusable sort scratch.
    pub fn ensure_all_os_with(&mut self, scratch: &mut inferray_sort::SortScratch) -> usize {
        let mut resorted = 0usize;
        for table in self.tables.iter_mut().flatten() {
            if !table.is_empty() {
                resorted += table.ensure_os_with(scratch);
            }
        }
        resorted
    }

    /// Iterates over the property identifiers that have a (possibly empty)
    /// table.
    pub fn property_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_ref().is_some_and(|t| !t.is_empty()))
            .map(|(i, _)| property_id_from_index(i))
    }

    /// Iterates over `(property id, table)` for every non-empty table.
    pub fn iter_tables(&self) -> impl Iterator<Item = (u64, &PropertyTable)> + '_ {
        self.tables
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (property_id_from_index(i), t)))
            .filter(|(_, t)| !t.is_empty())
    }

    /// Iterates over every stored triple.
    pub fn iter_triples(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.iter_tables()
            .flat_map(|(p, table)| table.iter_pairs().map(move |(s, o)| IdTriple::new(s, p, o)))
    }

    /// Total number of triples (pairs summed over all tables).
    pub fn len(&self) -> usize {
        self.tables.iter().flatten().map(|t| t.len()).sum()
    }

    /// `true` when no triple is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test for a fully encoded triple (binary search).
    pub fn contains(&self, triple: &IdTriple) -> bool {
        self.table(triple.p)
            .is_some_and(|t| t.contains_pair(triple.s, triple.o))
    }

    /// Number of distinct non-empty property tables.
    pub fn table_count(&self) -> usize {
        self.tables
            .iter()
            .flatten()
            .filter(|t| !t.is_empty())
            .count()
    }

    /// Merges raw inferred pairs for property `p` into this store (the
    /// Figure 5 update), returning the *new* table and the merge counters.
    pub fn merge_property(&mut self, p: u64, inferred: Vec<u64>) -> (PropertyTable, MergeOutcome) {
        let table = self.table_or_create(p);
        table.finalize();
        merge_new_pairs(table, inferred)
    }

    /// [`TripleStore::merge_property`] against a reusable sort scratch (the
    /// hot-path variant used by the fixed-point loop).
    pub fn merge_property_with(
        &mut self,
        p: u64,
        inferred: Vec<u64>,
        scratch: &mut inferray_sort::SortScratch,
    ) -> (PropertyTable, MergeOutcome) {
        let table = self.table_or_create(p);
        table.finalize_with(scratch);
        crate::merge::merge_new_pairs_with(table, inferred, scratch)
    }

    /// Removes and returns the table of property `p`, leaving an empty slot.
    /// The parallel update stage takes the affected tables out, merges each
    /// on a worker, and puts the results back with
    /// [`TripleStore::set_table`] — giving workers exclusive ownership
    /// without any locking.
    pub fn take_table(&mut self, p: u64) -> Option<PropertyTable> {
        debug_assert!(is_property_id(p), "not a property id: {p}");
        self.tables
            .get_mut(property_index(p))
            .and_then(|t| t.take())
    }

    /// (Re)installs `table` as the table of property `p`.
    pub fn set_table(&mut self, p: u64, table: PropertyTable) {
        debug_assert!(is_property_id(p), "not a property id: {p}");
        let index = property_index(p);
        if index >= self.tables.len() {
            self.tables.resize_with(index + 1, || None);
        }
        self.tables[index] = Some(table);
    }

    /// Replaces the whole table of property `p` with already-sorted pairs
    /// (used by the transitive-closure stage).
    pub fn replace_table_sorted(&mut self, p: u64, pairs: Vec<u64>) {
        self.table_or_create(p).replace_with_sorted(pairs);
    }

    /// Removes encoded triples **in place**, preserving per-table sort order
    /// (see [`PropertyTable::remove_pairs`]); triples that are not present
    /// are ignored. Returns how many triples were actually removed.
    ///
    /// This is the store half of the delete–rederive maintenance path
    /// (docs/maintenance.md): affected tables stay finalized and their
    /// ⟨o,s⟩ caches are invalidated, exactly as after a merge, so readers of
    /// the mutated store can never observe a stale object-sorted view. A
    /// table whose last pair is removed keeps its (empty) slot — empty
    /// tables are invisible to [`TripleStore::iter_tables`] and
    /// [`TripleStore::property_ids`].
    pub fn retract(&mut self, triples: impl IntoIterator<Item = IdTriple>) -> usize {
        let mut by_property: std::collections::BTreeMap<u64, Vec<u64>> =
            std::collections::BTreeMap::new();
        for t in triples {
            let pairs = by_property.entry(t.p).or_default();
            pairs.push(t.s);
            pairs.push(t.o);
        }
        let mut removed = 0usize;
        for (p, pairs) in by_property {
            debug_assert!(is_property_id(p), "not a property id: {p}");
            if let Some(table) = self.table_mut(p) {
                removed += table.remove_pairs(&pairs);
            }
        }
        removed
    }

    /// Removes the ⟨s,o⟩ pairs of `remove` from the table of property `p`
    /// (flat array, any order); returns how many were removed.
    pub fn remove_pairs(&mut self, p: u64, remove: &[u64]) -> usize {
        self.table_mut(p).map_or(0, |t| t.remove_pairs(remove))
    }

    /// Removes every triple while keeping the allocated table slots.
    pub fn clear(&mut self) {
        for table in self.tables.iter_mut() {
            *table = None;
        }
    }

    /// The raw slot array (slot `i` holds the table of the property with
    /// dense index `i`), including `None` and empty-but-allocated slots.
    ///
    /// The persistence image serializes this exact layout — `None` versus
    /// `Some(empty)` is observable through `PartialEq`, so a recovered
    /// store must reproduce it bit for bit to compare equal to the
    /// pre-crash original.
    pub fn slot_tables(&self) -> &[Option<PropertyTable>] {
        &self.tables
    }

    /// Rebuilds a store from an explicit slot array.
    ///
    /// The caller vouches for the tables' invariants (finalized,
    /// ⟨s,o⟩-sorted, duplicate-free); the persistence layer only feeds back
    /// slots it previously observed through [`TripleStore::slot_tables`].
    pub fn from_slot_tables(tables: Vec<Option<PropertyTable>>) -> Self {
        TripleStore { tables }
    }

    /// Rewrites subject/object identifiers through `remap` across every
    /// table — the dictionary-promotion patch applied when a blank-node or
    /// literal identifier is promoted to a resource identifier. Tables that
    /// had values rewritten become dirty; the caller re-finalizes (the
    /// loader defers this to its batch finalize, the serving layer calls
    /// [`TripleStore::finalize`] immediately). Property identifiers are not
    /// remapped: promotions never change a predicate's dense index.
    pub fn remap_ids(&mut self, remap: &std::collections::HashMap<u64, u64>) -> usize {
        if remap.is_empty() {
            return 0;
        }
        let mut rewritten = 0usize;
        for table in self.tables.iter_mut().flatten() {
            if !table.is_empty() {
                rewritten += table.remap_values(remap);
            }
        }
        rewritten
    }

    /// Checks every table's structural invariants
    /// ([`PropertyTable::debug_validate`]); returns the first violation,
    /// prefixed with the offending property id.
    pub fn debug_validate(&self) -> Result<(), String> {
        for (p, table) in self.tables.iter().enumerate() {
            if let Some(table) = table {
                table
                    .debug_validate()
                    .map_err(|violation| format!("property {p}: {violation}"))?;
            }
        }
        Ok(())
    }

    /// Panics on the first invariant violation [`TripleStore::debug_validate`]
    /// reports. The `strict-invariants` feature calls this at every snapshot
    /// publish boundary; it lives here (not in the publish hot path file) so
    /// the panic site stays out of the lint's IL002 no-panic set.
    pub fn assert_valid(&self) {
        if let Err(violation) = self.debug_validate() {
            panic!("triple store invariant violation: {violation}");
        }
    }
}

impl FromIterator<IdTriple> for TripleStore {
    fn from_iter<I: IntoIterator<Item = IdTriple>>(iter: I) -> Self {
        TripleStore::from_triples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown;

    fn sample_store() -> TripleStore {
        // type(bart, human), type(lisa, human), subClassOf(human, mammal)
        let human = 1_000_000_000_000u64;
        let mammal = human + 1;
        let bart = human + 2;
        let lisa = human + 3;
        TripleStore::from_triples([
            IdTriple::new(bart, wellknown::RDF_TYPE, human),
            IdTriple::new(lisa, wellknown::RDF_TYPE, human),
            IdTriple::new(human, wellknown::RDFS_SUB_CLASS_OF, mammal),
        ])
    }

    #[test]
    fn from_triples_builds_one_table_per_property() {
        let store = sample_store();
        assert_eq!(store.len(), 3);
        assert_eq!(store.table_count(), 2);
        assert_eq!(store.table(wellknown::RDF_TYPE).unwrap().len(), 2);
        assert_eq!(store.table(wellknown::RDFS_SUB_CLASS_OF).unwrap().len(), 1);
        assert!(store.table(wellknown::RDFS_DOMAIN).is_none());
    }

    #[test]
    fn add_and_contains() {
        let mut store = TripleStore::new();
        let t = IdTriple::new(10, wellknown::RDFS_DOMAIN, 20);
        assert!(!store.contains(&t));
        store.add_triple(t);
        store.finalize();
        assert!(store.contains(&t));
        assert!(!store.contains(&IdTriple::new(10, wellknown::RDFS_RANGE, 20)));
    }

    #[test]
    fn duplicate_triples_collapse_on_finalize() {
        let mut store = TripleStore::new();
        for _ in 0..5 {
            store.add_triple(IdTriple::new(1, wellknown::RDF_TYPE, 2));
        }
        store.finalize();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_triples_round_trips() {
        let store = sample_store();
        let collected: Vec<IdTriple> = store.iter_triples().collect();
        assert_eq!(collected.len(), 3);
        let rebuilt = TripleStore::from_triples(collected);
        assert_eq!(rebuilt.len(), store.len());
        for t in store.iter_triples() {
            assert!(rebuilt.contains(&t));
        }
    }

    #[test]
    fn property_ids_lists_only_nonempty_tables() {
        let store = sample_store();
        let mut ids: Vec<u64> = store.property_ids().collect();
        ids.sort_unstable();
        let mut expected = vec![wellknown::RDF_TYPE, wellknown::RDFS_SUB_CLASS_OF];
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn merge_property_updates_main_and_returns_new() {
        let mut store = sample_store();
        let human = 1_000_000_000_000u64;
        let bart = human + 2;
        let maggie = human + 9;
        // Existing pair (bart, human) plus a new one (maggie, human).
        let (new, outcome) =
            store.merge_property(wellknown::RDF_TYPE, vec![bart, human, maggie, human]);
        assert_eq!(outcome.new_pairs, 1);
        assert_eq!(outcome.duplicates_against_main, 1);
        assert_eq!(new.len(), 1);
        assert_eq!(store.table(wellknown::RDF_TYPE).unwrap().len(), 3);
    }

    #[test]
    fn ensure_all_os_builds_caches() {
        let mut store = sample_store();
        store.ensure_all_os();
        for (_, table) in store.iter_tables() {
            assert!(table.has_os_cache());
        }
    }

    #[test]
    fn ensure_all_os_reports_only_the_pairs_actually_resorted() {
        let mut store = sample_store();
        // First pass: every pair is sorted (2 rdf:type + 1 subClassOf).
        assert_eq!(store.ensure_all_os(), 3);
        // Second pass: every cache is still valid — nothing is re-sorted.
        assert_eq!(store.ensure_all_os(), 0);
        // Invalidate exactly one table: only its pairs are charged.
        let human = 1_000_000_000_000u64;
        store.add_triple(IdTriple::new(human + 9, wellknown::RDF_TYPE, human));
        store.finalize();
        assert_eq!(store.ensure_all_os(), 3, "3 rdf:type pairs re-sorted");
        assert_eq!(store.ensure_os(wellknown::RDF_TYPE), 0, "cache now valid");
        assert_eq!(store.ensure_os(wellknown::RDFS_DOMAIN), 0, "no such table");
    }

    #[test]
    fn clear_empties_the_store() {
        let mut store = sample_store();
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.table_count(), 0);
    }

    #[test]
    fn retract_removes_present_triples_and_ignores_absent_ones() {
        let mut store = sample_store();
        let human = 1_000_000_000_000u64;
        let bart = human + 2;
        let lisa = human + 3;
        store.ensure_all_os();
        let removed = store.retract([
            IdTriple::new(bart, wellknown::RDF_TYPE, human),
            IdTriple::new(bart, wellknown::RDF_TYPE, human), // duplicate request
            IdTriple::new(human + 9, wellknown::RDF_TYPE, human), // absent
            IdTriple::new(human, wellknown::RDFS_DOMAIN, human), // no such table
        ]);
        assert_eq!(removed, 1);
        assert_eq!(store.len(), 2);
        assert!(!store.contains(&IdTriple::new(bart, wellknown::RDF_TYPE, human)));
        assert!(store.contains(&IdTriple::new(lisa, wellknown::RDF_TYPE, human)));
        // The touched table lost its cache; the untouched one kept it.
        assert!(!store.table(wellknown::RDF_TYPE).unwrap().has_os_cache());
        assert!(store
            .table(wellknown::RDFS_SUB_CLASS_OF)
            .unwrap()
            .has_os_cache());
    }

    #[test]
    fn retract_can_empty_a_table_without_dropping_the_slot() {
        let mut store = sample_store();
        let human = 1_000_000_000_000u64;
        let mammal = human + 1;
        let removed = store.retract([IdTriple::new(human, wellknown::RDFS_SUB_CLASS_OF, mammal)]);
        assert_eq!(removed, 1);
        assert_eq!(store.table_count(), 1, "empty tables are invisible");
        assert!(store
            .property_ids()
            .all(|p| p != wellknown::RDFS_SUB_CLASS_OF));
        // The slot still answers (emptily) and accepts new pairs.
        assert_eq!(store.table(wellknown::RDFS_SUB_CLASS_OF).unwrap().len(), 0);
        store.add_triple(IdTriple::new(human, wellknown::RDFS_SUB_CLASS_OF, mammal));
        store.finalize();
        assert_eq!(store.table_count(), 2);
    }

    #[test]
    fn remove_pairs_on_a_property() {
        let mut store = sample_store();
        let human = 1_000_000_000_000u64;
        assert_eq!(
            store.remove_pairs(wellknown::RDF_TYPE, &[human + 2, human, human + 3, human]),
            2
        );
        assert_eq!(store.remove_pairs(wellknown::RDF_TYPE, &[1, 1]), 0);
        assert_eq!(store.remove_pairs(wellknown::RDFS_RANGE, &[1, 1]), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn replace_table_sorted() {
        let mut store = TripleStore::new();
        store.replace_table_sorted(wellknown::RDFS_SUB_CLASS_OF, vec![1, 2, 3, 4]);
        assert_eq!(store.len(), 2);
        assert!(store.contains(&IdTriple::new(3, wellknown::RDFS_SUB_CLASS_OF, 4)));
    }
}
