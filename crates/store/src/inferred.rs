//! Per-rule output buffers for the parallel inference stage.
//!
//! "Each rule is executed on a dedicated thread and holds its own inferred
//! property table to avoid potential contention" (§4.3). An
//! [`InferredBuffer`] is exactly that: an append-only map from property
//! identifier to a raw (unsorted, possibly duplicated) pair vector. After
//! all rule threads join, the buffers are combined and handed, property by
//! property, to the merge step of Figure 5.

use std::collections::BTreeMap;

/// Append-only buffer of inferred ⟨s,o⟩ pairs, grouped by property.
#[derive(Debug, Clone, Default)]
pub struct InferredBuffer {
    tables: BTreeMap<u64, Vec<u64>>,
}

impl InferredBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        InferredBuffer::default()
    }

    /// Records the inferred triple `⟨s, p, o⟩`.
    #[inline]
    pub fn add(&mut self, p: u64, s: u64, o: u64) {
        let table = self.tables.entry(p).or_default();
        table.push(s);
        table.push(o);
    }

    /// Records many pairs for one property at once.
    pub fn add_pairs(&mut self, p: u64, pairs: &[u64]) {
        assert!(
            pairs.len().is_multiple_of(2),
            "pair array must have even length"
        );
        if pairs.is_empty() {
            return;
        }
        self.tables.entry(p).or_default().extend_from_slice(pairs);
    }

    /// Total number of pairs buffered (duplicates included).
    pub fn len(&self) -> usize {
        self.tables.values().map(|v| v.len() / 2).sum()
    }

    /// `true` when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(|v| v.is_empty())
    }

    /// Number of distinct properties touched.
    pub fn property_count(&self) -> usize {
        self.tables.iter().filter(|(_, v)| !v.is_empty()).count()
    }

    /// Absorbs another buffer (used to combine the per-rule buffers after
    /// the threads join). When this buffer has nothing yet for a property,
    /// the other buffer's vector is **moved** in wholesale — reusing its
    /// allocation instead of copying pair by pair, which matters because the
    /// fixed-point loop absorbs one buffer per rule on every iteration.
    pub fn absorb(&mut self, other: InferredBuffer) {
        use std::collections::btree_map::Entry;
        for (p, mut pairs) in other.tables {
            if pairs.is_empty() {
                continue;
            }
            match self.tables.entry(p) {
                Entry::Vacant(slot) => {
                    slot.insert(pairs);
                }
                Entry::Occupied(mut slot) => {
                    if slot.get().is_empty() {
                        // Keep the larger allocation, drop the stub.
                        *slot.get_mut() = pairs;
                    } else {
                        slot.get_mut().append(&mut pairs);
                    }
                }
            }
        }
    }

    /// Iterates over `(property, raw pairs)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        self.tables.iter().map(|(&p, v)| (p, v.as_slice()))
    }

    /// Consumes the buffer, yielding `(property, raw pairs)` in ascending
    /// property order.
    pub fn into_iter_tables(self) -> impl Iterator<Item = (u64, Vec<u64>)> {
        self.tables.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer() {
        let buf = InferredBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.property_count(), 0);
    }

    #[test]
    fn add_groups_by_property() {
        let mut buf = InferredBuffer::new();
        buf.add(100, 1, 2);
        buf.add(100, 3, 4);
        buf.add(200, 5, 6);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.property_count(), 2);
        let tables: Vec<(u64, Vec<u64>)> =
            buf.iter().map(|(p, pairs)| (p, pairs.to_vec())).collect();
        assert_eq!(tables, vec![(100, vec![1, 2, 3, 4]), (200, vec![5, 6])]);
    }

    #[test]
    fn duplicates_are_kept_until_merge() {
        let mut buf = InferredBuffer::new();
        buf.add(7, 1, 1);
        buf.add(7, 1, 1);
        assert_eq!(buf.len(), 2, "the buffer itself never deduplicates");
    }

    #[test]
    fn add_pairs_bulk() {
        let mut buf = InferredBuffer::new();
        buf.add_pairs(9, &[1, 2, 3, 4]);
        buf.add_pairs(9, &[]);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn absorb_concatenates_per_property() {
        let mut a = InferredBuffer::new();
        a.add(1, 10, 11);
        let mut b = InferredBuffer::new();
        b.add(1, 20, 21);
        b.add(2, 30, 31);
        a.absorb(b);
        assert_eq!(a.len(), 3);
        let table1: Vec<u64> = a.iter().find(|(p, _)| *p == 1).unwrap().1.to_vec();
        assert_eq!(table1, vec![10, 11, 20, 21]);
    }

    #[test]
    fn into_iter_tables_is_property_ordered() {
        let mut buf = InferredBuffer::new();
        buf.add(300, 1, 1);
        buf.add(100, 2, 2);
        buf.add(200, 3, 3);
        let props: Vec<u64> = buf.into_iter_tables().map(|(p, _)| p).collect();
        assert_eq!(props, vec![100, 200, 300]);
    }
}
