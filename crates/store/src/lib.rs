//! # inferray-store
//!
//! The vertically partitioned, sorted-array triple store of the Inferray
//! reasoner (sections 4.2 and 4.3 of the paper).
//!
//! A triple store is an array of **property tables**, one per predicate,
//! addressed by the dense property index of the dictionary
//! (`inferray-dictionary`). Each [`PropertyTable`] is a flat `Vec<u64>` of
//! `⟨subject, object⟩` pairs kept sorted on ⟨s,o⟩ and duplicate-free, plus a
//! lazily materialized cache of the same pairs sorted on ⟨o,s⟩ — the two
//! orders the sort-merge-join rule executors need. Every access pattern in
//! the hot path is a sequential scan or a binary search over a contiguous
//! array, which is precisely the "predictable memory access pattern" the
//! paper designs for.
//!
//! The module map follows the paper:
//!
//! * [`property_table`] — the sorted pair arrays and their ⟨o,s⟩ cache (§4.2);
//! * [`triple_store`] — the array of property tables ([`TripleStore`]);
//! * [`merge`] — the per-iteration update step of Figure 5: sort and
//!   deduplicate the inferred pairs, merge them into *main*, and emit the
//!   genuinely new pairs into *new*;
//! * [`inferred`] — the per-rule output buffers used during parallel rule
//!   execution (each rule thread owns one, avoiding contention);
//! * [`profile`] — software memory-access counters standing in for the
//!   hardware cache/TLB/page-fault counters of Figures 7–8 (see DESIGN.md
//!   for the substitution rationale);
//! * [`snapshot`] — epoch-based snapshot publication ([`SnapshotStore`] /
//!   [`StoreSnapshot`]) so concurrent readers keep a consistent frozen
//!   version while a writer materializes the next one (docs/serving.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inferred;
pub mod merge;
pub mod profile;
pub mod property_table;
pub mod query;
pub mod snapshot;
pub mod triple_store;

pub use inferred::InferredBuffer;
pub use merge::{
    merge_new_pairs, merge_new_pairs_rebuild, merge_new_pairs_with, MergeOutcome, MergeStrategy,
};
pub use profile::AccessProfile;
pub use property_table::{DistinctCount, PropertyTable};
pub use query::TriplePattern;
pub use snapshot::{unpoison, SnapshotStore, StoreSnapshot};
pub use triple_store::TripleStore;
