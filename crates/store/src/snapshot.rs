//! Epoch-based snapshot publication for concurrent query serving.
//!
//! The paper's pitch for materialization is that "inferred data can be
//! consumed as explicit data without integrating the inference engine with
//! the runtime query engine" (§1). This module supplies the missing
//! concurrency half of that contract: queries must be able to run *while*
//! the reasoner materializes, without ever observing a half-merged property
//! table.
//!
//! The design is the classic epoch / pointer-swap scheme (the same shape as
//! Fluree's immutable database snapshots or an RCU read path):
//!
//! * a [`StoreSnapshot`] is an immutable, query-ready view of the store at
//!   one **epoch** — internally an `Arc<TripleStore>`, so cloning a snapshot
//!   is two atomic increments and holding one keeps that version alive no
//!   matter what writers do afterwards;
//! * a [`SnapshotStore`] is the handoff cell: a writer prepares the next
//!   version in a **private copy** of the store (clone → mutate → finalize →
//!   build the ⟨o,s⟩ caches → compute cardinality stats) and then publishes
//!   it ([`SnapshotStore::update`]); readers sample the current snapshot
//!   **without ever blocking** ([`SnapshotStore::snapshot`]).
//!
//! ## The lock-free reader handoff
//!
//! Readers never take a read-lock. Publication uses a generation-stamped
//! two-slot array with a seqlock-style validation loop:
//!
//! * each [`Slot`] holds an optional snapshot behind a `Mutex` plus an
//!   atomic **stamp** (even = stable, odd = a writer is mid-install);
//! * an atomic `active` counter names the slot readers sample
//!   (`active % SLOT_COUNT`);
//! * a **writer** installs the next version into the *inactive* slot —
//!   stamp to odd, store the snapshot, stamp to even — and only then moves
//!   `active`. The slot readers are sampling is never touched mid-publish;
//! * a **reader** loads `active`, checks the stamp is even, `try_lock`s the
//!   slot (which never blocks), clones the `Arc`, and re-checks the stamp.
//!   A stamp change or a failed `try_lock` means the world moved — the
//!   reader re-samples `active` and retries. The only thread that can make
//!   a `try_lock` fail for more than the length of one `Arc` clone is
//!   another *reader*; a publishing writer works on the inactive slot.
//!
//! `snapshot()` therefore never blocks behind a publish — this is proven
//! exhaustively by the `lock_free_handoff` interleaving cases in
//! `tests/model_check.rs`, and the workspace-wide `#![forbid(unsafe_code)]`
//! (IL001) still holds: the protocol is plain std atomics + `Arc` clones.
//!
//! Readers never see intermediate state: a reader that acquired epoch *n*
//! continues to see exactly the epoch-*n* triple set until it re-acquires,
//! even while a writer is mid-materialization — this is snapshot isolation,
//! proven by the `snapshot_isolation` integration suite.
//!
//! Published snapshots are **finalized, ⟨o,s⟩-cached and stats-annotated**
//! before the handoff: every read path of the query engine (binary search,
//! run scan, object lookup, planner cardinality estimates) works on the
//! shared `&TripleStore` without needing `&mut`, so a snapshot is safely
//! `Send + Sync`.

use crate::triple_store::TripleStore;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, TryLockError};

/// Recovers the guard from a poisoned `std::sync` lock result.
///
/// Poisoning only records that *some* thread panicked while holding the
/// lock; it says nothing about the data. Every critical section in this
/// workspace leaves its protected state structurally valid at all times
/// (snapshots are replaced wholesale, never edited in place; counters are
/// written last), so the guard is always safe to use. This helper is the
/// single home of the recovery idiom — call it instead of sprinkling
/// `unwrap_or_else(|e| e.into_inner())` at every lock site.
pub fn unpoison<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// An immutable, query-ready view of a [`TripleStore`] at one epoch.
///
/// Cloning is cheap (an `Arc` bump); the underlying store is shared and
/// never mutated after publication.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    epoch: u64,
    store: Arc<TripleStore>,
}

impl StoreSnapshot {
    /// Wraps an already-prepared store as the snapshot of `epoch`.
    ///
    /// The store must be finalized; [`SnapshotStore`] additionally builds
    /// the ⟨o,s⟩ caches before publishing so readers get the fast
    /// `(?, p, o)` path.
    pub fn new(epoch: u64, store: Arc<TripleStore>) -> Self {
        StoreSnapshot { epoch, store }
    }

    /// The epoch this snapshot was published at (0 is the initial version).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The shared ownership handle of the frozen store.
    pub fn store_arc(&self) -> &Arc<TripleStore> {
        &self.store
    }
}

impl std::ops::Deref for StoreSnapshot {
    type Target = TripleStore;

    fn deref(&self) -> &TripleStore {
        &self.store
    }
}

/// Number of publication slots. Two is the minimum that lets a writer
/// install the next version without touching the slot readers are sampling;
/// it also bounds slot-retained history to a single previous epoch (readers
/// holding older [`StoreSnapshot`]s keep those alive independently).
const SLOT_COUNT: usize = 2;

/// One publication slot of the generation-stamped handoff array.
#[derive(Debug)]
struct Slot {
    /// Seqlock-style generation stamp: even = stable, odd = a writer is
    /// mid-install. Readers validate the stamp around their `Arc` clone.
    stamp: AtomicU64,
    /// The snapshot occupying this slot (`None` only before first install).
    /// Readers only ever `try_lock` this mutex — which never blocks — and
    /// the sole blocking `lock` is taken by a writer on the *inactive* slot.
    cell: Mutex<Option<StoreSnapshot>>,
}

impl Slot {
    fn new(content: Option<StoreSnapshot>) -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            cell: Mutex::new(content),
        }
    }

    /// Non-blocking sample of the slot's snapshot. `None` means the slot is
    /// momentarily held (a concurrent reader mid-clone, or — only after the
    /// active index has already moved on — a writer re-installing) or still
    /// empty; callers re-check the active index and retry.
    fn try_read(&self) -> Option<StoreSnapshot> {
        match self.cell.try_lock() {
            Ok(guard) => guard.as_ref().cloned(),
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner().as_ref().cloned(),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// The epoch handoff cell: one published "current snapshot" that many
/// readers sample lock-free and one writer at a time replaces.
///
/// ```
/// use inferray_model::IdTriple;
/// use inferray_store::{SnapshotStore, TripleStore};
///
/// let p = 1u64 << 32;
/// let cell = SnapshotStore::new(TripleStore::from_triples([IdTriple::new(1, p, 2)]));
/// let before = cell.snapshot();
///
/// // A writer materializes into a private copy and publishes it...
/// cell.update(|store| store.add_triple(IdTriple::new(3, p, 4)));
///
/// // ...the old snapshot still sees exactly the old data,
/// assert_eq!(before.len(), 1);
/// // while a re-acquired snapshot sees the new epoch.
/// let after = cell.snapshot();
/// assert_eq!(after.len(), 2);
/// assert_eq!(after.epoch(), before.epoch() + 1);
/// ```
#[derive(Debug)]
pub struct SnapshotStore {
    /// The generation-stamped handoff slots; see the module docs.
    slots: [Slot; SLOT_COUNT],
    /// Monotonic publication counter; `active % SLOT_COUNT` is the slot
    /// readers sample. Moved only *after* the slot's content is stable.
    active: AtomicUsize,
    /// Mirror of the published epoch, so `epoch()` is a single atomic load.
    epoch: AtomicU64,
    /// Serializes writers: the clone → mutate → finalize pipeline of one
    /// update must not interleave with another's, or the second would clone
    /// a stale base and lose the first's triples on publish.
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Publishes `store` as epoch 0. The store is finalized and its ⟨o,s⟩
    /// caches are built so the snapshot is immediately query-ready.
    pub fn new(store: TripleStore) -> Self {
        SnapshotStore::with_epoch(store, 0)
    }

    /// Publishes `store` as the given starting epoch — the recovery path of
    /// the persistence layer, which must resume the epoch counter where the
    /// pre-crash process left it so that replayed write-ahead-log records
    /// republish the exact epoch sequence they produced the first time.
    /// Like [`SnapshotStore::new`], the store is finalized and ⟨o,s⟩-cached.
    pub fn with_epoch(mut store: TripleStore, epoch: u64) -> Self {
        store.finalize();
        store.ensure_all_os();
        #[cfg(feature = "strict-invariants")]
        store.assert_valid();
        let snapshot = StoreSnapshot::new(epoch, Arc::new(store));
        SnapshotStore {
            slots: [Slot::new(Some(snapshot)), Slot::new(None)],
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(epoch),
            writer: Mutex::new(()),
        }
    }

    /// The currently published snapshot.
    ///
    /// Lock-free for readers: samples the active slot, validates the
    /// generation stamp around an `Arc` clone, and retries if the world
    /// moved. No acquisition here can block behind a writer preparing or
    /// installing a version — the writer installs into the inactive slot
    /// (see the module docs and the `lock_free_handoff` model check).
    pub fn snapshot(&self) -> StoreSnapshot {
        self.read_published()
    }

    /// The retry loop behind [`SnapshotStore::snapshot`], under its own name
    /// so the write path can share it: the lint's call-graph walk unions
    /// same-named functions across files, and `snapshot` is also the name of
    /// dictionary-reading APIs one layer up.
    fn read_published(&self) -> StoreSnapshot {
        loop {
            let active = self.active.load(Ordering::Acquire);
            let slot = &self.slots[active % SLOT_COUNT];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp.is_multiple_of(2) {
                if let Some(snapshot) = slot.try_read() {
                    if slot.stamp.load(Ordering::Acquire) == stamp {
                        return snapshot;
                    }
                }
            }
            // The slot moved under us (a publish landed, or a concurrent
            // reader held the cell for the length of its Arc clone):
            // re-sample the active index and go again.
            std::hint::spin_loop();
        }
    }

    /// The epoch of the currently published snapshot (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Runs `mutate` on a **private copy** of the current store, finalizes
    /// the copy, rebuilds its ⟨o,s⟩ caches, and publishes it as the next
    /// epoch. Returns the new snapshot and the closure's result.
    ///
    /// Readers holding the previous snapshot are completely unaffected;
    /// concurrent writers are serialized.
    pub fn update<R>(&self, mutate: impl FnOnce(&mut TripleStore) -> R) -> (StoreSnapshot, R) {
        let guard = unpoison(self.writer.lock());
        // The base version: cloned *after* taking the writer lock, so this
        // update builds on every previously published epoch.
        let mut next: TripleStore = (*self.read_published().store).clone();
        let result = mutate(&mut next);
        let snapshot = self.publish_locked(next);
        drop(guard);
        (snapshot, result)
    }

    /// Replaces the current version wholesale with `store` (next epoch).
    /// Like [`SnapshotStore::update`], the store is finalized and
    /// ⟨o,s⟩-cached before the handoff.
    pub fn publish(&self, store: TripleStore) -> StoreSnapshot {
        let guard = unpoison(self.writer.lock());
        let snapshot = self.publish_locked(store);
        drop(guard);
        snapshot
    }

    /// Prepares `store` and installs it. Caller holds the writer lock.
    ///
    /// Install order (the invariant the model check pins down): the
    /// *inactive* slot is stamped odd, filled, stamped even, and only then
    /// do the epoch mirror and the active index move. Readers sampling the
    /// previously active slot are never touched; readers that observe the
    /// new index find the slot already stable.
    fn publish_locked(&self, mut store: TripleStore) -> StoreSnapshot {
        store.finalize();
        store.ensure_all_os();
        // Publish boundary: under `strict-invariants` every store that is
        // about to become visible to readers is re-validated (sortedness,
        // no duplicates, ⟨o,s⟩-cache coherence) before the handoff.
        #[cfg(feature = "strict-invariants")]
        store.assert_valid();
        let snapshot = StoreSnapshot::new(self.epoch.load(Ordering::Acquire) + 1, Arc::new(store));
        let next = self.active.load(Ordering::Acquire).wrapping_add(1);
        let slot = &self.slots[next % SLOT_COUNT];
        let stamp = slot.stamp.load(Ordering::Acquire);
        slot.stamp.store(stamp.wrapping_add(1), Ordering::Release); // odd: mid-install
        {
            let mut cell = unpoison(slot.cell.lock());
            *cell = Some(snapshot.clone());
        }
        slot.stamp.store(stamp.wrapping_add(2), Ordering::Release); // even: stable
        self.epoch.store(snapshot.epoch(), Ordering::Release);
        self.active.store(next, Ordering::Release);
        snapshot
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore::new(TripleStore::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn p() -> u64 {
        nth_property_id(40)
    }

    #[test]
    fn epoch_zero_is_finalized_and_cached() {
        let cell = SnapshotStore::new(TripleStore::from_triples([IdTriple::new(7, p(), 8)]));
        let snap = cell.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(cell.epoch(), 0);
        assert!(snap.table(p()).unwrap().has_os_cache());
        assert!(snap.contains(&IdTriple::new(7, p(), 8)));
    }

    #[test]
    fn with_epoch_resumes_the_epoch_counter() {
        let cell =
            SnapshotStore::with_epoch(TripleStore::from_triples([IdTriple::new(7, p(), 8)]), 41);
        assert_eq!(cell.epoch(), 41);
        assert!(cell.snapshot().table(p()).unwrap().has_os_cache());
        let (snap, ()) = cell.update(|store| {
            store.add_triple(IdTriple::new(9, p(), 10));
        });
        assert_eq!(snap.epoch(), 42, "updates continue from the resumed epoch");
    }

    #[test]
    fn update_publishes_a_new_epoch_without_touching_old_snapshots() {
        let cell = SnapshotStore::new(TripleStore::from_triples([IdTriple::new(1, p(), 2)]));
        let old = cell.snapshot();
        let (new, ()) = cell.update(|store| {
            store.add_triple(IdTriple::new(3, p(), 4));
        });
        assert_eq!(old.epoch(), 0);
        assert_eq!(new.epoch(), 1);
        assert_eq!(old.len(), 1);
        assert_eq!(new.len(), 2);
        assert!(!old.contains(&IdTriple::new(3, p(), 4)));
        assert!(new.contains(&IdTriple::new(3, p(), 4)));
        // The cell now hands out the new version.
        assert_eq!(cell.snapshot().epoch(), 1);
        assert_eq!(cell.snapshot().len(), 2);
    }

    #[test]
    fn published_snapshots_are_query_ready() {
        let cell = SnapshotStore::default();
        let (snap, ()) = cell.update(|store| {
            store.add_triple(IdTriple::new(5, p(), 6));
            store.add_triple(IdTriple::new(5, p(), 6));
            store.add_triple(IdTriple::new(9, p(), 6));
        });
        // Finalized (deduplicated) and ⟨o,s⟩-cached.
        assert_eq!(snap.len(), 2);
        let table = snap.table(p()).unwrap();
        assert!(table.has_os_cache());
        assert_eq!(table.subjects_of(6).collect::<Vec<_>>(), vec![5, 9]);
    }

    #[test]
    fn updates_compose_across_epochs() {
        let cell = SnapshotStore::default();
        for i in 0..5u64 {
            cell.update(|store| store.add_triple(IdTriple::new(i, p(), i + 100)));
        }
        let snap = cell.snapshot();
        assert_eq!(snap.epoch(), 5);
        assert_eq!(snap.len(), 5, "every update builds on the previous epoch");
    }

    #[test]
    fn slot_history_is_bounded_to_one_previous_epoch() {
        // The handoff array must not leak old stores: after publishing
        // epoch k, only epochs k and k-1 can still be pinned by the slots.
        let cell = SnapshotStore::default();
        let mut weak = Vec::new();
        for i in 0..6u64 {
            let (snap, ()) = cell.update(|store| store.add_triple(IdTriple::new(i, p(), i + 100)));
            weak.push(std::sync::Arc::downgrade(snap.store_arc()));
        }
        // Epochs 1..=4 were displaced from both slots; with no outside
        // holders their stores must have been dropped.
        for (i, w) in weak.iter().enumerate().take(weak.len() - 2) {
            assert!(
                w.upgrade().is_none(),
                "epoch {} is still pinned by the handoff slots",
                i + 1
            );
        }
        assert!(weak[weak.len() - 1].upgrade().is_some());
    }

    #[test]
    fn concurrent_writers_never_lose_updates() {
        let cell = std::sync::Arc::new(SnapshotStore::default());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cell = std::sync::Arc::clone(&cell);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        cell.update(|store| {
                            store.add_triple(IdTriple::new(t * 1000 + i, p(), 1));
                        });
                    }
                });
            }
        });
        let snap = cell.snapshot();
        assert_eq!(snap.epoch(), 100);
        assert_eq!(snap.len(), 100);
    }

    #[test]
    fn readers_see_a_consistent_version_during_writes() {
        let cell = std::sync::Arc::new(SnapshotStore::new(TripleStore::from_triples([
            IdTriple::new(0, p(), 0),
        ])));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let reader_cell = std::sync::Arc::clone(&cell);
            let stop_flag = &stop;
            let reader = scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = reader_cell.snapshot();
                    // Epoch k contains exactly the initial triple plus k
                    // appended ones — any torn read would break this.
                    observed.push((snap.epoch(), snap.len() as u64));
                }
                observed
            });
            for i in 1..=50u64 {
                cell.update(|store| {
                    store.add_triple(IdTriple::new(i, p(), i));
                });
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for (epoch, len) in reader.join().expect("reader thread") {
                assert_eq!(len, epoch + 1, "snapshot of epoch {epoch} is torn");
            }
        });
    }

    #[test]
    fn snapshots_are_monotonic_per_reader() {
        // A reader that re-acquires must never travel back in time, even
        // across many publishes racing the acquisition loop.
        let cell = std::sync::Arc::new(SnapshotStore::default());
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let cell = std::sync::Arc::clone(&cell);
                let stop_flag = &stop;
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                        let epoch = cell.snapshot().epoch();
                        assert!(epoch >= last, "epoch went backwards: {last} -> {epoch}");
                        last = epoch;
                    }
                });
            }
            for i in 0..200u64 {
                cell.update(|store| store.add_triple(IdTriple::new(i, p(), i)));
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
