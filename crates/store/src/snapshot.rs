//! Epoch-based snapshot publication for concurrent query serving.
//!
//! The paper's pitch for materialization is that "inferred data can be
//! consumed as explicit data without integrating the inference engine with
//! the runtime query engine" (§1). This module supplies the missing
//! concurrency half of that contract: queries must be able to run *while*
//! the reasoner materializes, without ever observing a half-merged property
//! table.
//!
//! The design is the classic epoch / pointer-swap scheme (the same shape as
//! Fluree's immutable database snapshots or an RCU read path):
//!
//! * a [`StoreSnapshot`] is an immutable, query-ready view of the store at
//!   one **epoch** — internally an `Arc<TripleStore>`, so cloning a snapshot
//!   is two atomic increments and holding one keeps that version alive no
//!   matter what writers do afterwards;
//! * a [`SnapshotStore`] is the swap cell: readers grab the current snapshot
//!   with a brief read-lock ([`SnapshotStore::snapshot`]); a writer prepares
//!   the next version in a **private copy** of the store (clone → mutate →
//!   finalize → build the ⟨o,s⟩ caches) and then publishes it with one
//!   pointer swap that bumps the epoch ([`SnapshotStore::update`]).
//!
//! Readers therefore never block on materialization and never see
//! intermediate state: a reader that acquired epoch *n* continues to see
//! exactly the epoch-*n* triple set until it re-acquires, even while a
//! writer is mid-materialization — this is snapshot isolation, proven by the
//! `snapshot_isolation` integration suite.
//!
//! Published snapshots are **finalized and ⟨o,s⟩-cached** before the swap:
//! every read path of the query engine (binary search, run scan, object
//! lookup) works on the shared `&TripleStore` without needing `&mut`, so a
//! snapshot is safely `Send + Sync`.

use crate::triple_store::TripleStore;
use std::sync::{Arc, Mutex, RwLock};

/// An immutable, query-ready view of a [`TripleStore`] at one epoch.
///
/// Cloning is cheap (an `Arc` bump); the underlying store is shared and
/// never mutated after publication.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    epoch: u64,
    store: Arc<TripleStore>,
}

impl StoreSnapshot {
    /// Wraps an already-prepared store as the snapshot of `epoch`.
    ///
    /// The store must be finalized; [`SnapshotStore`] additionally builds
    /// the ⟨o,s⟩ caches before publishing so readers get the fast
    /// `(?, p, o)` path.
    pub fn new(epoch: u64, store: Arc<TripleStore>) -> Self {
        StoreSnapshot { epoch, store }
    }

    /// The epoch this snapshot was published at (0 is the initial version).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The shared ownership handle of the frozen store.
    pub fn store_arc(&self) -> &Arc<TripleStore> {
        &self.store
    }
}

impl std::ops::Deref for StoreSnapshot {
    type Target = TripleStore;

    fn deref(&self) -> &TripleStore {
        &self.store
    }
}

/// The epoch/`Arc`-swap cell: one mutable "current snapshot" pointer that
/// many readers sample and one writer at a time replaces.
///
/// ```
/// use inferray_model::IdTriple;
/// use inferray_store::{SnapshotStore, TripleStore};
///
/// let p = 1u64 << 32;
/// let cell = SnapshotStore::new(TripleStore::from_triples([IdTriple::new(1, p, 2)]));
/// let before = cell.snapshot();
///
/// // A writer materializes into a private copy and publishes it...
/// cell.update(|store| store.add_triple(IdTriple::new(3, p, 4)));
///
/// // ...the old snapshot still sees exactly the old data,
/// assert_eq!(before.len(), 1);
/// // while a re-acquired snapshot sees the new epoch.
/// let after = cell.snapshot();
/// assert_eq!(after.len(), 2);
/// assert_eq!(after.epoch(), before.epoch() + 1);
/// ```
#[derive(Debug)]
pub struct SnapshotStore {
    /// The currently published snapshot. The lock is held only for the
    /// duration of an `Arc` clone (readers) or a pointer swap (writers) —
    /// never while preparing a version.
    current: RwLock<StoreSnapshot>,
    /// Serializes writers: the clone → mutate → finalize pipeline of one
    /// update must not interleave with another's, or the second would clone
    /// a stale base and lose the first's triples on publish.
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Publishes `store` as epoch 0. The store is finalized and its ⟨o,s⟩
    /// caches are built so the snapshot is immediately query-ready.
    pub fn new(store: TripleStore) -> Self {
        SnapshotStore::with_epoch(store, 0)
    }

    /// Publishes `store` as the given starting epoch — the recovery path of
    /// the persistence layer, which must resume the epoch counter where the
    /// pre-crash process left it so that replayed write-ahead-log records
    /// republish the exact epoch sequence they produced the first time.
    /// Like [`SnapshotStore::new`], the store is finalized and ⟨o,s⟩-cached.
    pub fn with_epoch(mut store: TripleStore, epoch: u64) -> Self {
        store.finalize();
        store.ensure_all_os();
        #[cfg(feature = "strict-invariants")]
        store.assert_valid();
        SnapshotStore {
            current: RwLock::new(StoreSnapshot::new(epoch, Arc::new(store))),
            writer: Mutex::new(()),
        }
    }

    /// The currently published snapshot (brief read-lock + `Arc` clone;
    /// never blocks on a writer preparing the next version).
    pub fn snapshot(&self) -> StoreSnapshot {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap_or_else(|e| e.into_inner()).epoch
    }

    /// Runs `mutate` on a **private copy** of the current store, finalizes
    /// the copy, rebuilds its ⟨o,s⟩ caches, and publishes it as the next
    /// epoch. Returns the new snapshot and the closure's result.
    ///
    /// Readers holding the previous snapshot are completely unaffected;
    /// concurrent writers are serialized.
    pub fn update<R>(&self, mutate: impl FnOnce(&mut TripleStore) -> R) -> (StoreSnapshot, R) {
        let guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // The base version: cloned *after* taking the writer lock, so this
        // update builds on every previously published epoch.
        let mut next: TripleStore = (*self.snapshot().store).clone();
        let result = mutate(&mut next);
        let snapshot = self.publish_locked(next);
        drop(guard);
        (snapshot, result)
    }

    /// Replaces the current version wholesale with `store` (next epoch).
    /// Like [`SnapshotStore::update`], the store is finalized and
    /// ⟨o,s⟩-cached before the swap.
    pub fn publish(&self, store: TripleStore) -> StoreSnapshot {
        let guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let snapshot = self.publish_locked(store);
        drop(guard);
        snapshot
    }

    /// Prepares `store` and swaps it in. Caller holds the writer lock.
    fn publish_locked(&self, mut store: TripleStore) -> StoreSnapshot {
        store.finalize();
        store.ensure_all_os();
        // Publish boundary: under `strict-invariants` every store that is
        // about to become visible to readers is re-validated (sortedness,
        // no duplicates, ⟨o,s⟩-cache coherence) before the pointer swap.
        #[cfg(feature = "strict-invariants")]
        store.assert_valid();
        let mut current = self.current.write().unwrap_or_else(|e| e.into_inner());
        let snapshot = StoreSnapshot::new(current.epoch + 1, Arc::new(store));
        *current = snapshot.clone();
        snapshot
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore::new(TripleStore::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn p() -> u64 {
        nth_property_id(40)
    }

    #[test]
    fn epoch_zero_is_finalized_and_cached() {
        let cell = SnapshotStore::new(TripleStore::from_triples([IdTriple::new(7, p(), 8)]));
        let snap = cell.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(cell.epoch(), 0);
        assert!(snap.table(p()).unwrap().has_os_cache());
        assert!(snap.contains(&IdTriple::new(7, p(), 8)));
    }

    #[test]
    fn with_epoch_resumes_the_epoch_counter() {
        let cell =
            SnapshotStore::with_epoch(TripleStore::from_triples([IdTriple::new(7, p(), 8)]), 41);
        assert_eq!(cell.epoch(), 41);
        assert!(cell.snapshot().table(p()).unwrap().has_os_cache());
        let (snap, ()) = cell.update(|store| {
            store.add_triple(IdTriple::new(9, p(), 10));
        });
        assert_eq!(snap.epoch(), 42, "updates continue from the resumed epoch");
    }

    #[test]
    fn update_publishes_a_new_epoch_without_touching_old_snapshots() {
        let cell = SnapshotStore::new(TripleStore::from_triples([IdTriple::new(1, p(), 2)]));
        let old = cell.snapshot();
        let (new, ()) = cell.update(|store| {
            store.add_triple(IdTriple::new(3, p(), 4));
        });
        assert_eq!(old.epoch(), 0);
        assert_eq!(new.epoch(), 1);
        assert_eq!(old.len(), 1);
        assert_eq!(new.len(), 2);
        assert!(!old.contains(&IdTriple::new(3, p(), 4)));
        assert!(new.contains(&IdTriple::new(3, p(), 4)));
        // The cell now hands out the new version.
        assert_eq!(cell.snapshot().epoch(), 1);
        assert_eq!(cell.snapshot().len(), 2);
    }

    #[test]
    fn published_snapshots_are_query_ready() {
        let cell = SnapshotStore::default();
        let (snap, ()) = cell.update(|store| {
            store.add_triple(IdTriple::new(5, p(), 6));
            store.add_triple(IdTriple::new(5, p(), 6));
            store.add_triple(IdTriple::new(9, p(), 6));
        });
        // Finalized (deduplicated) and ⟨o,s⟩-cached.
        assert_eq!(snap.len(), 2);
        let table = snap.table(p()).unwrap();
        assert!(table.has_os_cache());
        assert_eq!(table.subjects_of(6).collect::<Vec<_>>(), vec![5, 9]);
    }

    #[test]
    fn updates_compose_across_epochs() {
        let cell = SnapshotStore::default();
        for i in 0..5u64 {
            cell.update(|store| store.add_triple(IdTriple::new(i, p(), i + 100)));
        }
        let snap = cell.snapshot();
        assert_eq!(snap.epoch(), 5);
        assert_eq!(snap.len(), 5, "every update builds on the previous epoch");
    }

    #[test]
    fn concurrent_writers_never_lose_updates() {
        let cell = std::sync::Arc::new(SnapshotStore::default());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cell = std::sync::Arc::clone(&cell);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        cell.update(|store| {
                            store.add_triple(IdTriple::new(t * 1000 + i, p(), 1));
                        });
                    }
                });
            }
        });
        let snap = cell.snapshot();
        assert_eq!(snap.epoch(), 100);
        assert_eq!(snap.len(), 100);
    }

    #[test]
    fn readers_see_a_consistent_version_during_writes() {
        let cell = std::sync::Arc::new(SnapshotStore::new(TripleStore::from_triples([
            IdTriple::new(0, p(), 0),
        ])));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let reader_cell = std::sync::Arc::clone(&cell);
            let stop_flag = &stop;
            let reader = scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = reader_cell.snapshot();
                    // Epoch k contains exactly the initial triple plus k
                    // appended ones — any torn read would break this.
                    observed.push((snap.epoch(), snap.len() as u64));
                }
                observed
            });
            for i in 1..=50u64 {
                cell.update(|store| {
                    store.add_triple(IdTriple::new(i, p(), i));
                });
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for (epoch, len) in reader.join().expect("reader thread") {
                assert_eq!(len, epoch + 1, "snapshot of epoch {epoch} is torn");
            }
        });
    }
}
