//! Software memory-access profiling.
//!
//! Figures 7 and 8 of the paper report *hardware* counters (L1/LLC cache
//! misses, dTLB misses, page faults per inferred triple) measured with
//! `perf`. PMU counters are not available in the containers this
//! reproduction targets, so the benchmark harness substitutes a *software*
//! profile: each reasoner reports how many words it touched sequentially,
//! how many it touched through data-dependent (random) addressing, how many
//! hash probes it performed and how much it allocated. Random accesses and
//! hash probes are the software-level causes of the cache/TLB misses the
//! paper measures, so the relative ordering between reasoners — the claim
//! Figures 7–8 support — is preserved. See DESIGN.md ("Substitutions").

use std::fmt;
use std::ops::AddAssign;

/// Coarse-grained counters of a reasoner run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessProfile {
    /// 64-bit words read or written through sequential scans (array walks,
    /// sort-merge joins, histogram passes).
    pub sequential_words: u64,
    /// 64-bit words read or written through data-dependent addressing
    /// (pointer chasing, per-key bucket jumps, binary-search probes).
    pub random_words: u64,
    /// Hash-table probes (lookups and insertions), the dominant random
    /// access pattern of the hash-join baseline.
    pub hash_probes: u64,
    /// 64-bit words allocated over the run (resizes included).
    pub allocated_words: u64,
}

impl AccessProfile {
    /// An all-zero profile.
    pub fn new() -> Self {
        AccessProfile::default()
    }

    /// Records `n` sequentially accessed words.
    #[inline]
    pub fn sequential(&mut self, n: u64) {
        self.sequential_words += n;
    }

    /// Records `n` randomly accessed words.
    #[inline]
    pub fn random(&mut self, n: u64) {
        self.random_words += n;
    }

    /// Records `n` hash probes (each probe also counts as a random word).
    #[inline]
    pub fn hash_probe(&mut self, n: u64) {
        self.hash_probes += n;
        self.random_words += n;
    }

    /// Records an allocation of `n` words.
    #[inline]
    pub fn allocate(&mut self, n: u64) {
        self.allocated_words += n;
    }

    /// Total words touched.
    pub fn total_words(&self) -> u64 {
        self.sequential_words + self.random_words
    }

    /// Fraction of touched words that were accessed randomly — the quantity
    /// that correlates with the cache/TLB miss rates of Figures 7–8.
    pub fn random_fraction(&self) -> f64 {
        let total = self.total_words();
        if total == 0 {
            0.0
        } else {
            self.random_words as f64 / total as f64
        }
    }

    /// Normalizes the counters per inferred triple, the unit used by the
    /// paper's figures.
    pub fn per_triple(&self, inferred_triples: usize) -> PerTripleProfile {
        let n = inferred_triples.max(1) as f64;
        PerTripleProfile {
            sequential_words: self.sequential_words as f64 / n,
            random_words: self.random_words as f64 / n,
            hash_probes: self.hash_probes as f64 / n,
            allocated_words: self.allocated_words as f64 / n,
        }
    }
}

impl AddAssign for AccessProfile {
    fn add_assign(&mut self, rhs: Self) {
        self.sequential_words += rhs.sequential_words;
        self.random_words += rhs.random_words;
        self.hash_probes += rhs.hash_probes;
        self.allocated_words += rhs.allocated_words;
    }
}

impl fmt::Display for AccessProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq={} rand={} probes={} alloc={} (random fraction {:.1}%)",
            self.sequential_words,
            self.random_words,
            self.hash_probes,
            self.allocated_words,
            self.random_fraction() * 100.0
        )
    }
}

/// [`AccessProfile`] normalized per inferred triple.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerTripleProfile {
    /// Sequential words per inferred triple.
    pub sequential_words: f64,
    /// Random words per inferred triple.
    pub random_words: f64,
    /// Hash probes per inferred triple.
    pub hash_probes: f64,
    /// Allocated words per inferred triple.
    pub allocated_words: f64,
}

impl fmt::Display for PerTripleProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq/triple={:.2} rand/triple={:.2} probes/triple={:.2} alloc/triple={:.2}",
            self.sequential_words, self.random_words, self.hash_probes, self.allocated_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut p = AccessProfile::new();
        p.sequential(100);
        p.random(10);
        p.hash_probe(5);
        p.allocate(50);
        assert_eq!(p.sequential_words, 100);
        assert_eq!(p.random_words, 15, "hash probes also count as random");
        assert_eq!(p.hash_probes, 5);
        assert_eq!(p.allocated_words, 50);
        assert_eq!(p.total_words(), 115);
    }

    #[test]
    fn random_fraction() {
        let mut p = AccessProfile::new();
        assert_eq!(p.random_fraction(), 0.0);
        p.sequential(75);
        p.random(25);
        assert!((p.random_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn per_triple_normalization_guards_against_zero() {
        let mut p = AccessProfile::new();
        p.sequential(10);
        let norm = p.per_triple(0);
        assert_eq!(norm.sequential_words, 10.0);
        let norm = p.per_triple(5);
        assert_eq!(norm.sequential_words, 2.0);
    }

    #[test]
    fn add_assign_merges_profiles() {
        let mut a = AccessProfile::new();
        a.sequential(1);
        let mut b = AccessProfile::new();
        b.hash_probe(2);
        b.allocate(3);
        a += b;
        assert_eq!(a.sequential_words, 1);
        assert_eq!(a.hash_probes, 2);
        assert_eq!(a.random_words, 2);
        assert_eq!(a.allocated_words, 3);
    }

    #[test]
    fn display_formats() {
        let mut p = AccessProfile::new();
        p.sequential(3);
        p.random(1);
        let text = p.to_string();
        assert!(text.contains("seq=3"));
        assert!(text.contains("25.0%"));
        let per = p.per_triple(2);
        assert!(per.to_string().contains("seq/triple=1.50"));
    }
}
