//! A backward-chaining (query-time) comparator for the ρdf fragment.
//!
//! The paper's introduction contrasts forward-chaining materialization with
//! backward-chaining, which "performs inference at query time, when the set
//! of inferred triples is limited to the triple patterns defined in the
//! query" (§1) — the strategy of QueryPIE and of OBDA query-rewriting
//! systems. Inferray deliberately chooses materialization; this module
//! provides the other side of that trade-off so the benchmark harness can
//! measure it: no up-front work, but every query pays for rule application.
//!
//! The chainer covers exactly the eight ρdf rules of Table 5 — CAX-SCO,
//! PRP-DOM, PRP-RNG, PRP-SPO1, SCM-DOM2, SCM-RNG2, SCM-SCO and SCM-SPO. At
//! construction it compiles the (small, Tbox-sized) `rdfs:subClassOf` and
//! `rdfs:subPropertyOf` hierarchies into ancestor/descendant maps; every
//! query is then rewritten against those maps and answered from the asserted
//! property tables only. Instance data is never expanded.
//!
//! Limitations (documented, not silent): RDFS vocabulary properties used as
//! subjects or objects of `rdfs:subPropertyOf` (e.g. declaring a subproperty
//! of `rdf:type`) are not rewritten — the forward engines handle such
//! pathological schemas, the rewriter does not claim to.

use inferray_dictionary::wellknown;
use inferray_model::IdTriple;
use inferray_store::{PropertyTable, TriplePattern, TripleStore};
use std::collections::{HashMap, HashSet};

/// A query-time ρdf reasoner over an *unmaterialized* store.
#[derive(Debug)]
pub struct BackwardChainer<'a> {
    store: &'a TripleStore,
    /// class → strict superclasses reachable through asserted subClassOf.
    class_ancestors: HashMap<u64, Vec<u64>>,
    /// class → strict subclasses.
    class_descendants: HashMap<u64, Vec<u64>>,
    /// property → strict superproperties.
    property_ancestors: HashMap<u64, Vec<u64>>,
    /// property → strict subproperties.
    property_descendants: HashMap<u64, Vec<u64>>,
}

impl<'a> BackwardChainer<'a> {
    /// Compiles the schema hierarchies of `store` (which must be finalized)
    /// and returns a chainer that answers patterns against it.
    pub fn new(store: &'a TripleStore) -> Self {
        let (class_ancestors, class_descendants) =
            transitive_maps(store.table(wellknown::RDFS_SUB_CLASS_OF));
        let (property_ancestors, property_descendants) =
            transitive_maps(store.table(wellknown::RDFS_SUB_PROPERTY_OF));
        BackwardChainer {
            store,
            class_ancestors,
            class_descendants,
            property_ancestors,
            property_descendants,
        }
    }

    /// `true` when the fully bound triple is asserted or ρdf-derivable.
    pub fn holds(&self, triple: IdTriple) -> bool {
        !self
            .match_pattern(
                TriplePattern::any()
                    .with_s(triple.s)
                    .with_p(triple.p)
                    .with_o(triple.o),
            )
            .is_empty()
    }

    /// Every asserted or derivable triple matching `pattern`, without
    /// duplicates. Order is unspecified.
    pub fn match_pattern(&self, pattern: TriplePattern) -> Vec<IdTriple> {
        let mut out: HashSet<IdTriple> = HashSet::new();
        match pattern.p {
            Some(p) => self.match_with_predicate(p, pattern, &mut out),
            None => {
                for p in self.candidate_predicates() {
                    self.match_with_predicate(p, pattern, &mut out);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The full ρdf closure, computed entirely through query rewriting
    /// (used by the equivalence tests and the benchmark harness).
    pub fn all_triples(&self) -> Vec<IdTriple> {
        let mut triples = self.match_pattern(TriplePattern::any());
        triples.sort_unstable();
        triples
    }

    // -- per-predicate dispatch ---------------------------------------------

    fn match_with_predicate(&self, p: u64, pattern: TriplePattern, out: &mut HashSet<IdTriple>) {
        match p {
            wellknown::RDF_TYPE => self.match_type(pattern, out),
            wellknown::RDFS_SUB_CLASS_OF => {
                self.match_hierarchy(p, &self.class_ancestors, pattern, out)
            }
            wellknown::RDFS_SUB_PROPERTY_OF => {
                self.match_hierarchy(p, &self.property_ancestors, pattern, out)
            }
            wellknown::RDFS_DOMAIN => self.match_domain_or_range(p, pattern, out),
            wellknown::RDFS_RANGE => self.match_domain_or_range(p, pattern, out),
            other => self.match_plain_property(other, pattern, out),
        }
    }

    /// `x p y` for a non-schema property: asserted pairs of `p` plus the
    /// pairs of every subproperty of `p` (PRP-SPO1 rewritten backwards).
    fn match_plain_property(&self, p: u64, pattern: TriplePattern, out: &mut HashSet<IdTriple>) {
        for source in self.with_descendant_properties(p) {
            if let Some(table) = self.store.table(source) {
                emit_matching_pairs(table, p, pattern, out);
            }
        }
    }

    /// `c1 subClassOf c2` / `p1 subPropertyOf p2`: reachability over the
    /// asserted hierarchy (SCM-SCO / SCM-SPO rewritten backwards).
    fn match_hierarchy(
        &self,
        p: u64,
        ancestors: &HashMap<u64, Vec<u64>>,
        pattern: TriplePattern,
        out: &mut HashSet<IdTriple>,
    ) {
        let subjects: Vec<u64> = match pattern.s {
            Some(s) => vec![s],
            None => ancestors.keys().copied().collect(),
        };
        for s in subjects {
            for &target in ancestors.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                if pattern.o.is_none_or(|o| o == target) {
                    out.insert(IdTriple::new(s, p, target));
                }
            }
        }
    }

    /// `p domain c` / `p range c`: asserted statements plus those inherited
    /// from superproperties (SCM-DOM2 / SCM-RNG2 rewritten backwards).
    fn match_domain_or_range(&self, p: u64, pattern: TriplePattern, out: &mut HashSet<IdTriple>) {
        let Some(table) = self.store.table(p) else {
            return;
        };
        let subjects: Vec<u64> = match pattern.s {
            Some(s) => vec![s],
            None => {
                // Any property with an asserted statement, or below one.
                let mut props: HashSet<u64> = table.iter_pairs().map(|(s, _)| s).collect();
                for with_statement in props.clone() {
                    for &below in self
                        .property_descendants
                        .get(&with_statement)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                    {
                        props.insert(below);
                    }
                }
                props.into_iter().collect()
            }
        };
        for s in subjects {
            for source in self.with_ancestor_properties(s) {
                for c in table.objects_of(source) {
                    if pattern.o.is_none_or(|o| o == c) {
                        out.insert(IdTriple::new(s, p, c));
                    }
                }
            }
        }
    }

    /// `x rdf:type c`: asserted types of any subclass of `c`, plus the
    /// domain/range route (PRP-DOM, PRP-RNG) through any subproperty, all
    /// lifted through CAX-SCO.
    fn match_type(&self, pattern: TriplePattern, out: &mut HashSet<IdTriple>) {
        // Candidate "base" classes: either the descendants of the requested
        // class (plus itself), or every class when the object is unbound.
        match pattern.o {
            Some(class) => {
                for base in self.with_descendant_classes(class) {
                    self.emit_base_instances(base, class, pattern.s, out);
                }
            }
            None => {
                // Enumerate every base-level derivation and lift it through
                // the class hierarchy.
                let mut base_types: HashSet<(u64, u64)> = HashSet::new();
                self.collect_base_types(pattern.s, &mut base_types);
                for (x, base) in base_types {
                    out.insert(IdTriple::new(x, wellknown::RDF_TYPE, base));
                    for &ancestor in self
                        .class_ancestors
                        .get(&base)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                    {
                        out.insert(IdTriple::new(x, wellknown::RDF_TYPE, ancestor));
                    }
                }
            }
        }
    }

    /// Emits `x rdf:type target` for every `x` that has `base` as a
    /// *directly derivable* type (asserted, domain or range route).
    fn emit_base_instances(
        &self,
        base: u64,
        target: u64,
        subject: Option<u64>,
        out: &mut HashSet<IdTriple>,
    ) {
        let mut emit = |x: u64| {
            if subject.is_none_or(|s| s == x) {
                out.insert(IdTriple::new(x, wellknown::RDF_TYPE, target));
            }
        };
        // Asserted rdf:type.
        if let Some(types) = self.store.table(wellknown::RDF_TYPE) {
            for (x, class) in types.iter_pairs() {
                if class == base {
                    emit(x);
                }
            }
        }
        // Domain route: domain(p2, base), p1 ⊑* p2, p1(x, _) ⇒ type(x, base).
        if let Some(domains) = self.store.table(wellknown::RDFS_DOMAIN) {
            for (declared, class) in domains.iter_pairs() {
                if class != base {
                    continue;
                }
                for source in self.with_descendant_properties(declared) {
                    if let Some(table) = self.store.table(source) {
                        for (x, _) in table.iter_pairs() {
                            emit(x);
                        }
                    }
                }
            }
        }
        // Range route: range(p2, base), p1 ⊑* p2, p1(_, y) ⇒ type(y, base).
        if let Some(ranges) = self.store.table(wellknown::RDFS_RANGE) {
            for (declared, class) in ranges.iter_pairs() {
                if class != base {
                    continue;
                }
                for source in self.with_descendant_properties(declared) {
                    if let Some(table) = self.store.table(source) {
                        for (_, y) in table.iter_pairs() {
                            emit(y);
                        }
                    }
                }
            }
        }
    }

    /// Collects every `(instance, base class)` pair derivable without
    /// CAX-SCO (asserted type, domain route, range route), optionally
    /// restricted to one subject.
    fn collect_base_types(&self, subject: Option<u64>, out: &mut HashSet<(u64, u64)>) {
        let mut insert = |x: u64, class: u64| {
            if subject.is_none_or(|s| s == x) {
                out.insert((x, class));
            }
        };
        if let Some(types) = self.store.table(wellknown::RDF_TYPE) {
            for (x, class) in types.iter_pairs() {
                insert(x, class);
            }
        }
        if let Some(domains) = self.store.table(wellknown::RDFS_DOMAIN) {
            for (declared, class) in domains.iter_pairs() {
                for source in self.with_descendant_properties(declared) {
                    if let Some(table) = self.store.table(source) {
                        for (x, _) in table.iter_pairs() {
                            insert(x, class);
                        }
                    }
                }
            }
        }
        if let Some(ranges) = self.store.table(wellknown::RDFS_RANGE) {
            for (declared, class) in ranges.iter_pairs() {
                for source in self.with_descendant_properties(declared) {
                    if let Some(table) = self.store.table(source) {
                        for (_, y) in table.iter_pairs() {
                            insert(y, class);
                        }
                    }
                }
            }
        }
    }

    // -- hierarchy helpers --------------------------------------------------

    fn with_descendant_properties(&self, p: u64) -> Vec<u64> {
        with_closure(p, &self.property_descendants)
    }

    fn with_ancestor_properties(&self, p: u64) -> Vec<u64> {
        with_closure(p, &self.property_ancestors)
    }

    fn with_descendant_classes(&self, c: u64) -> Vec<u64> {
        with_closure(c, &self.class_descendants)
    }

    /// The predicates that can appear in derivable triples: every property
    /// with a table, every property mentioned in the subPropertyOf hierarchy
    /// and the schema predicates themselves.
    fn candidate_predicates(&self) -> Vec<u64> {
        let mut predicates: HashSet<u64> = self.store.property_ids().collect();
        predicates.extend(self.property_ancestors.keys());
        for ancestors in self.property_ancestors.values() {
            predicates.extend(ancestors.iter().copied());
        }
        predicates.insert(wellknown::RDF_TYPE);
        predicates.insert(wellknown::RDFS_SUB_CLASS_OF);
        predicates.insert(wellknown::RDFS_SUB_PROPERTY_OF);
        let mut predicates: Vec<u64> = predicates.into_iter().collect();
        predicates.sort_unstable();
        predicates
    }
}

/// Emits the pairs of `table` that satisfy the subject/object constraints of
/// `pattern`, as triples of predicate `target` (which may differ from the
/// table the pairs came from when rewriting through subproperties).
fn emit_matching_pairs(
    table: &PropertyTable,
    target: u64,
    pattern: TriplePattern,
    out: &mut HashSet<IdTriple>,
) {
    match (pattern.s, pattern.o) {
        (Some(s), Some(o)) => {
            if table.contains_pair(s, o) {
                out.insert(IdTriple::new(s, target, o));
            }
        }
        (Some(s), None) => {
            for o in table.objects_of(s) {
                out.insert(IdTriple::new(s, target, o));
            }
        }
        (None, constraint) => {
            for (s, o) in table.iter_pairs() {
                if constraint.is_none_or(|c| c == o) {
                    out.insert(IdTriple::new(s, target, o));
                }
            }
        }
    }
}

/// `node` plus everything reachable from it in `closure`.
fn with_closure(node: u64, closure: &HashMap<u64, Vec<u64>>) -> Vec<u64> {
    let mut all = vec![node];
    if let Some(reached) = closure.get(&node) {
        all.extend(reached.iter().copied());
    }
    all
}

/// Builds (ancestors, descendants) reachability maps from an edge table,
/// following edges transitively. Cycles are tolerated: a node never lists
/// itself unless a cycle makes it genuinely reachable from itself.
fn transitive_maps(
    table: Option<&PropertyTable>,
) -> (HashMap<u64, Vec<u64>>, HashMap<u64, Vec<u64>>) {
    let mut forward: HashMap<u64, Vec<u64>> = HashMap::new();
    let Some(table) = table else {
        return (HashMap::new(), HashMap::new());
    };
    for (s, o) in table.iter_pairs() {
        forward.entry(s).or_default().push(o);
    }
    let mut ancestors: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut descendants: HashMap<u64, Vec<u64>> = HashMap::new();
    for &start in forward.keys() {
        let mut reached: HashSet<u64> = HashSet::new();
        let mut stack: Vec<u64> = forward[&start].clone();
        while let Some(node) = stack.pop() {
            if reached.insert(node) {
                if let Some(next) = forward.get(&node) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        let mut reached: Vec<u64> = reached.into_iter().collect();
        reached.sort_unstable();
        for &target in &reached {
            descendants.entry(target).or_default().push(start);
        }
        ancestors.insert(start, reached);
    }
    for list in descendants.values_mut() {
        list.sort_unstable();
        list.dedup();
    }
    (ancestors, descendants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;

    const HUMAN: u64 = 8_000_000;
    const MAMMAL: u64 = 8_000_001;
    const ANIMAL: u64 = 8_000_002;
    const BART: u64 = 8_000_003;
    const SANTAS_HELPER: u64 = 8_000_004;
    const DOG: u64 = 8_000_005;

    fn has_pet() -> u64 {
        nth_property_id(40)
    }

    fn has_dog() -> u64 {
        nth_property_id(41)
    }

    fn family_store() -> TripleStore {
        TripleStore::from_triples([
            IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            IdTriple::new(MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
            IdTriple::new(BART, wk::RDF_TYPE, HUMAN),
            IdTriple::new(has_dog(), wk::RDFS_SUB_PROPERTY_OF, has_pet()),
            IdTriple::new(has_pet(), wk::RDFS_RANGE, ANIMAL),
            IdTriple::new(has_pet(), wk::RDFS_DOMAIN, HUMAN),
            IdTriple::new(BART, has_dog(), SANTAS_HELPER),
            IdTriple::new(SANTAS_HELPER, wk::RDF_TYPE, DOG),
        ])
    }

    #[test]
    fn subclass_reachability_is_transitive() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        assert!(chainer.holds(IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, ANIMAL)));
        assert!(chainer.holds(IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL)));
        assert!(!chainer.holds(IdTriple::new(ANIMAL, wk::RDFS_SUB_CLASS_OF, HUMAN)));
    }

    #[test]
    fn type_queries_follow_cax_sco() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        assert!(chainer.holds(IdTriple::new(BART, wk::RDF_TYPE, HUMAN)));
        assert!(chainer.holds(IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)));
        assert!(chainer.holds(IdTriple::new(BART, wk::RDF_TYPE, ANIMAL)));
        assert!(!chainer.holds(IdTriple::new(BART, wk::RDF_TYPE, DOG)));
    }

    #[test]
    fn property_queries_follow_prp_spo1() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        // has_dog ⊑ has_pet, so the has_pet pattern sees the has_dog triple.
        assert!(chainer.holds(IdTriple::new(BART, has_pet(), SANTAS_HELPER)));
        let pets = chainer.match_pattern(TriplePattern::any().with_p(has_pet()));
        assert_eq!(pets.len(), 1);
        assert_eq!(pets[0].s, BART);
    }

    #[test]
    fn domain_and_range_infer_types_through_subproperties() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        // domain(has_pet)=HUMAN and BART has_dog …, has_dog ⊑ has_pet.
        assert!(chainer.holds(IdTriple::new(BART, wk::RDF_TYPE, HUMAN)));
        // range(has_pet)=ANIMAL lifts Santa's Little Helper to ANIMAL.
        assert!(chainer.holds(IdTriple::new(SANTAS_HELPER, wk::RDF_TYPE, ANIMAL)));
        // … but not to MAMMAL: nothing makes ANIMAL a subclass of MAMMAL.
        assert!(!chainer.holds(IdTriple::new(SANTAS_HELPER, wk::RDF_TYPE, MAMMAL)));
    }

    #[test]
    fn domain_statements_are_inherited_by_subproperties() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        // SCM-DOM2: has_dog ⊑ has_pet and domain(has_pet, HUMAN).
        assert!(chainer.holds(IdTriple::new(has_dog(), wk::RDFS_DOMAIN, HUMAN)));
        // SCM-RNG2 likewise.
        assert!(chainer.holds(IdTriple::new(has_dog(), wk::RDFS_RANGE, ANIMAL)));
        // Unbound-subject domain queries see both properties.
        let domains = chainer.match_pattern(TriplePattern::any().with_p(wk::RDFS_DOMAIN));
        assert_eq!(domains.len(), 2);
    }

    #[test]
    fn instances_of_a_class_are_enumerated() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        let animals =
            chainer.match_pattern(TriplePattern::any().with_p(wk::RDF_TYPE).with_o(ANIMAL));
        let subjects: HashSet<u64> = animals.iter().map(|t| t.s).collect();
        assert!(subjects.contains(&BART));
        assert!(subjects.contains(&SANTAS_HELPER));
    }

    #[test]
    fn unbound_pattern_produces_the_full_closure_without_duplicates() {
        let store = family_store();
        let chainer = BackwardChainer::new(&store);
        let all = chainer.all_triples();
        let unique: HashSet<IdTriple> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
        // Input triples are all present.
        for t in store.iter_triples() {
            assert!(unique.contains(&t), "missing asserted triple {t:?}");
        }
        // And strictly more triples are derivable.
        assert!(all.len() > store.len());
    }

    #[test]
    fn cyclic_hierarchies_do_not_hang() {
        let a = 7_000_000;
        let b = 7_000_001;
        let c = 7_000_002;
        let store = TripleStore::from_triples([
            IdTriple::new(a, wk::RDFS_SUB_CLASS_OF, b),
            IdTriple::new(b, wk::RDFS_SUB_CLASS_OF, c),
            IdTriple::new(c, wk::RDFS_SUB_CLASS_OF, a),
            IdTriple::new(BART, wk::RDF_TYPE, a),
        ]);
        let chainer = BackwardChainer::new(&store);
        assert!(chainer.holds(IdTriple::new(a, wk::RDFS_SUB_CLASS_OF, a)));
        assert!(chainer.holds(IdTriple::new(BART, wk::RDF_TYPE, c)));
    }

    #[test]
    fn empty_store_yields_nothing() {
        let store = TripleStore::new();
        let chainer = BackwardChainer::new(&store);
        assert!(chainer.all_triples().is_empty());
        assert!(!chainer.holds(IdTriple::new(1, wk::RDF_TYPE, 2)));
    }
}
