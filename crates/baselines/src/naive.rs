//! The Sesame/OWLIM-style baseline: iterative full re-evaluation.
//!
//! "Rules are iteratively applied to the data until a stopping criterion is
//! matched" (§2) — but unlike the semi-naive hash-join engine, this baseline
//! re-evaluates every rule against the *entire* triple set on every
//! iteration, re-deriving (and then discarding) everything that is already
//! known. The `derived_raw` / `duplicates_removed` statistics it reports are
//! what §2.1 calls the duplicate-elimination bottleneck.

use crate::datalog::{datalog_rules_for, DatalogRule};
use crate::eval::evaluate_rule;
use crate::index::TripleIndex;
use inferray_model::IdTriple;
use inferray_rules::{Fragment, InferenceStats, Materializer};
use inferray_store::TripleStore;
use std::time::Instant;

/// A deliberately naive fixed-point reasoner: full rule re-evaluation on
/// every iteration with hash-set duplicate elimination.
#[derive(Debug, Clone)]
pub struct NaiveIterativeReasoner {
    fragment: Fragment,
    rules: Vec<DatalogRule>,
    max_iterations: usize,
}

impl NaiveIterativeReasoner {
    /// A naive reasoner for the given fragment.
    pub fn new(fragment: Fragment) -> Self {
        NaiveIterativeReasoner {
            fragment,
            rules: datalog_rules_for(fragment),
            max_iterations: 1024,
        }
    }

    /// The fragment this reasoner applies.
    pub fn fragment(&self) -> Fragment {
        self.fragment
    }
}

impl Materializer for NaiveIterativeReasoner {
    fn name(&self) -> &'static str {
        "naive-iterative"
    }

    fn materialize(&mut self, store: &mut TripleStore) -> InferenceStats {
        let start = Instant::now();
        store.finalize();
        let input: Vec<IdTriple> = store.iter_triples().collect();
        let input_triples = input.len();

        let mut index = TripleIndex::from_triples(input);
        let mut iterations = 0usize;
        let mut derived_raw = 0usize;
        let mut duplicates_removed = 0usize;

        loop {
            if iterations >= self.max_iterations {
                break;
            }
            iterations += 1;
            let mut derived: Vec<IdTriple> = Vec::new();
            for rule in &self.rules {
                evaluate_rule(rule, &mut index, &mut derived);
            }
            derived_raw += derived.len();

            let mut added_any = false;
            for triple in derived {
                if index.insert(triple) {
                    added_any = true;
                } else {
                    duplicates_removed += 1;
                }
            }
            if !added_any {
                break;
            }
        }

        let profile = index.profile;
        let output: Vec<IdTriple> = index.into_sorted_triples();
        let output_triples = output.len();
        store.clear();
        for triple in &output {
            store.add_triple(*triple);
        }
        store.finalize();

        InferenceStats {
            input_triples,
            output_triples,
            iterations,
            derived_raw,
            duplicates_removed,
            duration: start.elapsed(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_join::HashJoinReasoner;
    use inferray_dictionary::wellknown as wk;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    const HUMAN: u64 = 13_000_000;
    const MAMMAL: u64 = 13_000_001;
    const ANIMAL: u64 = 13_000_002;
    const BART: u64 = 13_000_003;

    fn family() -> TripleStore {
        store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ])
    }

    #[test]
    fn materializes_the_running_example() {
        let mut data = family();
        let stats = NaiveIterativeReasoner::new(Fragment::RdfsDefault).materialize(&mut data);
        assert_eq!(stats.inferred_triples(), 3);
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, ANIMAL)));
    }

    #[test]
    fn naive_and_hash_join_agree() {
        let mut a = family();
        let mut b = family();
        NaiveIterativeReasoner::new(Fragment::RdfsDefault).materialize(&mut a);
        HashJoinReasoner::new(Fragment::RdfsDefault).materialize(&mut b);
        let ta: Vec<_> = a.iter_triples().collect();
        let tb: Vec<_> = b.iter_triples().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn naive_generates_many_more_duplicates_than_semi_naive() {
        let chain: Vec<(u64, u64, u64)> = (0..25u64)
            .map(|i| (14_000_000 + i, wk::RDFS_SUB_CLASS_OF, 14_000_001 + i))
            .collect();
        let mut naive_store = store(&chain);
        let mut hash_store = store(&chain);
        let naive_stats =
            NaiveIterativeReasoner::new(Fragment::RhoDf).materialize(&mut naive_store);
        let hash_stats = HashJoinReasoner::new(Fragment::RhoDf).materialize(&mut hash_store);
        assert_eq!(naive_stats.output_triples, hash_stats.output_triples);
        assert!(
            naive_stats.duplicates_removed > hash_stats.duplicates_removed,
            "naive {} vs semi-naive {}",
            naive_stats.duplicates_removed,
            hash_stats.duplicates_removed
        );
    }

    #[test]
    fn empty_store_terminates_immediately() {
        let mut data = TripleStore::new();
        let stats = NaiveIterativeReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        assert_eq!(stats.output_triples, 0);
        assert_eq!(stats.iterations, 1);
    }
}
