//! A small datalog evaluator over the hash indexes.
//!
//! Rules are evaluated by index nested-loop joins: the body atoms are
//! matched left to right, each atom queried against the [`TripleIndex`] with
//! whatever constants and already-bound variables it has. This is the
//! evaluation strategy of the hash-based engines the paper compares against,
//! and every lookup it performs is a hash probe followed by a pointer chase —
//! the access pattern the sorted-array design avoids.

use crate::datalog::{DatalogRule, PatTerm, TriplePattern};
use crate::index::TripleIndex;
use inferray_model::ids::is_property_id;
use inferray_model::IdTriple;

/// Variable bindings (rules use at most four variables).
pub type Bindings = [Option<u64>; 4];

/// Evaluates a rule with every body atom ranging over the full index
/// (the strategy of the naive iterative engine). Derived triples are pushed
/// to `out`, duplicates included.
pub fn evaluate_rule(rule: &DatalogRule, index: &mut TripleIndex, out: &mut Vec<IdTriple>) {
    let bindings: Bindings = [None; 4];
    join_from(rule, index, &rule.body, 0, bindings, out);
}

/// Evaluates a rule semi-naively: one body atom is restricted to the `delta`
/// triples (those discovered in the previous iteration), the others range
/// over the full index; every atom takes the restricted role in turn (the
/// strategy of the hash-join engine).
pub fn evaluate_rule_semi_naive(
    rule: &DatalogRule,
    index: &mut TripleIndex,
    delta: &[IdTriple],
    out: &mut Vec<IdTriple>,
) {
    for pinned in 0..rule.body.len() {
        for &triple in delta {
            let mut bindings: Bindings = [None; 4];
            if !unify(&rule.body[pinned], triple, &mut bindings) {
                continue;
            }
            // Join the remaining atoms (all except the pinned one) against
            // the full index.
            let remaining: Vec<TriplePattern> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pinned)
                .map(|(_, p)| *p)
                .collect();
            join_from(rule, index, &remaining, 0, bindings, out);
        }
    }
}

/// Recursive index nested-loop join over `atoms[from..]`.
fn join_from(
    rule: &DatalogRule,
    index: &mut TripleIndex,
    atoms: &[TriplePattern],
    from: usize,
    bindings: Bindings,
    out: &mut Vec<IdTriple>,
) {
    if from == atoms.len() {
        emit_heads(rule, &bindings, out);
        return;
    }
    let atom = atoms[from];
    let s = resolve(atom.s, &bindings);
    let p = resolve(atom.p, &bindings);
    let o = resolve(atom.o, &bindings);
    for triple in index.matching(s, p, o) {
        let mut extended = bindings;
        if unify(&atom, triple, &mut extended) {
            join_from(rule, index, atoms, from + 1, extended, out);
        }
    }
}

/// Resolves a pattern term to a concrete identifier when it is a constant or
/// an already-bound variable.
fn resolve(term: PatTerm, bindings: &Bindings) -> Option<u64> {
    match term {
        PatTerm::Const(value) => Some(value),
        PatTerm::Var(v) => bindings[v as usize],
    }
}

/// Attempts to unify a pattern with a concrete triple under the current
/// bindings, extending them on success.
fn unify(pattern: &TriplePattern, triple: IdTriple, bindings: &mut Bindings) -> bool {
    unify_term(pattern.s, triple.s, bindings)
        && unify_term(pattern.p, triple.p, bindings)
        && unify_term(pattern.o, triple.o, bindings)
}

fn unify_term(term: PatTerm, value: u64, bindings: &mut Bindings) -> bool {
    match term {
        PatTerm::Const(c) => c == value,
        PatTerm::Var(v) => match bindings[v as usize] {
            None => {
                bindings[v as usize] = Some(value);
                true
            }
            Some(bound) => bound == value,
        },
    }
}

/// Emits the head triples of a satisfied rule body, applying the
/// disequality filters and skipping heads whose predicate does not resolve
/// to a property identifier (such triples have no property table and the
/// sort-merge engine skips them identically).
fn emit_heads(rule: &DatalogRule, bindings: &Bindings, out: &mut Vec<IdTriple>) {
    for &(a, b) in &rule.not_equal {
        if bindings[a as usize] == bindings[b as usize] {
            return;
        }
    }
    for head in &rule.head {
        let (Some(s), Some(p), Some(o)) = (
            resolve(head.s, bindings),
            resolve(head.p, bindings),
            resolve(head.o, bindings),
        ) else {
            continue;
        };
        if !is_property_id(p) {
            continue;
        }
        out.push(IdTriple::new(s, p, o));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::datalog_rule;
    use inferray_dictionary::wellknown as wk;
    use inferray_rules::RuleId;

    // Individuals and classes live in the resource half of the id space.
    const HUMAN: u64 = (1 << 32) + 10_000_000;
    const MAMMAL: u64 = (1 << 32) + 10_000_001;
    const BART: u64 = (1 << 32) + 10_000_002;

    fn index(triples: &[(u64, u64, u64)]) -> TripleIndex {
        TripleIndex::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    #[test]
    fn cax_sco_via_full_evaluation() {
        let mut idx = index(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ]);
        let rule = datalog_rule(RuleId::CaxSco);
        let mut out = Vec::new();
        evaluate_rule(&rule, &mut idx, &mut out);
        assert_eq!(out, vec![IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)]);
    }

    #[test]
    fn semi_naive_fires_when_either_atom_is_in_the_delta() {
        let mut idx = index(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ]);
        let rule = datalog_rule(RuleId::CaxSco);

        let delta = vec![IdTriple::new(BART, wk::RDF_TYPE, HUMAN)];
        let mut out = Vec::new();
        evaluate_rule_semi_naive(&rule, &mut idx, &delta, &mut out);
        assert!(out.contains(&IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)));

        let delta = vec![IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL)];
        let mut out = Vec::new();
        evaluate_rule_semi_naive(&rule, &mut idx, &delta, &mut out);
        assert!(out.contains(&IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)));

        // A delta unrelated to the rule derives nothing.
        let delta = vec![IdTriple::new(BART, wk::RDFS_DOMAIN, HUMAN)];
        let mut out = Vec::new();
        evaluate_rule_semi_naive(&rule, &mut idx, &delta, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn disequality_filter_blocks_reflexive_same_as() {
        let p = inferray_model::ids::nth_property_id(800);
        let mut idx = index(&[
            (p, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (BART, p, HUMAN),
            (BART, p, MAMMAL),
        ]);
        let rule = datalog_rule(RuleId::PrpFp);
        let mut out = Vec::new();
        evaluate_rule(&rule, &mut idx, &mut out);
        // Both orderings of the distinct pair, but no (x sameAs x).
        assert!(out.contains(&IdTriple::new(HUMAN, wk::OWL_SAME_AS, MAMMAL)));
        assert!(out.contains(&IdTriple::new(MAMMAL, wk::OWL_SAME_AS, HUMAN)));
        assert!(!out.iter().any(|t| t.s == t.o));
    }

    #[test]
    fn heads_with_non_property_predicates_are_dropped() {
        // sameAs between a property and an individual: EQ-REP-P would emit a
        // triple whose predicate is the individual — it must be skipped.
        let p = inferray_model::ids::nth_property_id(801);
        let mut idx = index(&[(p, wk::OWL_SAME_AS, BART), (HUMAN, p, MAMMAL)]);
        let rule = datalog_rule(RuleId::EqRepP);
        let mut out = Vec::new();
        evaluate_rule(&rule, &mut idx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_head_rules_emit_every_head() {
        let mut idx = index(&[(HUMAN, wk::RDF_TYPE, wk::OWL_CLASS)]);
        let rule = datalog_rule(RuleId::ScmCls);
        let mut out = Vec::new();
        evaluate_rule(&rule, &mut idx, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.contains(&IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, wk::OWL_THING)));
        assert!(out.contains(&IdTriple::new(
            wk::OWL_NOTHING,
            wk::RDFS_SUB_CLASS_OF,
            HUMAN
        )));
    }

    #[test]
    fn three_way_join_for_transitivity() {
        let p = inferray_model::ids::nth_property_id(802);
        let mut idx = index(&[
            (p, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            ((1 << 32) + 1_000, p, (1 << 32) + 1_001),
            ((1 << 32) + 1_001, p, (1 << 32) + 1_002),
        ]);
        let rule = datalog_rule(RuleId::PrpTrp);
        let mut out = Vec::new();
        evaluate_rule(&rule, &mut idx, &mut out);
        assert!(out.contains(&IdTriple::new((1 << 32) + 1_000, p, (1 << 32) + 1_002)));
    }
}
