//! Declarative datalog encoding of the Table 5 rules.
//!
//! The baselines interpret rules instead of hard-coding them: a rule is a
//! conjunction of triple patterns over variables and constants, a set of
//! head patterns, and optional disequality filters. This is the natural
//! representation for a hash-join or RETE-flavoured engine — and it is
//! intentionally *independent* of the sort-merge executors of
//! `inferray-rules`, so that cross-engine equivalence tests are meaningful.

use inferray_dictionary::wellknown as wk;
use inferray_rules::{Fragment, RuleId, Ruleset};

/// A term of a triple pattern: a variable (identified by a small index) or a
/// constant identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatTerm {
    /// A variable, identified by its slot in the binding array.
    Var(u8),
    /// A constant (dictionary identifier).
    Const(u64),
}

/// A triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: PatTerm,
    /// Predicate position.
    pub p: PatTerm,
    /// Object position.
    pub o: PatTerm,
}

impl TriplePattern {
    /// Shorthand constructor.
    pub const fn new(s: PatTerm, p: PatTerm, o: PatTerm) -> Self {
        TriplePattern { s, p, o }
    }
}

/// A datalog rule: `body ⇒ head`, with optional `x ≠ y` filters over
/// variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogRule {
    /// The rule this encodes (ties back to the catalog).
    pub id: RuleId,
    /// Body patterns (joined conjunctively).
    pub body: Vec<TriplePattern>,
    /// Head patterns (each produces one triple per satisfying binding).
    pub head: Vec<TriplePattern>,
    /// Disequality filters between variables.
    pub not_equal: Vec<(u8, u8)>,
}

impl DatalogRule {
    /// Number of variables used (the binding array length).
    pub fn variable_count(&self) -> usize {
        let mut max = 0usize;
        let mut consider = |t: &PatTerm| {
            if let PatTerm::Var(v) = t {
                max = max.max(*v as usize + 1);
            }
        };
        for pattern in self.body.iter().chain(self.head.iter()) {
            consider(&pattern.s);
            consider(&pattern.p);
            consider(&pattern.o);
        }
        max
    }
}

use PatTerm::{Const, Var};

const V0: PatTerm = Var(0);
const V1: PatTerm = Var(1);
const V2: PatTerm = Var(2);
const V3: PatTerm = Var(3);

fn pattern(s: PatTerm, p: PatTerm, o: PatTerm) -> TriplePattern {
    TriplePattern::new(s, p, o)
}

/// The datalog encoding of one rule of Table 5.
pub fn datalog_rule(id: RuleId) -> DatalogRule {
    let (body, head, not_equal): (Vec<TriplePattern>, Vec<TriplePattern>, Vec<(u8, u8)>) = match id
    {
        RuleId::CaxEqc1 => (
            vec![
                pattern(V0, Const(wk::OWL_EQUIVALENT_CLASS), V1),
                pattern(V2, Const(wk::RDF_TYPE), V0),
            ],
            vec![pattern(V2, Const(wk::RDF_TYPE), V1)],
            vec![],
        ),
        RuleId::CaxEqc2 => (
            vec![
                pattern(V0, Const(wk::OWL_EQUIVALENT_CLASS), V1),
                pattern(V2, Const(wk::RDF_TYPE), V1),
            ],
            vec![pattern(V2, Const(wk::RDF_TYPE), V0)],
            vec![],
        ),
        RuleId::CaxSco => (
            vec![
                pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V1),
                pattern(V2, Const(wk::RDF_TYPE), V0),
            ],
            vec![pattern(V2, Const(wk::RDF_TYPE), V1)],
            vec![],
        ),
        RuleId::EqRepO => (
            vec![pattern(V0, Const(wk::OWL_SAME_AS), V1), pattern(V2, V3, V0)],
            vec![pattern(V2, V3, V1)],
            vec![],
        ),
        RuleId::EqRepP => (
            vec![pattern(V0, Const(wk::OWL_SAME_AS), V1), pattern(V2, V0, V3)],
            vec![pattern(V2, V1, V3)],
            vec![],
        ),
        RuleId::EqRepS => (
            vec![pattern(V0, Const(wk::OWL_SAME_AS), V1), pattern(V0, V2, V3)],
            vec![pattern(V1, V2, V3)],
            vec![],
        ),
        RuleId::EqSym => (
            vec![pattern(V0, Const(wk::OWL_SAME_AS), V1)],
            vec![pattern(V1, Const(wk::OWL_SAME_AS), V0)],
            vec![],
        ),
        RuleId::EqTrans => (
            vec![
                pattern(V0, Const(wk::OWL_SAME_AS), V1),
                pattern(V1, Const(wk::OWL_SAME_AS), V2),
            ],
            vec![pattern(V0, Const(wk::OWL_SAME_AS), V2)],
            vec![],
        ),
        RuleId::PrpDom => (
            vec![pattern(V0, Const(wk::RDFS_DOMAIN), V1), pattern(V2, V0, V3)],
            vec![pattern(V2, Const(wk::RDF_TYPE), V1)],
            vec![],
        ),
        RuleId::PrpEqp1 => (
            vec![
                pattern(V0, Const(wk::OWL_EQUIVALENT_PROPERTY), V1),
                pattern(V2, V0, V3),
            ],
            vec![pattern(V2, V1, V3)],
            vec![],
        ),
        RuleId::PrpEqp2 => (
            vec![
                pattern(V0, Const(wk::OWL_EQUIVALENT_PROPERTY), V1),
                pattern(V2, V1, V3),
            ],
            vec![pattern(V2, V0, V3)],
            vec![],
        ),
        RuleId::PrpFp => (
            vec![
                pattern(V0, Const(wk::RDF_TYPE), Const(wk::OWL_FUNCTIONAL_PROPERTY)),
                pattern(V1, V0, V2),
                pattern(V1, V0, V3),
            ],
            vec![pattern(V2, Const(wk::OWL_SAME_AS), V3)],
            vec![(2, 3)],
        ),
        RuleId::PrpIfp => (
            vec![
                pattern(
                    V0,
                    Const(wk::RDF_TYPE),
                    Const(wk::OWL_INVERSE_FUNCTIONAL_PROPERTY),
                ),
                pattern(V1, V0, V3),
                pattern(V2, V0, V3),
            ],
            vec![pattern(V1, Const(wk::OWL_SAME_AS), V2)],
            vec![(1, 2)],
        ),
        RuleId::PrpInv1 => (
            vec![
                pattern(V0, Const(wk::OWL_INVERSE_OF), V1),
                pattern(V2, V0, V3),
            ],
            vec![pattern(V3, V1, V2)],
            vec![],
        ),
        RuleId::PrpInv2 => (
            vec![
                pattern(V0, Const(wk::OWL_INVERSE_OF), V1),
                pattern(V2, V1, V3),
            ],
            vec![pattern(V3, V0, V2)],
            vec![],
        ),
        RuleId::PrpRng => (
            vec![pattern(V0, Const(wk::RDFS_RANGE), V1), pattern(V2, V0, V3)],
            vec![pattern(V3, Const(wk::RDF_TYPE), V1)],
            vec![],
        ),
        RuleId::PrpSpo1 => (
            vec![
                pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V1),
                pattern(V2, V0, V3),
            ],
            vec![pattern(V2, V1, V3)],
            vec![],
        ),
        RuleId::PrpSymp => (
            vec![
                pattern(V0, Const(wk::RDF_TYPE), Const(wk::OWL_SYMMETRIC_PROPERTY)),
                pattern(V1, V0, V2),
            ],
            vec![pattern(V2, V0, V1)],
            vec![],
        ),
        RuleId::PrpTrp => (
            vec![
                pattern(V0, Const(wk::RDF_TYPE), Const(wk::OWL_TRANSITIVE_PROPERTY)),
                pattern(V1, V0, V2),
                pattern(V2, V0, V3),
            ],
            vec![pattern(V1, V0, V3)],
            vec![],
        ),
        RuleId::ScmDom1 => (
            vec![
                pattern(V0, Const(wk::RDFS_DOMAIN), V1),
                pattern(V1, Const(wk::RDFS_SUB_CLASS_OF), V2),
            ],
            vec![pattern(V0, Const(wk::RDFS_DOMAIN), V2)],
            vec![],
        ),
        RuleId::ScmDom2 => (
            vec![
                pattern(V0, Const(wk::RDFS_DOMAIN), V1),
                pattern(V2, Const(wk::RDFS_SUB_PROPERTY_OF), V0),
            ],
            vec![pattern(V2, Const(wk::RDFS_DOMAIN), V1)],
            vec![],
        ),
        RuleId::ScmEqc1 => (
            vec![pattern(V0, Const(wk::OWL_EQUIVALENT_CLASS), V1)],
            vec![
                pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V1),
                pattern(V1, Const(wk::RDFS_SUB_CLASS_OF), V0),
            ],
            vec![],
        ),
        RuleId::ScmEqc2 => (
            vec![
                pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V1),
                pattern(V1, Const(wk::RDFS_SUB_CLASS_OF), V0),
            ],
            vec![pattern(V0, Const(wk::OWL_EQUIVALENT_CLASS), V1)],
            vec![],
        ),
        RuleId::ScmEqp1 => (
            vec![pattern(V0, Const(wk::OWL_EQUIVALENT_PROPERTY), V1)],
            vec![
                pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V1),
                pattern(V1, Const(wk::RDFS_SUB_PROPERTY_OF), V0),
            ],
            vec![],
        ),
        RuleId::ScmEqp2 => (
            vec![
                pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V1),
                pattern(V1, Const(wk::RDFS_SUB_PROPERTY_OF), V0),
            ],
            vec![pattern(V0, Const(wk::OWL_EQUIVALENT_PROPERTY), V1)],
            vec![],
        ),
        RuleId::ScmRng1 => (
            vec![
                pattern(V0, Const(wk::RDFS_RANGE), V1),
                pattern(V1, Const(wk::RDFS_SUB_CLASS_OF), V2),
            ],
            vec![pattern(V0, Const(wk::RDFS_RANGE), V2)],
            vec![],
        ),
        RuleId::ScmRng2 => (
            vec![
                pattern(V0, Const(wk::RDFS_RANGE), V1),
                pattern(V2, Const(wk::RDFS_SUB_PROPERTY_OF), V0),
            ],
            vec![pattern(V2, Const(wk::RDFS_RANGE), V1)],
            vec![],
        ),
        RuleId::ScmSco => (
            vec![
                pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V1),
                pattern(V1, Const(wk::RDFS_SUB_CLASS_OF), V2),
            ],
            vec![pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V2)],
            vec![],
        ),
        RuleId::ScmSpo => (
            vec![
                pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V1),
                pattern(V1, Const(wk::RDFS_SUB_PROPERTY_OF), V2),
            ],
            vec![pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V2)],
            vec![],
        ),
        RuleId::ScmCls => (
            vec![pattern(V0, Const(wk::RDF_TYPE), Const(wk::OWL_CLASS))],
            vec![
                pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V0),
                pattern(V0, Const(wk::OWL_EQUIVALENT_CLASS), V0),
                pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), Const(wk::OWL_THING)),
                pattern(Const(wk::OWL_NOTHING), Const(wk::RDFS_SUB_CLASS_OF), V0),
            ],
            vec![],
        ),
        RuleId::ScmDp => (
            vec![pattern(
                V0,
                Const(wk::RDF_TYPE),
                Const(wk::OWL_DATATYPE_PROPERTY),
            )],
            vec![
                pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V0),
                pattern(V0, Const(wk::OWL_EQUIVALENT_PROPERTY), V0),
            ],
            vec![],
        ),
        RuleId::ScmOp => (
            vec![pattern(
                V0,
                Const(wk::RDF_TYPE),
                Const(wk::OWL_OBJECT_PROPERTY),
            )],
            vec![
                pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V0),
                pattern(V0, Const(wk::OWL_EQUIVALENT_PROPERTY), V0),
            ],
            vec![],
        ),
        RuleId::Rdfs4 => (
            vec![pattern(V0, V1, V2)],
            vec![
                pattern(V0, Const(wk::RDF_TYPE), Const(wk::RDFS_RESOURCE)),
                pattern(V2, Const(wk::RDF_TYPE), Const(wk::RDFS_RESOURCE)),
            ],
            vec![],
        ),
        RuleId::Rdfs8 => (
            vec![pattern(V0, Const(wk::RDF_TYPE), Const(wk::RDFS_CLASS))],
            vec![pattern(
                V0,
                Const(wk::RDFS_SUB_CLASS_OF),
                Const(wk::RDFS_RESOURCE),
            )],
            vec![],
        ),
        RuleId::Rdfs12 => (
            vec![pattern(
                V0,
                Const(wk::RDF_TYPE),
                Const(wk::RDFS_CONTAINER_MEMBERSHIP_PROPERTY),
            )],
            vec![pattern(
                V0,
                Const(wk::RDFS_SUB_PROPERTY_OF),
                Const(wk::RDFS_MEMBER),
            )],
            vec![],
        ),
        RuleId::Rdfs13 => (
            vec![pattern(V0, Const(wk::RDF_TYPE), Const(wk::RDFS_DATATYPE))],
            vec![pattern(
                V0,
                Const(wk::RDFS_SUB_CLASS_OF),
                Const(wk::RDFS_LITERAL),
            )],
            vec![],
        ),
        RuleId::Rdfs6 => (
            vec![pattern(V0, Const(wk::RDF_TYPE), Const(wk::RDF_PROPERTY))],
            vec![pattern(V0, Const(wk::RDFS_SUB_PROPERTY_OF), V0)],
            vec![],
        ),
        RuleId::Rdfs10 => (
            vec![pattern(V0, Const(wk::RDF_TYPE), Const(wk::RDFS_CLASS))],
            vec![pattern(V0, Const(wk::RDFS_SUB_CLASS_OF), V0)],
            vec![],
        ),
    };
    DatalogRule {
        id,
        body,
        head,
        not_equal,
    }
}

/// The datalog encodings of every rule of a fragment's ruleset.
pub fn datalog_rules_for(fragment: Fragment) -> Vec<DatalogRule> {
    Ruleset::for_fragment(fragment)
        .rules()
        .iter()
        .map(|&id| datalog_rule(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_an_encoding_with_consistent_variables() {
        for rule in RuleId::ALL {
            let encoded = datalog_rule(rule);
            assert_eq!(encoded.id, rule);
            assert!(!encoded.body.is_empty());
            assert!(!encoded.head.is_empty());
            assert!(encoded.variable_count() <= 4, "{rule} uses too many vars");
            // Every head variable must be bound by the body (safety).
            let body_vars: std::collections::HashSet<u8> = encoded
                .body
                .iter()
                .flat_map(|p| [p.s, p.p, p.o])
                .filter_map(|t| match t {
                    PatTerm::Var(v) => Some(v),
                    PatTerm::Const(_) => None,
                })
                .collect();
            for head in &encoded.head {
                for term in [head.s, head.p, head.o] {
                    if let PatTerm::Var(v) = term {
                        assert!(body_vars.contains(&v), "{rule}: unbound head variable {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn body_sizes_match_the_rule_classes() {
        // Three-antecedent rules.
        for rule in [RuleId::PrpFp, RuleId::PrpIfp, RuleId::PrpTrp] {
            assert_eq!(datalog_rule(rule).body.len(), 3, "{rule}");
        }
        // Single-antecedent rules.
        for rule in [RuleId::EqSym, RuleId::ScmCls, RuleId::Rdfs4, RuleId::Rdfs10] {
            assert_eq!(datalog_rule(rule).body.len(), 1, "{rule}");
        }
        // Everything else has two antecedents.
        assert_eq!(datalog_rule(RuleId::CaxSco).body.len(), 2);
        assert_eq!(datalog_rule(RuleId::EqRepS).body.len(), 2);
    }

    #[test]
    fn functional_rules_carry_disequality_filters() {
        assert_eq!(datalog_rule(RuleId::PrpFp).not_equal, vec![(2, 3)]);
        assert_eq!(datalog_rule(RuleId::PrpIfp).not_equal, vec![(1, 2)]);
        assert!(datalog_rule(RuleId::CaxSco).not_equal.is_empty());
    }

    #[test]
    fn fragment_rule_counts_match_the_rulesets() {
        assert_eq!(datalog_rules_for(Fragment::RhoDf).len(), 8);
        assert_eq!(datalog_rules_for(Fragment::RdfsDefault).len(), 10);
        assert_eq!(datalog_rules_for(Fragment::RdfsFull).len(), 16);
        assert_eq!(datalog_rules_for(Fragment::RdfsPlus).len(), 29);
        assert_eq!(datalog_rules_for(Fragment::RdfsPlusFull).len(), 33);
    }
}
