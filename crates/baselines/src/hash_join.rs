//! The RDFox-style baseline: hash-indexed storage, semi-naive datalog
//! evaluation, hash-set duplicate elimination.

use crate::datalog::{datalog_rules_for, DatalogRule};
use crate::eval::evaluate_rule_semi_naive;
use crate::index::TripleIndex;
use inferray_model::IdTriple;
use inferray_rules::{Fragment, InferenceStats, Materializer};
use inferray_store::TripleStore;
use std::time::Instant;

/// A forward-chaining reasoner using hash joins over hash indexes — the
/// evaluation strategy of RDFox, which the paper uses as its strongest
/// competitor. Sound and complete for the same rulesets as Inferray; its
/// memory-access profile (hash probes, pointer chasing) is what Figures 7–8
/// contrast with the sorted-array design.
#[derive(Debug, Clone)]
pub struct HashJoinReasoner {
    fragment: Fragment,
    rules: Vec<DatalogRule>,
    max_iterations: usize,
}

impl HashJoinReasoner {
    /// A hash-join reasoner for the given fragment.
    pub fn new(fragment: Fragment) -> Self {
        HashJoinReasoner {
            fragment,
            rules: datalog_rules_for(fragment),
            max_iterations: 1024,
        }
    }

    /// The fragment this reasoner applies.
    pub fn fragment(&self) -> Fragment {
        self.fragment
    }
}

impl Materializer for HashJoinReasoner {
    fn name(&self) -> &'static str {
        "hash-join"
    }

    fn materialize(&mut self, store: &mut TripleStore) -> InferenceStats {
        let start = Instant::now();
        store.finalize();
        let input: Vec<IdTriple> = store.iter_triples().collect();
        let input_triples = input.len();

        let mut index = TripleIndex::from_triples(input.iter().copied());
        let mut delta: Vec<IdTriple> = input;
        let mut iterations = 0usize;
        let mut derived_raw = 0usize;
        let mut duplicates_removed = 0usize;

        while !delta.is_empty() && iterations < self.max_iterations {
            iterations += 1;
            let mut derived: Vec<IdTriple> = Vec::new();
            for rule in &self.rules {
                evaluate_rule_semi_naive(rule, &mut index, &delta, &mut derived);
            }
            derived_raw += derived.len();

            let mut next_delta: Vec<IdTriple> = Vec::new();
            for triple in derived {
                if index.insert(triple) {
                    next_delta.push(triple);
                } else {
                    duplicates_removed += 1;
                }
            }
            next_delta.sort_unstable();
            next_delta.dedup();
            delta = next_delta;
        }

        // Write the materialization back into the caller's store.
        let profile = index.profile;
        let output: Vec<IdTriple> = index.into_sorted_triples();
        let output_triples = output.len();
        store.clear();
        for triple in &output {
            store.add_triple(*triple);
        }
        store.finalize();

        InferenceStats {
            input_triples,
            output_triples,
            iterations,
            derived_raw,
            duplicates_removed,
            duration: start.elapsed(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown as wk;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    const HUMAN: u64 = 11_000_000;
    const MAMMAL: u64 = 11_000_001;
    const ANIMAL: u64 = 11_000_002;
    const BART: u64 = 11_000_003;

    #[test]
    fn materializes_the_running_example() {
        let mut data = store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ]);
        let stats = HashJoinReasoner::new(Fragment::RdfsDefault).materialize(&mut data);
        assert_eq!(stats.inferred_triples(), 3);
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, ANIMAL)));
        assert!(data.contains(&IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, ANIMAL)));
        assert!(
            stats.profile.hash_probes > 0,
            "hash probes must be accounted"
        );
    }

    #[test]
    fn transitive_chain_is_closed() {
        let chain: Vec<(u64, u64, u64)> = (0..30u64)
            .map(|i| (12_000_000 + i, wk::RDFS_SUB_CLASS_OF, 12_000_001 + i))
            .collect();
        let mut data = store(&chain);
        let stats = HashJoinReasoner::new(Fragment::RhoDf).materialize(&mut data);
        assert_eq!(
            data.table(wk::RDFS_SUB_CLASS_OF).unwrap().len(),
            31 * 30 / 2
        );
        assert!(
            stats.iterations > 2,
            "iterative closure needs several rounds"
        );
    }

    #[test]
    fn idempotent_on_already_materialized_data() {
        let mut data = store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ]);
        let mut reasoner = HashJoinReasoner::new(Fragment::RdfsDefault);
        reasoner.materialize(&mut data);
        let first: Vec<_> = data.iter_triples().collect();
        let second_stats = reasoner.materialize(&mut data);
        let second: Vec<_> = data.iter_triples().collect();
        assert_eq!(first, second);
        assert_eq!(second_stats.inferred_triples(), 0);
    }

    #[test]
    fn empty_store() {
        let mut data = TripleStore::new();
        let stats = HashJoinReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        assert_eq!(stats.output_triples, 0);
    }
}
