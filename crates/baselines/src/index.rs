//! Hash-indexed triple storage for the baseline engines.
//!
//! This is the data layout the paper contrasts with its sorted arrays: every
//! lookup is a hash probe, every scan of a posting list follows a pointer to
//! a separately allocated vector — data-dependent (random) memory accesses
//! throughout. The [`TripleIndex`] counts its probes into an
//! [`AccessProfile`] so the Figure 7/8 harness can report the difference.

use inferray_model::IdTriple;
use inferray_store::AccessProfile;
use std::collections::{HashMap, HashSet};

/// Hash-based triple indexes: membership set plus posting lists by
/// predicate, by ⟨predicate, subject⟩, by ⟨predicate, object⟩, by subject
/// and by object.
#[derive(Debug, Default, Clone)]
pub struct TripleIndex {
    set: HashSet<IdTriple>,
    by_p: HashMap<u64, Vec<IdTriple>>,
    by_ps: HashMap<(u64, u64), Vec<IdTriple>>,
    by_po: HashMap<(u64, u64), Vec<IdTriple>>,
    by_s: HashMap<u64, Vec<IdTriple>>,
    by_o: HashMap<u64, Vec<IdTriple>>,
    /// Hash probes and random accesses performed through this index.
    pub profile: AccessProfile,
}

impl TripleIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        TripleIndex::default()
    }

    /// Builds an index from a collection of triples.
    pub fn from_triples(triples: impl IntoIterator<Item = IdTriple>) -> Self {
        let mut index = TripleIndex::new();
        for t in triples {
            index.insert(t);
        }
        index
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when the index holds no triple.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Membership test (one hash probe).
    pub fn contains(&mut self, triple: &IdTriple) -> bool {
        self.profile.hash_probe(1);
        self.set.contains(triple)
    }

    /// Inserts a triple into every index. Returns `true` when it was new.
    pub fn insert(&mut self, triple: IdTriple) -> bool {
        self.profile.hash_probe(1);
        if !self.set.insert(triple) {
            return false;
        }
        // Five secondary indexes, five more probes plus the posting append.
        self.profile.hash_probe(5);
        self.profile.allocate(3);
        self.by_p.entry(triple.p).or_default().push(triple);
        self.by_ps
            .entry((triple.p, triple.s))
            .or_default()
            .push(triple);
        self.by_po
            .entry((triple.p, triple.o))
            .or_default()
            .push(triple);
        self.by_s.entry(triple.s).or_default().push(triple);
        self.by_o.entry(triple.o).or_default().push(triple);
        true
    }

    /// All triples, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &IdTriple> + '_ {
        self.set.iter()
    }

    /// Triples matching a (subject?, predicate?, object?) pattern, where
    /// `None` is a wildcard. Chooses the most selective available index and
    /// counts the probes.
    pub fn matching(&mut self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> Vec<IdTriple> {
        let candidates: Vec<IdTriple> = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = IdTriple::new(s, p, o);
                self.profile.hash_probe(1);
                if self.set.contains(&t) {
                    vec![t]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => self.lookup(&|idx| idx.by_ps.get(&(p, s))),
            (None, Some(p), Some(o)) => self.lookup(&|idx| idx.by_po.get(&(p, o))),
            (None, Some(p), None) => self.lookup(&|idx| idx.by_p.get(&p)),
            (Some(s), None, None) => self.lookup(&|idx| idx.by_s.get(&s)),
            (None, None, Some(o)) => self.lookup(&|idx| idx.by_o.get(&o)),
            (Some(s), None, Some(o)) => {
                let posting = self.lookup(&|idx| idx.by_s.get(&s));
                posting.into_iter().filter(|t| t.o == o).collect()
            }
            (None, None, None) => {
                self.profile.random(self.set.len() as u64 * 3);
                self.set.iter().copied().collect()
            }
        };
        candidates
    }

    fn lookup(&mut self, select: &dyn Fn(&TripleIndex) -> Option<&Vec<IdTriple>>) -> Vec<IdTriple> {
        self.profile.hash_probe(1);
        let result = select(self).cloned().unwrap_or_default();
        self.profile.random(result.len() as u64 * 3);
        result
    }

    /// Consumes the index and returns the sorted triple list.
    pub fn into_sorted_triples(self) -> Vec<IdTriple> {
        let mut triples: Vec<IdTriple> = self.set.into_iter().collect();
        triples.sort_unstable();
        triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleIndex {
        TripleIndex::from_triples([
            IdTriple::new(1, 10, 2),
            IdTriple::new(1, 10, 3),
            IdTriple::new(2, 10, 3),
            IdTriple::new(1, 11, 2),
        ])
    }

    #[test]
    fn insert_deduplicates() {
        let mut index = sample();
        assert_eq!(index.len(), 4);
        assert!(!index.insert(IdTriple::new(1, 10, 2)));
        assert_eq!(index.len(), 4);
        assert!(index.insert(IdTriple::new(9, 9, 9)));
        assert_eq!(index.len(), 5);
    }

    #[test]
    fn pattern_lookups_use_the_right_index() {
        let mut index = sample();
        assert_eq!(index.matching(None, Some(10), None).len(), 3);
        assert_eq!(index.matching(Some(1), Some(10), None).len(), 2);
        assert_eq!(index.matching(None, Some(10), Some(3)).len(), 2);
        assert_eq!(index.matching(Some(1), None, None).len(), 3);
        assert_eq!(index.matching(None, None, Some(2)).len(), 2);
        assert_eq!(index.matching(Some(1), None, Some(2)).len(), 2);
        assert_eq!(index.matching(Some(1), Some(10), Some(2)).len(), 1);
        assert_eq!(index.matching(Some(1), Some(10), Some(9)).len(), 0);
        assert_eq!(index.matching(None, None, None).len(), 4);
    }

    #[test]
    fn contains_and_probe_counting() {
        let mut index = sample();
        let probes_before = index.profile.hash_probes;
        assert!(index.contains(&IdTriple::new(1, 10, 2)));
        assert!(!index.contains(&IdTriple::new(7, 7, 7)));
        assert_eq!(index.profile.hash_probes, probes_before + 2);
    }

    #[test]
    fn into_sorted_triples_is_deterministic() {
        let a = sample().into_sorted_triples();
        let b = sample().into_sorted_triples();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_index() {
        let mut index = TripleIndex::new();
        assert!(index.is_empty());
        assert!(index.matching(None, Some(1), None).is_empty());
    }
}
