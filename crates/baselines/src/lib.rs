//! # inferray-baselines
//!
//! Competitor baselines for the Inferray benchmarks.
//!
//! The paper evaluates Inferray against RDFox (parallel hash-join datalog),
//! OWLIM-SE (RETE-flavoured iterative engine) and WebPIE (Hadoop). Those
//! systems are closed-source, JVM- or cluster-bound; this crate substitutes
//! them with two from-scratch engines that implement *the same rulesets over
//! the same encoded triples* but with the competing evaluation strategies the
//! paper contrasts against its sort-merge design (see DESIGN.md,
//! "Substitutions"):
//!
//! * [`HashJoinReasoner`] — an RDFox-style engine: triples in hash indexes
//!   (by predicate, by ⟨predicate,subject⟩, by ⟨predicate,object⟩, …),
//!   semi-naive datalog evaluation, duplicate elimination by hash-set
//!   membership. Joins are index nested-loop joins, i.e. data-dependent
//!   random accesses — exactly the access pattern the paper's Figures 7–8
//!   attribute RDFox's cache behaviour to.
//! * [`NaiveIterativeReasoner`] — a Sesame/OWLIM-style engine: the same rule
//!   interpreter, but *not* semi-naive: every iteration re-evaluates every
//!   rule against the full triple set and re-derives (then discards) every
//!   previously known conclusion, reproducing the duplicate explosion that
//!   §2.1 describes.
//! * [`BackwardChainer`] — the other side of the forward/backward trade-off
//!   the introduction discusses (QueryPIE, OBDA query rewriting): no
//!   materialization at all, every triple-pattern query is rewritten against
//!   the compiled ρdf schema hierarchies at query time.
//!
//! The first two engines interpret the rules from a declarative datalog encoding
//! ([`datalog`]) of Table 5, which is deliberately independent from the
//! sort-merge executors of `inferray-rules`: the integration tests check
//! that Inferray and the baselines reach byte-identical materializations,
//! which would not be a meaningful check if they shared executor code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backward;
pub mod datalog;
pub mod eval;
pub mod hash_join;
pub mod index;
pub mod naive;

pub use backward::BackwardChainer;
pub use hash_join::HashJoinReasoner;
pub use index::TripleIndex;
pub use naive::NaiveIterativeReasoner;
