//! # inferray
//!
//! Umbrella crate for the **Inferray** workspace — a from-scratch Rust
//! reproduction of *"Inferray: fast in-memory RDF inference"* (Subercaze,
//! Gravier, Chevalier, Laforest — PVLDB 9, VLDB 2016).
//!
//! Inferray is a forward-chaining (materialization) reasoner for the RDFS,
//! ρDF and RDFS-Plus rule fragments, built around three ideas:
//!
//! 1. a **vertically partitioned** triple store whose property tables are
//!    flat, sorted arrays of 64-bit `⟨subject, object⟩` pairs, so every rule
//!    is a sequential sort-merge join;
//! 2. **dense dictionary numbering** and two low-entropy sorting kernels
//!    (pair counting sort and adaptive MSD radix) that keep those tables
//!    sorted cheaply;
//! 3. a dedicated **transitive-closure stage** (Nuutila's algorithm with
//!    interval-set reachability) run before the fixed-point rule loop.
//!
//! ## Quick start
//!
//! ```
//! use inferray::{reason_graph, Fragment, Graph, Triple, vocab};
//!
//! let mut graph = Graph::new();
//! graph.insert_iris("http://ex/human", vocab::RDFS_SUB_CLASS_OF, "http://ex/mammal");
//! graph.insert_iris("http://ex/mammal", vocab::RDFS_SUB_CLASS_OF, "http://ex/animal");
//! graph.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
//!
//! let result = reason_graph(&graph, Fragment::RdfsDefault).unwrap();
//! assert!(result.graph.contains(&Triple::iris(
//!     "http://ex/Bart", vocab::RDF_TYPE, "http://ex/animal")));
//! assert_eq!(result.stats.inferred_triples(), 3);
//! ```
//!
//! The individual subsystems are re-exported as modules: [`model`],
//! [`dictionary`], [`parser`], [`sort`], [`closure`], [`store`], [`rules`],
//! [`core`], [`baselines`] and [`datasets`]. See `DESIGN.md` for the mapping
//! between the paper's sections and these crates, and `EXPERIMENTS.md` for
//! the reproduced tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use inferray_baselines as baselines;
pub use inferray_closure as closure;
pub use inferray_core as core;
pub use inferray_datasets as datasets;
pub use inferray_dictionary as dictionary;
pub use inferray_model as model;
pub use inferray_parser as parser;
pub use inferray_query as query;
pub use inferray_rules as rules;
pub use inferray_sort as sort;
pub use inferray_store as store;

// The items most applications need, at the crate root.
pub use inferray_core::ServingDataset;
pub use inferray_core::{
    reason_graph, Fragment, InferenceStats, InferrayOptions, InferrayReasoner, Materializer,
    ReasonedGraph, RetractionStats, ShapeInstallError, ShapeViolation, ShapeViolations,
    TripleStore, ValidationCounters, ValidationStatus, WriteError,
};
pub use inferray_model::{vocab, Graph, IdTriple, Term, Triple};
pub use inferray_parser::{load_graph, load_ntriples, load_turtle, parse_ntriples, parse_turtle};
pub use inferray_query::{QueryEngine, SolutionSet};

pub use inferray_persist as persist;
pub use inferray_persist::{CheckpointPolicy, DurableDataset, DurableError};

use inferray_query::{
    DurabilityReporter, UpdateError, UpdateOutcome, UpdateSink, ValidationReporter,
};
use std::sync::Arc;

/// Adapts a [`ServingDataset`] to the HTTP server's write path: `POST
/// /update` deletions run the delete–rederive maintenance algorithm
/// (`docs/maintenance.md`) and publish a new epoch. Writes through this
/// sink are **not** durable — use [`DurableUpdateSink`] (backed by
/// `inferray-persist`) for a WAL-protected endpoint.
///
/// Lives in the umbrella crate because `inferray-query` deliberately does
/// not depend on the reasoner — the server knows only the
/// [`UpdateSink`](inferray_query::UpdateSink) trait.
#[derive(Debug, Clone)]
pub struct ServingUpdateSink(pub Arc<ServingDataset>);

/// A parse/encode failure is the client's fault (`400`); a shape refusal
/// is a semantic conflict with the installed constraints — the server
/// renders [`UpdateError::Invalid`] as `422` with the positioned violation
/// report in the body (docs/shapes.md).
fn map_write_error(error: WriteError) -> UpdateError {
    match error {
        WriteError::Load(e) => UpdateError::rejected(e.to_string()),
        WriteError::Shapes(violations) => UpdateError::Invalid {
            message: violations.to_string(),
            violations_json: violations.json(),
        },
    }
}

impl UpdateSink for ServingUpdateSink {
    fn retract_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError> {
        // The epoch comes from the retraction itself (captured under the
        // dataset's writer lock), so concurrent updates cannot pair this
        // request's counts with another request's epoch.
        let (stats, epoch) = self.0.retract_ntriples(body).map_err(map_write_error)?;
        Ok(UpdateOutcome {
            epoch,
            requested: stats.requested,
            removed: stats.retracted_explicit,
            triples: stats.output_triples,
        })
    }

    fn assert_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError> {
        self.0.extend_ntriples(body).map_err(map_write_error)?;
        let snapshot = self.0.store_snapshot();
        Ok(UpdateOutcome {
            epoch: snapshot.epoch(),
            requested: 0,
            removed: 0,
            triples: snapshot.store().len(),
        })
    }
}

impl ValidationReporter for ServingUpdateSink {
    fn validation_json_into(&self, out: &mut String) {
        match self.0.validation_status() {
            Some(status) => status.json_into(out),
            None => out.push_str("null"),
        }
    }
}

/// Adapts a [`DurableDataset`] to the HTTP server: every `POST /update`
/// batch is WAL-logged and fsync'd before it publishes
/// (docs/persistence.md). When the WAL cannot be appended the dataset
/// degrades to read-only and this sink answers
/// [`UpdateError::Unavailable`], which the server renders as
/// `503 Service Unavailable` with a `Retry-After` header — reads keep
/// serving the last published epoch.
#[derive(Debug, Clone)]
pub struct DurableUpdateSink(pub Arc<DurableDataset>);

impl DurableUpdateSink {
    fn map_error(error: DurableError) -> UpdateError {
        match error {
            DurableError::ReadOnly { reason } => UpdateError::Unavailable {
                message: format!("dataset is read-only: {reason}"),
                retry_after_secs: 30,
            },
            other => UpdateError::rejected(other.to_string()),
        }
    }
}

impl UpdateSink for DurableUpdateSink {
    fn retract_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError> {
        let (stats, epoch) = self
            .0
            .retract_ntriples(body)
            .map_err(DurableUpdateSink::map_error)?;
        Ok(UpdateOutcome {
            epoch,
            requested: stats.requested,
            removed: stats.retracted_explicit,
            triples: stats.output_triples,
        })
    }

    fn assert_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError> {
        self.0
            .extend_ntriples(body)
            .map_err(DurableUpdateSink::map_error)?;
        let snapshot = self.0.dataset().store_snapshot();
        Ok(UpdateOutcome {
            epoch: snapshot.epoch(),
            requested: 0,
            removed: 0,
            triples: snapshot.store().len(),
        })
    }
}

impl DurabilityReporter for DurableUpdateSink {
    fn durability_json(&self) -> String {
        self.0.status().json()
    }
}
