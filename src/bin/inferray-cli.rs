//! `inferray-cli` — command-line materialization and query serving.
//!
//! **Materialize** (default): reads an RDF document (N-Triples by default,
//! Turtle subset with `--format turtle`), materializes the requested
//! entailment fragment with the Inferray reasoner, writes the
//! materialization as N-Triples to standard output and a statistics summary
//! to standard error.
//!
//! **Serve**: `inferray-cli serve` materializes the input once and then
//! exposes it to concurrent clients on a std-only SPARQL-over-HTTP endpoint
//! (see docs/serving.md): `GET/POST /sparql` with SPARQL results JSON,
//! `GET /status` for the snapshot epoch, and — unless `--read-only` —
//! `POST /update` to retract N-Triples with the delete–rederive incremental
//! maintenance path (docs/maintenance.md), or to assert them with
//! `?action=assert`. With `--data-dir` the served dataset is **durable**
//! (docs/persistence.md): it recovers from the newest snapshot image + WAL
//! replay when the directory holds one, writes every update to the WAL
//! before publishing, and checkpoints on a threshold.
//!
//! **Snapshot**: `inferray-cli snapshot --data-dir D [FILE]` materializes
//! the input and writes a snapshot image (an offline "pre-warm" of the
//! serve cold-start path).
//!
//! **Recover**: `inferray-cli recover --data-dir D` validates the data
//! directory — which image would be used, how many WAL records replay —
//! and prints the report without serving.
//!
//! **Rules**: `inferray-cli rules check FILE` runs the rule-program static
//! analyzer (docs/rules.md) over a `.rules` file and prints every finding as
//! a machine-readable `file:line:col: severity: message [RA###]` line,
//! exiting non-zero when the file has errors. `rules explain FILE`
//! additionally compiles the program and dumps each rule's derived
//! input/output signature and whether it was recognized as a catalog
//! built-in; with `--data DATA` it also prints a per-rule cost estimate
//! (pairs scanned, estimated join bindings) computed from the dataset's
//! distinct-key counters. `serve --rules FILE` serves a dataset closed
//! under the rule program instead of a baked-in fragment.
//!
//! **Shapes**: `inferray-cli shapes check FILE` runs the shape-constraint
//! static analyzer (docs/shapes.md) over a `.shapes` file and prints every
//! finding as a `file:line:col: severity: message [SH###]` line, exiting
//! non-zero on errors. `shapes validate SHAPES [DATA]` additionally
//! compiles the shapes against a dataset and prints every constraint
//! violation with the position of the violated clause, exiting non-zero
//! when the data does not conform. `serve --shapes FILE` installs the
//! shapes as a write gate: a `POST /update` whose result would violate
//! them is refused with `422` and the positioned violation report, and
//! `GET /status` reports the validation counters.
//!
//! ```text
//! inferray-cli [OPTIONS] [FILE]
//! inferray-cli serve [OPTIONS] [--port N] [--threads N] [--data-dir D] [FILE]
//! inferray-cli serve --rules RULES [OPTIONS] [FILE]
//! inferray-cli serve --shapes SHAPES [OPTIONS] [FILE]
//! inferray-cli snapshot --data-dir D [OPTIONS] [FILE]
//! inferray-cli recover --data-dir D [OPTIONS]
//! inferray-cli rules check|explain RULES [--data DATA]
//! inferray-cli shapes check SHAPES
//! inferray-cli shapes validate SHAPES [DATA]
//!
//! Options:
//!   --fragment <rho-df|rdfs|rdfs-full|rdfs-plus|rdfs-plus-full>   (default: rdfs)
//!   --format   <ntriples|turtle>                                  (default: ntriples)
//!   --inferred-only      only print the inferred triples (materialize mode)
//!   --sequential         disable the per-rule thread pool AND parallel ingest
//!   --ingest-threads <N> worker lanes for the streaming loader (default: pool size)
//!   --chunk-kib <N>      approximate ingest chunk size in KiB (default: auto)
//!   --port <N>           serve mode: TCP port to listen on (default: 3030)
//!   --host <ADDR>        serve mode: bind address (default: 127.0.0.1; use
//!                        0.0.0.0 to expose the endpoint beyond this host)
//!   --threads <N>        serve mode: HTTP worker threads (default: available cores)
//!   --read-only          serve mode: disable the POST /update endpoint
//!   --no-keep-alive      serve mode: close every connection after one
//!                        response (disables HTTP/1.1 keep-alive)
//!   --data-dir <DIR>     durable storage directory (WAL + snapshot images)
//!   --checkpoint-every <N>  records between automatic checkpoints (default 1024)
//!   --rules <FILE>       serve mode: close the dataset under this rule
//!                        program instead of --fragment (in-memory only;
//!                        not combinable with --data-dir)
//!   --shapes <FILE>      serve mode: gate POST /update behind this shape
//!                        file (in-memory only; not combinable with
//!                        --data-dir — the WAL logs before the gate runs)
//!   --data <FILE>        rules explain: estimate per-rule costs against
//!                        this dataset
//!   --help
//!
//! FILE defaults to standard input.
//! ```

use inferray::persist::StdFs;
use inferray::{
    CheckpointPolicy, DurableDataset, DurableError, DurableUpdateSink, ServingUpdateSink,
    ShapeInstallError,
};
use inferray_core::{
    InferrayOptions, InferrayReasoner, Ingest, LoaderOptions, Materializer, ServingDataset,
};
use inferray_parser::loader::LoadedDataset;
use inferray_query::{
    DurabilityReporter, ServerConfig, SnapshotQueryEngine, SparqlServer, UpdateSink,
    ValidationReporter,
};
use inferray_rules::analysis::{self, Diagnostic};
use inferray_rules::{shapes, Fragment};
use inferray_store::DistinctCount;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Materialize,
    Serve,
    Snapshot,
    Recover,
    /// `rules check` — static analysis only.
    RulesCheck,
    /// `rules explain` — analysis plus derived-signature dump.
    RulesExplain,
    /// `shapes check` — shape-file static analysis only.
    ShapesCheck,
    /// `shapes validate` — analysis plus validation of a dataset.
    ShapesValidate,
}

struct CliOptions {
    mode: Mode,
    fragment: Fragment,
    turtle: bool,
    inferred_only: bool,
    sequential: bool,
    ingest_threads: Option<usize>,
    chunk_kib: Option<usize>,
    port: u16,
    host: String,
    threads: usize,
    read_only: bool,
    no_keep_alive: bool,
    data_dir: Option<String>,
    checkpoint_every: Option<u64>,
    rules: Option<String>,
    shapes: Option<String>,
    data: Option<String>,
    input: Option<String>,
}

fn usage() -> &'static str {
    "usage: inferray-cli [serve|snapshot|recover|rules check|rules explain|\
     shapes check|shapes validate] \
     [--fragment rho-df|rdfs|rdfs-full|rdfs-plus|rdfs-plus-full] \
     [--format ntriples|turtle] [--inferred-only] [--sequential] \
     [--ingest-threads N] [--chunk-kib N] [--port N] [--host ADDR] [--threads N] \
     [--read-only] [--no-keep-alive] [--data-dir DIR] [--checkpoint-every N] \
     [--rules FILE] [--shapes FILE] [--data FILE] [FILE]\n\
     Reads RDF and materializes the fragment with Inferray. Without a subcommand\n\
     the materialization is written as N-Triples to stdout; with 'serve' it is\n\
     exposed on a SPARQL-over-HTTP endpoint (GET/POST /sparql, POST /update for\n\
     incremental assert/retract unless --read-only, GET /status) until\n\
     interrupted — durably when --data-dir is given (WAL + snapshot images,\n\
     crash recovery; docs/persistence.md). 'snapshot' writes a snapshot image\n\
     of the materialized input; 'recover' validates a data directory and\n\
     prints the recovery report. 'rules check FILE' statically analyzes a\n\
     rule program (docs/rules.md) and 'rules explain FILE' also dumps each\n\
     rule's derived scheduler signature (with per-rule cost estimates when\n\
     --data FILE names a dataset); 'serve --rules FILE' serves a dataset\n\
     closed under the program instead of a baked-in fragment. 'shapes check\n\
     FILE' statically analyzes a shape-constraint file (docs/shapes.md),\n\
     'shapes validate SHAPES [DATA]' validates a dataset against it, and\n\
     'serve --shapes FILE' refuses updates that would violate it (HTTP 422)."
}

fn parse_fragment(name: &str) -> Option<Fragment> {
    match name.to_ascii_lowercase().as_str() {
        "rho-df" | "rhodf" | "rho_df" => Some(Fragment::RhoDf),
        "rdfs" | "rdfs-default" => Some(Fragment::RdfsDefault),
        "rdfs-full" => Some(Fragment::RdfsFull),
        "rdfs-plus" => Some(Fragment::RdfsPlus),
        "rdfs-plus-full" => Some(Fragment::RdfsPlusFull),
        _ => None,
    }
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        mode: Mode::Materialize,
        fragment: Fragment::RdfsDefault,
        turtle: false,
        inferred_only: false,
        sequential: false,
        ingest_threads: None,
        chunk_kib: None,
        port: 3030,
        // Loopback by default: the endpoint is unauthenticated, so exposing
        // it beyond this host is an explicit decision (--host 0.0.0.0).
        host: "127.0.0.1".to_owned(),
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        read_only: false,
        no_keep_alive: false,
        data_dir: None,
        checkpoint_every: None,
        rules: None,
        shapes: None,
        data: None,
        input: None,
    };
    let mut i = 0usize;
    match args.first().map(String::as_str) {
        Some("serve") => {
            options.mode = Mode::Serve;
            i = 1;
        }
        Some("snapshot") => {
            options.mode = Mode::Snapshot;
            i = 1;
        }
        Some("recover") => {
            options.mode = Mode::Recover;
            i = 1;
        }
        Some("rules") => {
            options.mode = match args.get(1).map(String::as_str) {
                Some("check") => Mode::RulesCheck,
                Some("explain") => Mode::RulesExplain,
                other => {
                    return Err(format!(
                        "'rules' needs a subcommand, 'check' or 'explain' (got {})",
                        other.unwrap_or("nothing")
                    ))
                }
            };
            i = 2;
        }
        Some("shapes") => {
            options.mode = match args.get(1).map(String::as_str) {
                Some("check") => Mode::ShapesCheck,
                Some("validate") => Mode::ShapesValidate,
                other => {
                    return Err(format!(
                        "'shapes' needs a subcommand, 'check' or 'validate' (got {})",
                        other.unwrap_or("nothing")
                    ))
                }
            };
            i = 2;
        }
        _ => {}
    }
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--fragment" => {
                let value = args.get(i + 1).ok_or("--fragment needs a value")?;
                options.fragment =
                    parse_fragment(value).ok_or_else(|| format!("unknown fragment '{value}'"))?;
                i += 1;
            }
            "--format" => {
                let value = args.get(i + 1).ok_or("--format needs a value")?;
                options.turtle = match value.as_str() {
                    "turtle" | "ttl" => true,
                    "ntriples" | "nt" => false,
                    other => return Err(format!("unknown format '{other}'")),
                };
                i += 1;
            }
            "--inferred-only" => options.inferred_only = true,
            "--sequential" => options.sequential = true,
            "--read-only" => options.read_only = true,
            "--no-keep-alive" => options.no_keep_alive = true,
            "--ingest-threads" => {
                let value = args.get(i + 1).ok_or("--ingest-threads needs a value")?;
                options.ingest_threads = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad thread count '{value}'"))?,
                );
                i += 1;
            }
            "--chunk-kib" => {
                let value = args.get(i + 1).ok_or("--chunk-kib needs a value")?;
                options.chunk_kib = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad chunk size '{value}'"))?,
                );
                i += 1;
            }
            "--port" => {
                let value = args.get(i + 1).ok_or("--port needs a value")?;
                options.port = value
                    .parse::<u16>()
                    .map_err(|_| format!("bad port '{value}'"))?;
                i += 1;
            }
            "--host" => {
                let value = args.get(i + 1).ok_or("--host needs a value")?;
                options.host = value.clone();
                i += 1;
            }
            "--data-dir" => {
                let value = args.get(i + 1).ok_or("--data-dir needs a value")?;
                options.data_dir = Some(value.clone());
                i += 1;
            }
            "--rules" => {
                let value = args.get(i + 1).ok_or("--rules needs a value")?;
                options.rules = Some(value.clone());
                i += 1;
            }
            "--shapes" => {
                let value = args.get(i + 1).ok_or("--shapes needs a value")?;
                options.shapes = Some(value.clone());
                i += 1;
            }
            "--data" => {
                let value = args.get(i + 1).ok_or("--data needs a value")?;
                options.data = Some(value.clone());
                i += 1;
            }
            "--checkpoint-every" => {
                let value = args.get(i + 1).ok_or("--checkpoint-every needs a value")?;
                options.checkpoint_every = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad checkpoint interval '{value}'"))?,
                );
                i += 1;
            }
            "--threads" => {
                let value = args.get(i + 1).ok_or("--threads needs a value")?;
                options.threads = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("bad thread count '{value}'"))?;
                i += 1;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            file => {
                // In the shapes modes the first positional is the shape
                // file, the (optional) second the dataset to validate.
                if matches!(options.mode, Mode::ShapesCheck | Mode::ShapesValidate)
                    && options.shapes.is_none()
                {
                    options.shapes = Some(file.to_string());
                } else if options.input.is_some() {
                    return Err("more than one input file given".to_string());
                } else {
                    options.input = Some(file.to_string());
                }
            }
        }
        i += 1;
    }
    if matches!(options.mode, Mode::Snapshot | Mode::Recover) && options.data_dir.is_none() {
        return Err("this subcommand requires --data-dir".to_string());
    }
    if matches!(options.mode, Mode::RulesCheck | Mode::RulesExplain) && options.input.is_none() {
        return Err("'rules check|explain' needs a rule file".to_string());
    }
    if options.rules.is_some() {
        if options.mode != Mode::Serve {
            return Err("--rules only applies to 'serve'".to_string());
        }
        if options.data_dir.is_some() {
            // The durable recovery path re-materializes under a *fragment*;
            // persisting a rule program alongside the images is future work.
            return Err("--rules cannot be combined with --data-dir".to_string());
        }
    }
    if matches!(options.mode, Mode::ShapesCheck | Mode::ShapesValidate) && options.shapes.is_none()
    {
        return Err("'shapes check|validate' needs a shape file".to_string());
    }
    if options.shapes.is_some()
        && !matches!(
            options.mode,
            Mode::Serve | Mode::ShapesCheck | Mode::ShapesValidate
        )
    {
        return Err("--shapes only applies to 'serve'".to_string());
    }
    if options.mode == Mode::Serve && options.shapes.is_some() && options.data_dir.is_some() {
        // The WAL logs every update *before* it is applied; a gate refusal
        // after logging would leave replay diverging from memory.
        return Err("--shapes cannot be combined with --data-dir".to_string());
    }
    if options.data.is_some() && options.mode != Mode::RulesExplain {
        return Err("--data only applies to 'rules explain'".to_string());
    }
    Ok(options)
}

fn read_input(options: &CliOptions) -> Result<String, String> {
    match &options.input {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buffer)
        }
    }
}

fn parse_dataset(options: &CliOptions, text: &str) -> Result<LoadedDataset, String> {
    let mut loader = if options.sequential {
        LoaderOptions::sequential()
    } else {
        LoaderOptions {
            threads: options.ingest_threads,
            chunk_bytes: None,
        }
    };
    loader.chunk_bytes = options.chunk_kib.map(|kib| kib * 1024);
    let ingest = Ingest::with_options(loader);
    if options.turtle {
        ingest.turtle(text).map_err(|e| e.to_string())
    } else {
        ingest.ntriples(text).map_err(|e| e.to_string())
    }
}

fn load(options: &CliOptions) -> Result<LoadedDataset, String> {
    let text = read_input(options)?;
    parse_dataset(options, &text)
}

/// Loads a dataset from an explicitly named file (`--data`, `shapes
/// validate`), honoring the same `--format`/loader flags as the main input.
fn load_path(options: &CliOptions, path: &str) -> Result<LoadedDataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_dataset(options, &text)
}

fn reasoner_options(options: &CliOptions) -> InferrayOptions {
    if options.sequential {
        InferrayOptions::sequential()
    } else {
        InferrayOptions::default()
    }
}

fn run(options: &CliOptions) -> Result<(), String> {
    let loaded = load(options)?;

    let mut reasoner = InferrayReasoner::with_options(options.fragment, reasoner_options(options));
    let input_triples: std::collections::BTreeSet<_> = loaded.store.iter_triples().collect();
    let mut store = loaded.store;
    let stats = reasoner.materialize(&mut store);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut written = 0usize;
    for triple in store.iter_triples() {
        if options.inferred_only && input_triples.contains(&triple) {
            continue;
        }
        if let Some(decoded) = loaded.dictionary.decode_triple(triple) {
            writeln!(out, "{decoded}").map_err(|e| e.to_string())?;
            written += 1;
        }
    }
    out.flush().map_err(|e| e.to_string())?;

    eprintln!(
        "inferray: {} input triples, {} inferred, {} written, {} iterations, {:?} ({} fragment)",
        stats.input_triples,
        stats.inferred_triples(),
        written,
        stats.iterations,
        stats.duration,
        reasoner.ruleset().fragment,
    );
    Ok(())
}

fn checkpoint_policy(options: &CliOptions) -> CheckpointPolicy {
    CheckpointPolicy {
        wal_record_limit: Some(options.checkpoint_every.unwrap_or(1024)),
        ..CheckpointPolicy::default()
    }
}

/// Opens the data directory if it already holds a snapshot, otherwise
/// materializes the input and creates it.
fn open_or_create_durable(
    options: &CliOptions,
    data_dir: &str,
) -> Result<Arc<DurableDataset>, String> {
    let backend = Arc::new(StdFs);
    let policy = checkpoint_policy(options);
    match DurableDataset::open(
        data_dir,
        options.fragment,
        reasoner_options(options),
        backend.clone(),
        policy,
    ) {
        Ok((durable, report)) => {
            if options.input.is_some() {
                eprintln!(
                    "inferray: note: {data_dir} already holds a snapshot; the input file is ignored"
                );
            }
            eprintln!(
                "inferray: recovered epoch {} ({} triples) from {} (+{} WAL records replayed, {} skipped{})",
                report.epoch,
                report.triples,
                report.snapshot_path.display(),
                report.replayed_records,
                report.skipped_records,
                if report.torn_tail_bytes > 0 {
                    format!(", {} torn tail bytes discarded", report.torn_tail_bytes)
                } else {
                    String::new()
                },
            );
            Ok(Arc::new(durable))
        }
        Err(DurableError::NoSnapshot) => {
            let loaded = load(options)?;
            let (durable, stats) = DurableDataset::create(
                loaded,
                options.fragment,
                reasoner_options(options),
                data_dir,
                backend,
                policy,
            )
            .map_err(|e| e.to_string())?;
            eprintln!(
                "inferray: materialized {} triples ({} inferred) in {:?}; initial snapshot written to {data_dir}",
                stats.output_triples,
                stats.inferred_triples(),
                stats.duration,
            );
            Ok(Arc::new(durable))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// One finding as a machine-readable line: `file:line:col: severity:
/// message [RA###]` — the format editors and CI log-matchers expect.
fn render_diag(path: &str, d: &Diagnostic) -> String {
    format!(
        "{path}:{}:{}: {}: {} [{}]",
        d.line,
        d.col,
        d.severity.label(),
        d.message,
        d.code
    )
}

/// Renders a [`DistinctCount`] as `, ~N label` (tilde marks an estimate),
/// or nothing when the counter is unavailable.
fn distinct_str(label: &str, count: Option<DistinctCount>) -> String {
    match count {
        Some(d) if d.exact => format!(", {} {label}", d.count),
        Some(d) => format!(", ~{} {label}", d.count),
        None => String::new(),
    }
}

/// `rules check` / `rules explain`: run the static analyzer over a rule
/// file, print every finding, and — for `explain` — compile the program and
/// dump each rule's derived scheduler signature.
fn rules_check(options: &CliOptions, explain: bool) -> Result<(), String> {
    let path = options.input.as_deref().expect("validated by parse_args");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let checked = analysis::analyze(&text);
    for d in &checked.diagnostics {
        println!("{}", render_diag(path, d));
    }
    if checked.has_errors() {
        return Err(format!("{path}: rule program has errors"));
    }
    if explain {
        // With --data the program is compiled against the dataset's own
        // dictionary so rule constants and data identifiers agree — the
        // cost model would otherwise estimate over the wrong tables.
        let mut dict = inferray_dictionary::Dictionary::new();
        let data_store = match &options.data {
            Some(data_path) => {
                let mut loaded = load_path(options, data_path)?;
                // Build the ⟨o,s⟩ caches so object-side join selectivity
                // is available to the estimator.
                loaded.store.ensure_all_os();
                dict = loaded.dictionary;
                eprintln!(
                    "inferray: cost model over {data_path} ({} triples)",
                    loaded.store.len()
                );
                Some(loaded.store)
            }
            None => None,
        };
        match checked.compile(&mut dict) {
            Ok(compiled) => {
                for note in &compiled.notes {
                    println!("{}", render_diag(path, note));
                }
                for (i, rule) in compiled.rules.iter().enumerate() {
                    let executor = match compiled.builtin_of(i) {
                        Some(id) => format!("builtin {id} (hand-written executor)"),
                        None => "custom (generic executor)".to_owned(),
                    };
                    println!("rule {}: {executor}", rule.name);
                    println!("  inputs:  {}", rule.inputs);
                    println!("  outputs: {}", rule.outputs);
                    if let Some(store) = &data_store {
                        let cost = analysis::cost::estimate(rule, store, &dict);
                        println!(
                            "  cost:    ~{} bindings from {} pairs scanned",
                            cost.est_rounded(),
                            cost.scanned
                        );
                        for atom in &cost.atoms {
                            println!(
                                "    scan {}: {} pairs{}{}",
                                atom.pattern,
                                atom.rows,
                                distinct_str("subjects", atom.distinct_subjects),
                                distinct_str("objects", atom.distinct_objects),
                            );
                        }
                    }
                }
            }
            Err(diags) => {
                for d in diags.iter().filter(|d| !checked.diagnostics.contains(d)) {
                    println!("{}", render_diag(path, d));
                }
                return Err(format!("{path}: rule program has errors"));
            }
        }
    }
    let errors = checked.diagnostics.iter().filter(|d| d.is_error()).count();
    eprintln!(
        "inferray: {}: {} rules, {} findings ({} errors)",
        path,
        checked.rules.len(),
        checked.diagnostics.len(),
        errors,
    );
    Ok(())
}

/// `shapes check` / `shapes validate`: run the shape-constraint static
/// analyzer over a `.shapes` file, print every positioned `SH…` finding,
/// and — for `validate` — compile the shapes against a dataset and report
/// every constraint violation.
fn shapes_check(options: &CliOptions, validate: bool) -> Result<(), String> {
    let path = options.shapes.as_deref().expect("validated by parse_args");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let checked = shapes::analyze(&text);
    for d in &checked.diagnostics {
        println!("{}", render_diag(path, d));
    }
    if checked.has_errors() {
        return Err(format!("{path}: shape file has errors"));
    }
    let errors = checked.diagnostics.iter().filter(|d| d.is_error()).count();
    eprintln!(
        "inferray: {}: {} shapes, {} findings ({} errors)",
        path,
        checked.shapes.len(),
        checked.diagnostics.len(),
        errors,
    );
    if !validate {
        return Ok(());
    }

    // Validate the (raw, un-reasoned) dataset: what you load is what the
    // shapes judge. Use `serve --shapes` to gate a materialized dataset.
    let mut loaded = load(options)?;
    loaded.store.ensure_all_os();
    let compiled = checked
        .compile(&loaded.dictionary)
        .expect("analysis without errors compiles");
    let report = shapes::validate(
        &compiled,
        &loaded.store,
        &loaded.dictionary,
        inferray_parallel::global(),
    );
    for v in &report.violations {
        let shape = &compiled.shapes[v.shape];
        let focus = loaded
            .dictionary
            .decode(v.focus)
            .map_or_else(|| format!("#{}", v.focus), |t| t.to_string());
        println!(
            "{path}:{}:{}: violation: focus {focus} fails shape {}: {}",
            v.line,
            v.col,
            shape.name,
            describe_kind(v, &compiled, &loaded.dictionary),
        );
    }
    eprintln!(
        "inferray: {} focus checks, {} violations ({} triples)",
        report.focus_checks,
        report.violations.len(),
        loaded.store.len(),
    );
    if report.conforms() {
        Ok(())
    } else {
        Err(format!("{path}: data does not conform"))
    }
}

/// One violation's cause, decoded for terminal output.
fn describe_kind(
    v: &shapes::Violation,
    compiled: &shapes::CompiledShapes,
    dict: &inferray_dictionary::Dictionary,
) -> String {
    let decode = |id: u64| {
        dict.decode(id)
            .map_or_else(|| format!("#{id}"), |t| t.to_string())
    };
    let path_iri = compiled.shapes[v.shape]
        .constraints
        .get(v.constraint)
        .map_or("?", |c| c.path_iri.as_str());
    match v.kind {
        shapes::ViolationKind::CountBelow { found, min } => {
            format!("{found} value(s) for <{path_iri}>, at least {min} required")
        }
        shapes::ViolationKind::CountAbove { found, max } => {
            format!("{found} value(s) for <{path_iri}>, at most {max} allowed")
        }
        shapes::ViolationKind::Datatype { value } => {
            format!("value {} has the wrong datatype", decode(value))
        }
        shapes::ViolationKind::Class { value } => {
            format!(
                "value {} is not an instance of the required class",
                decode(value)
            )
        }
        shapes::ViolationKind::In { value } => {
            format!("value {} is not in the allowed set", decode(value))
        }
        shapes::ViolationKind::Node { value, shape } => format!(
            "value {} does not conform to shape {}",
            decode(value),
            compiled.shapes.get(shape).map_or("?", |s| s.name.as_str())
        ),
    }
}

fn serve(options: &CliOptions) -> Result<(), String> {
    // With --data-dir the dataset is durable: recovered from disk when
    // possible, WAL-protected in any case. Without it, serving stays purely
    // in-memory as before.
    type ServeWiring = (
        Arc<ServingDataset>,
        Option<Arc<dyn UpdateSink>>,
        Option<Arc<dyn DurabilityReporter>>,
        Option<Arc<dyn ValidationReporter>>,
    );
    let (dataset, sink, durability, validation): ServeWiring = match &options.data_dir {
        Some(data_dir) => {
            let durable = open_or_create_durable(options, data_dir)?;
            let adapter = Arc::new(DurableUpdateSink(Arc::clone(&durable)));
            (
                Arc::clone(durable.dataset()),
                Some(adapter.clone() as Arc<dyn UpdateSink>),
                Some(adapter as Arc<dyn DurabilityReporter>),
                // parse_args refuses --shapes with --data-dir, so no gate.
                None,
            )
        }
        None => {
            let loaded = load(options)?;
            let (dataset, stats) = match &options.rules {
                Some(rules_path) => {
                    let text = std::fs::read_to_string(rules_path)
                        .map_err(|e| format!("cannot read {rules_path}: {e}"))?;
                    ServingDataset::materialize_with_rules(loaded, &text, reasoner_options(options))
                        .map_err(|diags| {
                            diags
                                .iter()
                                .map(|d| render_diag(rules_path, d))
                                .collect::<Vec<_>>()
                                .join("\n")
                        })?
                }
                None => {
                    ServingDataset::materialize(loaded, options.fragment, reasoner_options(options))
                }
            };
            eprintln!(
                "inferray: materialized {} triples ({} inferred) in {:?}",
                stats.output_triples,
                stats.inferred_triples(),
                stats.duration,
            );
            let dataset = Arc::new(dataset);
            let mut validation = None;
            if let Some(shapes_path) = &options.shapes {
                let text = std::fs::read_to_string(shapes_path)
                    .map_err(|e| format!("cannot read {shapes_path}: {e}"))?;
                // Install the gate *before* binding: the server either
                // starts with a green validation or does not start.
                match dataset.install_shapes(&text) {
                    Ok(()) => {}
                    Err(ShapeInstallError::Program(diags)) => {
                        return Err(diags
                            .iter()
                            .map(|d| render_diag(shapes_path, d))
                            .collect::<Vec<_>>()
                            .join("\n"));
                    }
                    Err(ShapeInstallError::Violations(violations)) => {
                        return Err(format!(
                            "{shapes_path}: the materialized dataset already violates the \
                             shapes — refusing to serve\n{violations}"
                        ));
                    }
                }
                let status = dataset
                    .validation_status()
                    .expect("gate installed just above");
                eprintln!(
                    "inferray: installed {} shape(s) from {shapes_path}; \
                     epoch {} validated green ({} focus checks)",
                    status.shapes,
                    dataset.epoch(),
                    status.counters.focus_checks,
                );
                let reporter = Arc::new(ServingUpdateSink(Arc::clone(&dataset)));
                validation = Some(reporter as Arc<dyn ValidationReporter>);
            }
            let sink = Arc::new(ServingUpdateSink(Arc::clone(&dataset)));
            (dataset, Some(sink as Arc<dyn UpdateSink>), None, validation)
        }
    };

    let source = {
        let dataset = Arc::clone(&dataset);
        move || {
            let (snapshot, dictionary) = dataset.snapshot();
            SnapshotQueryEngine::new(snapshot, dictionary)
        }
    };
    let addr = format!("{}:{}", options.host, options.port);
    let config = ServerConfig {
        threads: options.threads,
        keep_alive: !options.no_keep_alive,
        ..ServerConfig::default()
    };
    let server = SparqlServer::bind_with(
        &addr,
        config,
        Arc::new(source),
        if options.read_only { None } else { sink },
        durability,
        validation,
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "inferray: serving SPARQL on http://{}/sparql ({} worker threads, epoch {}, updates {}, durability {})",
        server.local_addr(),
        options.threads,
        dataset.epoch(),
        if options.read_only { "off" } else { "on" },
        if options.data_dir.is_some() { "on" } else { "off" },
    );
    eprintln!(
        "inferray: try  curl 'http://{}/status'",
        server.local_addr()
    );
    // Serve until the process is interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn snapshot(options: &CliOptions, data_dir: &str) -> Result<(), String> {
    let loaded = load(options)?;
    let (durable, stats) = DurableDataset::create(
        loaded,
        options.fragment,
        reasoner_options(options),
        data_dir,
        Arc::new(StdFs),
        checkpoint_policy(options),
    )
    .map_err(|e| e.to_string())?;
    let status = durable.status();
    eprintln!(
        "inferray: materialized {} triples ({} inferred) in {:?}",
        stats.output_triples,
        stats.inferred_triples(),
        stats.duration,
    );
    match status.snapshot_path {
        Some(path) => println!("{}", path.display()),
        None => return Err("snapshot was not written".to_string()),
    }
    Ok(())
}

fn recover(options: &CliOptions, data_dir: &str) -> Result<(), String> {
    let (durable, report) = DurableDataset::open(
        data_dir,
        options.fragment,
        reasoner_options(options),
        Arc::new(StdFs),
        checkpoint_policy(options),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "snapshot: {} (epoch {})",
        report.snapshot_path.display(),
        report.snapshot_epoch
    );
    if report.invalid_snapshots > 0 {
        println!(
            "invalid newer snapshots skipped: {}",
            report.invalid_snapshots
        );
    }
    println!(
        "wal: {} records replayed, {} skipped, {} torn tail bytes",
        report.replayed_records, report.skipped_records, report.torn_tail_bytes
    );
    println!(
        "recovered: epoch {} with {} triples ({} explicit)",
        report.epoch,
        report.triples,
        durable.dataset().base_len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match options.mode {
        Mode::Serve => serve(&options),
        Mode::Snapshot => snapshot(&options, &options.data_dir.clone().expect("validated")),
        Mode::Recover => recover(&options, &options.data_dir.clone().expect("validated")),
        Mode::Materialize => run(&options),
        Mode::RulesCheck => rules_check(&options, false),
        Mode::RulesExplain => rules_check(&options, true),
        Mode::ShapesCheck => shapes_check(&options, false),
        Mode::ShapesValidate => shapes_check(&options, true),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("inferray-cli: {message}");
            ExitCode::FAILURE
        }
    }
}
