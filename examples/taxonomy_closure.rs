//! Transitive closure of a large taxonomy — the workload of Table 4.
//!
//! Generates a deep `rdfs:subClassOf` chain, materializes it with Inferray
//! (whose dedicated Nuutila closure stage handles it in one pass) and with
//! the hash-join baseline (which applies the transitivity rule iteratively),
//! then compares times and verifies both produce the exact closure size.
//!
//! ```text
//! cargo run --release --example taxonomy_closure [chain-length]
//! ```

use inferray::baselines::HashJoinReasoner;
use inferray::datasets::chain;
use inferray::parser::load_triples;
use inferray::{Fragment, InferrayReasoner, Materializer};

fn main() {
    let length: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000);

    println!("Generating a subClassOf chain of {length} classes …");
    let triples = chain::subclass_chain(length);
    let expected = chain::closure_size(length);
    println!(
        "{} asserted triples; the closure holds {expected} subClassOf pairs.",
        triples.len()
    );

    // Inferray: dedicated closure stage (Nuutila + interval sets).
    let loaded = load_triples(triples.iter()).expect("valid chain");
    let mut store = loaded.store.clone();
    let stats = InferrayReasoner::new(Fragment::RhoDf).materialize(&mut store);
    println!(
        "inferray   : {:>10?}  ({} triples materialized, {} iterations)",
        stats.duration,
        store.len(),
        stats.iterations
    );
    assert_eq!(store.len(), expected);

    // Hash-join baseline: iterative application of SCM-SCO.
    let mut store = loaded.store.clone();
    let stats = HashJoinReasoner::new(Fragment::RhoDf).materialize(&mut store);
    println!(
        "hash-join  : {:>10?}  ({} triples materialized, {} iterations)",
        stats.duration,
        store.len(),
        stats.iterations
    );
    assert_eq!(store.len(), expected);

    println!("Both engines agree on the closure; Inferray's dedicated stage avoids the iterative duplicate explosion.");
}
