//! Quickstart: the paper's running example.
//!
//! Builds the tiny ontology from the paper's introduction and Figure 4
//! (`human ⊑ mammal ⊑ animal`, Bart and Lisa are humans), materializes the
//! RDFS-default fragment with Inferray, and prints the inferred triples.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use inferray::{reason_graph, vocab, Fragment, Graph};

fn main() {
    // 1. Build the input graph (the paper's running example).
    let mut graph = Graph::new();
    graph.insert_iris(
        "http://example.org/human",
        vocab::RDFS_SUB_CLASS_OF,
        "http://example.org/mammal",
    );
    graph.insert_iris(
        "http://example.org/mammal",
        vocab::RDFS_SUB_CLASS_OF,
        "http://example.org/animal",
    );
    graph.insert_iris(
        "http://example.org/Bart",
        vocab::RDF_TYPE,
        "http://example.org/human",
    );
    graph.insert_iris(
        "http://example.org/Lisa",
        vocab::RDF_TYPE,
        "http://example.org/human",
    );

    println!("Input graph ({} triples):\n{}", graph.len(), graph);

    // 2. Materialize the RDFS-default fragment.
    let result = reason_graph(&graph, Fragment::RdfsDefault).expect("valid input graph");

    // 3. Show what was inferred.
    let inferred = result.inferred(&graph);
    println!(
        "Inferred {} triples in {:?} ({} fixed-point iterations):",
        result.stats.inferred_triples(),
        result.stats.duration,
        result.stats.iterations,
    );
    print!("{inferred}");

    // The closure of the class hierarchy plus the propagated types.
    assert_eq!(result.stats.inferred_triples(), 5);
}
