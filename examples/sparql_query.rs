//! SPARQL-subset querying over a materialized store.
//!
//! The paper's pitch for forward-chaining is that "inferred data can be
//! consumed as explicit data without integrating the inference engine with
//! the runtime query engine" (§1). This example does exactly that: it loads
//! a small university ontology, materializes the RDFS-Plus closure with
//! Inferray, and then answers SPARQL-style queries over the sorted property
//! tables — where asserted and inferred triples are indistinguishable.
//!
//! ```text
//! cargo run --example sparql_query
//! ```

use inferray::core::{InferrayReasoner, Materializer};
use inferray::load_turtle;
use inferray::query::QueryEngine;
use inferray::rules::Fragment;

const DATA: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .

# Schema
ex:Professor rdfs:subClassOf ex:Faculty .
ex:Faculty rdfs:subClassOf ex:Person .
ex:GraduateStudent rdfs:subClassOf ex:Student .
ex:Student rdfs:subClassOf ex:Person .
ex:teaches rdfs:domain ex:Faculty .
ex:teaches rdfs:range ex:Course .
ex:takesCourse rdfs:domain ex:Student .
ex:headOf rdfs:subPropertyOf ex:worksFor .
ex:advises owl:inverseOf ex:advisedBy .

# Instances
ex:smith a ex:Professor ;
         ex:teaches ex:databases ;
         ex:headOf ex:cslab ;
         ex:advises ex:lee .
ex:jones a ex:Faculty ;
         ex:teaches ex:logic .
ex:lee ex:takesCourse ex:databases .
ex:kim a ex:GraduateStudent ;
       ex:takesCourse ex:logic .
"#;

const QUERIES: &[(&str, &str)] = &[
    (
        "Every person known to the system (all types inferred through the class hierarchy)",
        "PREFIX ex: <http://example.org/> \
         SELECT DISTINCT ?person WHERE { ?person a ex:Person }",
    ),
    (
        "Who teaches which course (course types come from rdfs:range)",
        "PREFIX ex: <http://example.org/> \
         SELECT ?teacher ?course WHERE { ?teacher ex:teaches ?course . ?course a ex:Course }",
    ),
    (
        "Students together with the faculty member whose course they take",
        "PREFIX ex: <http://example.org/> \
         SELECT ?student ?faculty WHERE { \
            ?student ex:takesCourse ?c . \
            ?faculty ex:teaches ?c . \
            FILTER(?student != ?faculty) }",
    ),
    (
        "Who works for the CS lab (inferred through rdfs:subPropertyOf)",
        "PREFIX ex: <http://example.org/> \
         SELECT ?who WHERE { ?who ex:worksFor ex:cslab }",
    ),
    (
        "Who is advised by smith (inferred through owl:inverseOf, RDFS-Plus only)",
        "PREFIX ex: <http://example.org/> \
         SELECT ?advisee WHERE { ?advisee ex:advisedBy ex:smith }",
    ),
];

fn main() {
    // 1. Parse and load into the vertically partitioned store.
    let mut dataset = load_turtle(DATA).expect("example data parses");
    println!("Loaded {} asserted triples.", dataset.store.len());

    // 2. Materialize the RDFS-Plus closure in place.
    let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut dataset.store);
    println!(
        "Materialized {} additional triples in {:?} ({} fixed-point iterations).\n",
        stats.inferred_triples(),
        stats.duration,
        stats.iterations
    );

    // 3. Build the ⟨o,s⟩ caches so bound-object lookups are index lookups.
    dataset.store.ensure_all_os();

    // 4. Query asserted and inferred data uniformly.
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
    for (description, sparql) in QUERIES {
        println!("# {description}");
        println!("{sparql}");
        let solutions = engine.execute_sparql(sparql).expect("query parses");
        print!("{}", solutions.to_table(&dataset.dictionary));
        println!("({} solutions)\n", solutions.len());
    }

    // A boolean sanity check: smith ends up typed as a Person.
    let smith_is_person = engine
        .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:smith a ex:Person }")
        .expect("query parses");
    println!("ASK {{ ex:smith a ex:Person }} => {smith_is_person}");
    assert!(smith_is_person);
}
